//! Fault-injection campaigns over the paper's networks (resilience
//! analysis).
//!
//! Sweeps every fault kind of the `absort-faults` taxonomy over fault
//! sites of the prefix sorter, the mux-based merge sorter, the fish
//! k-way merger, and the nonadaptive (Batcher-equal) sorter, and scores
//! three things per (network, fault kind):
//!
//! * **detection** — did some valid input produce an output differing
//!   from the sorted oracle? A fault the exhaustive checker cannot see
//!   escapes verification; the acceptance bar is 100% detection of
//!   permanent single faults at small `n` (fault-site enumeration already
//!   excludes provably vacuous sites — see
//!   `absort_circuit::faulty::permanent_fault_sites`);
//! * **concurrent detection** — every sweep actually evaluates the
//!   *self-checking* wrapper of the network
//!   ([`absort_networks::hardened::harden`]): the data outputs are
//!   untouched (so detection and degradation match a bare sweep
//!   bit-for-bit) but an error rail reports, per vector, whether the
//!   hardware's own zero-one + conservation checker fired. Faults are
//!   still enumerated on the *base* netlist — the checker cone is not a
//!   fault target — and translated through the wrapper's site maps;
//! * **graceful degradation** — across all faulty outputs, the worst
//!   Kendall-tau inversion count, the worst element displacement, and how
//!   often the fault destroyed/created tokens outright
//!   ([`absort_faults::Degradation`]).
//!
//! Component-granularity faults (behaviour inversion, stuck selects) are
//! injected by netlist rewriting (`absort_circuit::mutate`); wire
//! stuck-ats, bridges, and transient upsets are injected at evaluation
//! time (`absort_circuit::faulty`). Valid inputs are the network's
//! contract: all `2^n` vectors for the sorters, the k-sorted sequences
//! (Definition 4) for the merger. Beyond `max_exhaustive` vectors the
//! checker drops to a seeded random sample and the report's `tier` says
//! so.
//!
//! Beyond the classic single-fault sweep, [`run_network_sets`] samples
//! simultaneous `k`-fault sets (distinct sites, mixed kinds) from the
//! permanent-fault universe, and [`run_campaign_with`] drives the whole
//! campaign — per-network × per-`k` units plus an optional clocked
//! streamer unit ([`crate::clocked_faults`]) — with a wall-clock budget
//! and a unit-granular checkpoint file for resuming truncated runs.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use absort_circuit::eval::{pack_lanes, pack_lanes_wide};
use absort_circuit::faulty::{observable_wires, permanent_fault_sites, FaultyEvaluator};
use absort_circuit::mutate::{self, Fault};
use absort_circuit::{
    Circuit, CompileOptions, CompiledCircuit, CompiledEvaluator, Engine, Evaluator,
    MultiMutantTape, MutantTape, WireFault,
};
use absort_core::{fish, lang, muxmerge, nonadaptive, prefix};
use absort_faults::json;
use absort_faults::{CampaignReport, Degradation, FaultKind, KindReport, NetworkReport};
use absort_networks::hardened::{harden, HardenOptions, HardenedSorter};
use rand::prelude::*;

/// A network the campaign can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkSel {
    /// Prefix-sum adaptive sorter (`absort_core::prefix`).
    Prefix,
    /// Mux-based merge sorter (`absort_core::muxmerge`).
    MuxMerger,
    /// Fish k-way merger, combinational form (`absort_core::fish`).
    Fish,
    /// Nonadaptive sorter — Batcher-equal cost (`absort_core::nonadaptive`).
    Batcher,
}

impl NetworkSel {
    /// All four targets, in report order.
    pub const ALL: [NetworkSel; 4] = [
        NetworkSel::Prefix,
        NetworkSel::MuxMerger,
        NetworkSel::Fish,
        NetworkSel::Batcher,
    ];

    /// Stable name used in reports and telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            NetworkSel::Prefix => "prefix",
            NetworkSel::MuxMerger => "mux-merger",
            NetworkSel::Fish => "fish",
            NetworkSel::Batcher => "batcher",
        }
    }

    /// Parses a CLI `--network` value (`"all"` is handled by the caller).
    pub fn parse(s: &str) -> Option<NetworkSel> {
        match s {
            "prefix" => Some(NetworkSel::Prefix),
            "muxmerge" | "mux-merger" | "muxmerger" => Some(NetworkSel::MuxMerger),
            "fish" => Some(NetworkSel::Fish),
            "batcher" | "nonadaptive" => Some(NetworkSel::Batcher),
            _ => None,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Input width each network is built at (power of two).
    pub n: usize,
    /// Seed for sampled tiers, transient-fault placement, and multi-fault
    /// set sampling.
    pub seed: u64,
    /// Valid-input count above which the checker samples instead of
    /// enumerating (the report's `tier` records which happened).
    pub max_exhaustive: usize,
    /// Transient (wire, vector) upsets injected per network.
    pub transient_samples: usize,
    /// Evaluation engine for the netlist-rewrite (mutant) sweeps. Each
    /// mutant is evaluated over the whole workload, so the one-time
    /// lowering pass amortizes immediately; the compiled tape is the
    /// default. Wire-granularity faults (stuck-ats, bridges, transients)
    /// always run on the interpreting [`FaultyEvaluator`] — the compiled
    /// tape reuses slots and has no per-wire identity to inject into.
    pub engine: Engine,
    /// Compilation options for every tape the compiled engine builds
    /// (base, patched fallbacks, per-mutant recompiles). The pass
    /// pipeline's provenance contract guarantees report cells are
    /// bit-identical across opt levels; only the sweep speed changes.
    pub opt: CompileOptions,
    /// Which concurrent checks the self-checking wrapper carries. The
    /// default (monotonicity + conservation) matches the paper's cheap
    /// checker; enabling `duplicate` doubles the core for higher
    /// coverage, and the report's cost columns price the trade.
    pub harden: HardenOptions,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n: 8,
            seed: 0x0ab5_0127,
            max_exhaustive: 1 << 12,
            transient_samples: 64,
            engine: Engine::Compiled,
            opt: CompileOptions::default(),
            harden: HardenOptions::default(),
        }
    }
}

/// Knobs beyond [`CampaignConfig`] for the full campaign driver
/// ([`run_campaign_with`]).
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Largest simultaneous fault-set size swept per network: each
    /// network gets one unit per `k` in `1..=multi` (`1` is the classic
    /// single-fault sweep).
    pub multi: usize,
    /// Sampled fault sets per `(network, k)` unit for `k ≥ 2`.
    pub sets_per_k: usize,
    /// Also run the clocked fish-streamer unit
    /// ([`crate::clocked_faults::run_clocked_fish`]); with `multi ≥ 2`,
    /// clocked multi-fault-set units
    /// ([`crate::clocked_faults::run_clocked_fish_sets`]) ride along for
    /// each `k in 2..=multi`.
    pub clocked: bool,
    /// In-flight schedules round-robined through each clocked faulty
    /// machine (`1` = the classic fresh-machine-per-schedule sweep; see
    /// [`crate::clocked_faults`] for the interference model). Ignored by
    /// the combinational units.
    pub tenants: usize,
    /// Checkpoint path: the report-so-far is written after every
    /// completed unit, so a truncated or killed campaign can resume.
    pub checkpoint: Option<PathBuf>,
    /// Load the checkpoint first and skip units it already covers. The
    /// checkpoint carries a fingerprint of every parameter that shapes
    /// results; a stale or mismatched file is ignored wholesale.
    pub resume: bool,
    /// Wall-clock budget. On expiry the campaign stops *between* units —
    /// but always after at least one freshly computed unit, so repeated
    /// resumed runs are guaranteed to make progress — and the report says
    /// `truncated`.
    pub timeout: Option<Duration>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            multi: 1,
            sets_per_k: 64,
            clocked: false,
            tenants: 1,
            checkpoint: None,
            resume: false,
            timeout: None,
        }
    }
}

/// Builds the circuit for one target at width `n`.
pub fn build_network(sel: NetworkSel, n: usize) -> Circuit {
    match sel {
        NetworkSel::Prefix => prefix::build(n),
        NetworkSel::MuxMerger => muxmerge::build(n),
        NetworkSel::Fish => fish::circuits::build_combinational_kmerger(n, fish_k(n)),
        NetworkSel::Batcher => nonadaptive::build(n),
    }
}

/// Group count for the fish merger at width `n`: the largest power of two
/// `k` with `k ≤ n/k` (the builder's own bound), and at least 2.
pub fn fish_k(n: usize) -> usize {
    let mut k = 2;
    while 2 * k <= n / (2 * k) {
        k *= 2;
    }
    k
}

/// The network's valid-input space at width `n`: every vector the
/// network's contract covers. Sorters accept anything; the fish merger
/// requires its `k` blocks individually sorted (Definition 4).
fn valid_inputs(sel: NetworkSel, n: usize) -> Vec<Vec<bool>> {
    match sel {
        NetworkSel::Fish => lang::all_k_sorted(n, fish_k(n)),
        _ => lang::all_sequences(n).collect(),
    }
}

/// One workload, pre-packed for the sweep hot loop: 64-lane input
/// chunks, the packed sorted oracle per chunk, and the valid-lane masks.
/// Packing once here instead of once per faulty variant removes the
/// dominant allocation churn of the campaign (every variant used to
/// re-pack every chunk and allocate a fresh output vector per pass).
struct Workload {
    vectors: Vec<Vec<bool>>,
    ones: Vec<usize>,
    tier: &'static str,
    /// Packed 64-lane input chunks, in workload order.
    packed: Vec<Vec<u64>>,
    /// The same inputs packed as `[u64; 4]` wide chunks (256 vectors per
    /// chunk; word `k` of wide chunk `wi` is 64-lane chunk `4·wi + k`).
    /// The compiled engine sweeps these, quartering its pass count.
    packed_wide: Vec<Vec<[u64; 4]>>,
    /// Packed oracle outputs, one entry per input chunk.
    packed_oracle: Vec<Vec<u64>>,
    /// Low-bits mask of the lanes each chunk actually occupies.
    masks: Vec<u64>,
}

fn workload(sel: NetworkSel, cfg: &CampaignConfig) -> Workload {
    let mut vectors = valid_inputs(sel, cfg.n);
    let tier = if vectors.len() <= cfg.max_exhaustive {
        "exhaustive"
    } else {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sampled = Vec::with_capacity(cfg.max_exhaustive);
        for _ in 0..cfg.max_exhaustive {
            sampled.push(vectors[rng.gen_range(0..vectors.len())].clone());
        }
        vectors = sampled;
        "sampled"
    };
    let oracle: Vec<Vec<bool>> = vectors.iter().map(|v| lang::sorted_oracle(v)).collect();
    let ones = vectors
        .iter()
        .map(|v| v.iter().filter(|&&b| b).count())
        .collect();
    let packed = vectors.chunks(64).map(|c| pack_lanes(c, cfg.n)).collect();
    let packed_wide = vectors
        .chunks(256)
        .map(|c| pack_lanes_wide::<4>(c, cfg.n))
        .collect();
    let packed_oracle = oracle.chunks(64).map(|c| pack_lanes(c, cfg.n)).collect();
    let masks = vectors
        .chunks(64)
        .map(|c| {
            if c.len() == 64 {
                u64::MAX
            } else {
                (1u64 << c.len()) - 1
            }
        })
        .collect();
    Workload {
        vectors,
        ones,
        tier,
        packed,
        packed_wide,
        packed_oracle,
        masks,
    }
}

/// Outcome of sweeping one faulty variant over the whole workload.
struct Verdict {
    /// The zero-one checker fired: some output was unsorted or did not
    /// conserve its input's popcount.
    detected: bool,
    /// Some output differed from the fault-free reference at all. A site
    /// with `!differed` is *masked* (the network tolerates it); a site
    /// with `differed && !detected` escaped the checker.
    differed: bool,
    /// The hardware error rail of the self-checking wrapper went high on
    /// some workload vector (concurrent, in-circuit detection).
    flagged: bool,
}

const CLEAN: Verdict = Verdict {
    detected: false,
    differed: false,
    flagged: false,
};

/// Scores one faulty variant: runs every pre-packed 64-lane chunk through
/// `eval_pass` into a reused output buffer, diffs the packed outputs
/// against the packed oracle, and applies the zero-one checker only to
/// lanes that differ. `n_eval` is the evaluated circuit's full output
/// count (data outputs plus the error rail at index `rail`).
///
/// Skipping non-differing lanes loses nothing: a lane equal to the
/// oracle *is* a sorted vector with the conserved popcount, so the
/// checker (sortedness + token conservation, exactly the oracle's two
/// defining properties) cannot fire on it. Differing lanes are unpacked
/// and checked in ascending order, so detection results and the
/// degradation-observation sequence are identical to the old
/// vector-at-a-time sweep.
fn score_variant(
    w: &Workload,
    n_eval: usize,
    rail: usize,
    mut eval_pass: impl FnMut(&[u64], &mut [u64]),
    degradation: &mut Degradation,
) -> Verdict {
    let mut v = CLEAN;
    let mut out = vec![0u64; n_eval];
    let mut lane_buf: Vec<bool> = Vec::with_capacity(n_eval);
    let mut base = 0usize;
    for (ci, packed) in w.packed.iter().enumerate() {
        eval_pass(packed, &mut out);
        check_chunk(
            w,
            ci,
            base,
            rail,
            |o| out[o],
            &mut lane_buf,
            degradation,
            &mut v,
        );
        base += w.masks[ci].count_ones() as usize;
    }
    v
}

/// Scores one faulty variant with `[u64; 4]` wide passes: each pass
/// covers four 64-lane chunks, quartering per-variant evaluation count.
/// This is what makes per-mutant lowering pay for itself in the compiled
/// campaign path — the tape is walked once per 256 vectors instead of
/// four times. Chunk checks run in the same ascending order as
/// [`score_variant`], so verdicts and degradation sequences match the
/// 64-lane sweep exactly.
fn score_variant_wide(
    w: &Workload,
    n_eval: usize,
    rail: usize,
    mut eval_pass: impl FnMut(&[[u64; 4]], &mut [[u64; 4]]),
    degradation: &mut Degradation,
) -> Verdict {
    let mut v = CLEAN;
    let mut out = vec![[0u64; 4]; n_eval];
    let mut lane_buf: Vec<bool> = Vec::with_capacity(n_eval);
    let mut base = 0usize;
    for (wi, packed) in w.packed_wide.iter().enumerate() {
        eval_pass(packed, &mut out);
        for (ci, mask) in w.masks.iter().enumerate().skip(wi * 4).take(4) {
            let k = ci - wi * 4;
            check_chunk(
                w,
                ci,
                base,
                rail,
                |o| out[o][k],
                &mut lane_buf,
                degradation,
                &mut v,
            );
            base += mask.count_ones() as usize;
        }
    }
    v
}

/// Diffs one 64-lane output chunk (read through `out_word`, which maps an
/// output index to its packed word) against the packed oracle and applies
/// the zero-one checker to differing lanes, folding results into `v`.
/// The error rail's word (output index `rail`) is folded in regardless of
/// the diff — concurrent detection is the hardware's own call, not the
/// oracle's.
#[allow(clippy::too_many_arguments)]
fn check_chunk(
    w: &Workload,
    ci: usize,
    base: usize,
    rail: usize,
    out_word: impl Fn(usize) -> u64,
    lane_buf: &mut Vec<bool>,
    degradation: &mut Degradation,
    v: &mut Verdict,
) {
    let mask = w.masks[ci];
    let n_outputs = w.packed_oracle[ci].len();
    let mut differed = 0u64;
    for (o, &oracle) in w.packed_oracle[ci].iter().enumerate() {
        differed |= (out_word(o) ^ oracle) & mask;
    }
    if differed != 0 {
        v.differed = true;
        let mut rest = differed;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            lane_buf.clear();
            lane_buf.extend((0..n_outputs).map(|o| out_word(o) >> lane & 1 == 1));
            // The deployable checker: no oracle needed, just the
            // zero-one sort property plus token conservation.
            let ones = lane_buf.iter().filter(|&&b| b).count();
            if !lang::is_sorted(lane_buf) || ones != w.ones[base + lane] {
                v.detected = true;
                degradation.observe(lane_buf, w.ones[base + lane]);
            }
        }
    }
    let rail_word = out_word(rail) & mask;
    if rail_word != 0 {
        v.flagged = true;
        degradation.flagged += rail_word.count_ones() as u64;
    }
}

/// Folds one variant's verdict into a report cell.
fn tally(cell: &mut KindReport, v: Verdict) {
    cell.injected += 1;
    if v.detected {
        cell.detected += 1;
    } else if !v.differed {
        cell.masked += 1;
    }
    if v.flagged {
        cell.flagged += 1;
    }
}

/// Runs the full single-fault sweep for one network and returns its
/// report. The evaluated circuit is the self-checking wrapper
/// ([`harden`] with default options); the fault universe is the *base*
/// netlist's, translated through the wrapper's site maps, so the data
/// columns (injected/detected/masked, degradation) are bit-for-bit what
/// a bare sweep produces while `flagged` adds the rail's concurrent
/// verdict.
pub fn run_network(sel: NetworkSel, cfg: &CampaignConfig) -> NetworkReport {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span(&format!("faults/{}", sel.name()));
    let circuit = build_network(sel, cfg.n);
    circuit
        .validate()
        .unwrap_or_else(|e| panic!("{} netlist failed validation: {e}", sel.name()));
    let hardened = harden(&circuit, &cfg.harden);
    let n_eval = hardened.circuit.n_outputs();
    let rail = hardened.rail_index();
    let w = workload(sel, cfg);

    let mut kinds: Vec<KindReport> = Vec::new();

    // Per-variant scoring latency (patch + sweep), pooled across fault
    // kinds locally and merged into the `faults.mutant_score_ns`
    // histogram once at the end of the run.
    #[cfg(feature = "telemetry")]
    let mut score_hist = absort_telemetry::Histogram::new();
    #[cfg(feature = "telemetry")]
    let tel_on = absort_telemetry::enabled();

    // Compiled once per network; each mutant below is expressed as an
    // in-place tape patch instead of a full per-mutant lowering (the
    // dominant cost of compiled campaigns at small `n`).
    let mut base_cc = match cfg.engine {
        Engine::Compiled => Some(hardened.circuit.compile_with(&cfg.opt)),
        Engine::Interp => None,
    };

    // --- component-granularity faults via netlist rewriting -------------
    for fault in Fault::ALL {
        let kind = match fault {
            Fault::InvertBehaviour => FaultKind::InvertBehaviour,
            Fault::StuckSelectLow => FaultKind::StuckSelectLow,
            Fault::StuckSelectHigh => FaultKind::StuckSelectHigh,
        };
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for (ci, mutant) in mutate::mutants(&circuit, fault) {
            // Rewritten mutants must stay structurally sound before they
            // are trusted with an evaluation sweep.
            mutant
                .validate()
                .unwrap_or_else(|e| panic!("mutant failed validation: {e}"));
            let hci = hardened.component(ci);
            #[cfg(feature = "telemetry")]
            let t0 = tel_on.then(std::time::Instant::now);
            let v = match &mut base_cc {
                Some(cc) => match cc.mutant_tape(hci, fault) {
                    // Wide walks amortize per-mutant setup further: one
                    // tape pass covers 256 vectors.
                    MutantTape::Patched(patched) => {
                        let mut ev: CompiledEvaluator<'_, [u64; 4]> =
                            CompiledEvaluator::new(&patched);
                        score_variant_wide(
                            &w,
                            n_eval,
                            rail,
                            |p, o| ev.run_into(p, o),
                            &mut cell.degradation,
                        )
                    }
                    // Dead site: the mutant cannot differ from the base
                    // circuit, which matches the oracle on valid inputs
                    // (and a quiet rail — the checker taps only inputs
                    // and data outputs, so dead stays dead).
                    MutantTape::Dead => CLEAN,
                    MutantTape::Unsupported => {
                        let hm = hardened_mutant(&hardened, hci, fault);
                        let cc = hm.compile_with(&cfg.opt);
                        let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&cc);
                        score_variant_wide(
                            &w,
                            n_eval,
                            rail,
                            |p, o| ev.run_into(p, o),
                            &mut cell.degradation,
                        )
                    }
                },
                None => {
                    let hm = hardened_mutant(&hardened, hci, fault);
                    let mut ev: Evaluator<'_, u64> = Evaluator::new(&hm);
                    score_variant(
                        &w,
                        n_eval,
                        rail,
                        |p, o| ev.run_into(p, o),
                        &mut cell.degradation,
                    )
                }
            };
            #[cfg(feature = "telemetry")]
            if let Some(t0) = t0 {
                score_hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            tally(&mut cell, v);
        }
        kinds.push(cell);
    }

    // --- wire-granularity permanent faults via the faulty evaluator -----
    let sites = permanent_fault_sites(&circuit, &w.vectors);
    for kind in [
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::BridgeOr,
    ] {
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for &site in sites.iter().filter(|s| match kind {
            FaultKind::StuckAt0 => matches!(s, WireFault::StuckAt { value: false, .. }),
            FaultKind::StuckAt1 => matches!(s, WireFault::StuckAt { value: true, .. }),
            _ => matches!(s, WireFault::BridgeOr { .. }),
        }) {
            #[cfg(feature = "telemetry")]
            let t0 = tel_on.then(std::time::Instant::now);
            let hf = hardened.fault(site);
            let mut ev: FaultyEvaluator<'_, [u64; 4]> =
                FaultyEvaluator::new(&hardened.circuit, &[hf]);
            let v = score_variant_wide(
                &w,
                n_eval,
                rail,
                |p, o| ev.run_into(p, o),
                &mut cell.degradation,
            );
            #[cfg(feature = "telemetry")]
            if let Some(t0) = t0 {
                score_hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            tally(&mut cell, v);
        }
        kinds.push(cell);
    }

    // --- transient upsets: sampled (wire, vector) pairs -----------------
    let mut cell = KindReport {
        kind: Some(FaultKind::TransientFlip),
        ..Default::default()
    };
    let cone = observable_wires(&circuit);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7f1b);
    for _ in 0..cfg.transient_samples {
        let wire = cone[rng.gen_range(0..cone.len())];
        let vector = rng.gen_range(0..w.vectors.len()) as u64;
        #[cfg(feature = "telemetry")]
        let t0 = tel_on.then(std::time::Instant::now);
        let fault = hardened.fault(WireFault::TransientFlip { wire, vector });
        // The faulty evaluator counts `V::LANES` vectors per pass, so the
        // wide walk keeps transient lane targeting exact as long as the
        // wide chunks are fed in workload order.
        let mut ev: FaultyEvaluator<'_, [u64; 4]> =
            FaultyEvaluator::new(&hardened.circuit, &[fault]);
        let v = score_variant_wide(
            &w,
            n_eval,
            rail,
            |p, o| ev.run_into(p, o),
            &mut cell.degradation,
        );
        #[cfg(feature = "telemetry")]
        if let Some(t0) = t0 {
            score_hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        tally(&mut cell, v);
    }
    kinds.push(cell);

    #[cfg(feature = "telemetry")]
    {
        let injected: u64 = kinds.iter().map(|k| k.injected).sum();
        let detected: u64 = kinds.iter().map(|k| k.detected).sum();
        absort_telemetry::counter_add_many(&[
            ("faults.sites", injected),
            ("faults.detected", detected),
            (
                "faults.vectors_evaluated",
                injected * w.vectors.len() as u64,
            ),
        ]);
        absort_telemetry::hist_merge("faults.mutant_score_ns", &score_hist);
    }

    NetworkReport {
        network: sel.name().to_owned(),
        n: cfg.n,
        components: circuit.n_components() as u64,
        base_cost: circuit.cost().total,
        hardened_cost: hardened.circuit.cost().total,
        tier: w.tier.to_owned(),
        vectors: w.vectors.len() as u64,
        fault_set_size: 1,
        kinds,
    }
}

/// Rewrites one component fault into the hardened netlist, for engines
/// and sites the tape patcher cannot express. Applicability is a
/// function of the component's variant alone, and the wrapper embeds the
/// base components unchanged, so the rewrite must succeed whenever the
/// base-circuit enumeration produced the site.
fn hardened_mutant(hardened: &HardenedSorter, hci: usize, fault: Fault) -> Circuit {
    mutate::apply(&hardened.circuit, hci, fault)
        .expect("base-applicable fault must stay applicable in the hardened netlist")
}

/// One element of the multi-fault sampling pool, identified on the
/// *base* circuit: a component rewrite or a wire-granularity permanent
/// fault. Transients are excluded — a k-set models simultaneous
/// *permanent* damage.
#[derive(Debug, Clone, Copy)]
enum Atom {
    Comp(usize, Fault),
    Wire(WireFault),
}

/// The physical site an atom occupies; sampled sets keep sites distinct
/// so `k` faults are `k` separate defects (and so sequential rewrite
/// composition never stacks two rewrites on one component, where
/// apply-order would start to matter).
fn atom_site(a: Atom) -> (u8, usize, usize) {
    match a {
        Atom::Comp(ci, _) => (0, ci, 0),
        Atom::Wire(WireFault::StuckAt { wire, .. }) => (1, wire.index(), 0),
        Atom::Wire(WireFault::BridgeOr { a, b }) => (2, a.index(), b.index()),
        Atom::Wire(WireFault::TransientFlip { .. }) => {
            unreachable!("transients are not pooled into multi-fault sets")
        }
    }
}

/// Every permanent fault the single-fault sweep would inject, as a flat
/// sampling pool.
fn atom_pool(circuit: &Circuit, w: &Workload) -> Vec<Atom> {
    let mut pool = Vec::new();
    for fault in Fault::ALL {
        for ci in mutate::applicable(circuit, fault) {
            pool.push(Atom::Comp(ci, fault));
        }
    }
    for site in permanent_fault_sites(circuit, &w.vectors) {
        pool.push(Atom::Wire(site));
    }
    pool
}

/// FNV-1a, used to give every `(network, k)` unit an independent,
/// order-insensitive sampling stream derived from the campaign seed.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sweeps sampled simultaneous `k`-fault sets (`k ≥ 2`) over one
/// network: `samples` sets of `k` distinct permanent fault sites, kinds
/// mixed freely, scored exactly like the single-fault sweep (offline
/// zero-one detection, concurrent rail, degradation) and reported as one
/// mixed-kind cell with `fault_set_size = k`.
///
/// The sampling stream depends only on `(cfg.seed, network, k)` — not on
/// which other units ran or in what order — so checkpoint-resumed
/// campaigns reproduce uninterrupted ones bit-for-bit.
pub fn run_network_sets(
    sel: NetworkSel,
    cfg: &CampaignConfig,
    k: usize,
    samples: usize,
) -> NetworkReport {
    assert!(
        k >= 2,
        "run_network_sets needs k ≥ 2; use run_network for singles"
    );
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span(&format!("faults/{}/k{}", sel.name(), k));
    let circuit = build_network(sel, cfg.n);
    circuit
        .validate()
        .unwrap_or_else(|e| panic!("{} netlist failed validation: {e}", sel.name()));
    let hardened = harden(&circuit, &cfg.harden);
    let n_eval = hardened.circuit.n_outputs();
    let rail = hardened.rail_index();
    let w = workload(sel, cfg);
    let pool = atom_pool(&circuit, &w);
    {
        let mut sites: Vec<_> = pool.iter().map(|&a| atom_site(a)).collect();
        sites.sort_unstable();
        sites.dedup();
        assert!(
            sites.len() >= k,
            "{} at n={} has only {} distinct fault sites, cannot draw {k}-sets",
            sel.name(),
            cfg.n,
            sites.len()
        );
    }

    let mut base_cc = match cfg.engine {
        Engine::Compiled => Some(hardened.circuit.compile_with(&cfg.opt)),
        Engine::Interp => None,
    };

    let mut cell = KindReport::default(); // kind: None → "mixed"
    #[cfg(feature = "telemetry")]
    let mut score_hist = absort_telemetry::Histogram::new();
    #[cfg(feature = "telemetry")]
    let tel_on = absort_telemetry::enabled();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv1a(sel.name()) ^ ((k as u64) << 32) ^ 0x5e75);
    for _ in 0..samples {
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let i = rng.gen_range(0..pool.len());
            if chosen
                .iter()
                .any(|&j| atom_site(pool[j]) == atom_site(pool[i]))
            {
                continue;
            }
            chosen.push(i);
        }
        let mut patches: Vec<(usize, Fault)> = Vec::new();
        let mut wires: Vec<WireFault> = Vec::new();
        for &i in &chosen {
            match pool[i] {
                Atom::Comp(ci, f) => patches.push((hardened.component(ci), f)),
                Atom::Wire(site) => wires.push(hardened.fault(site)),
            }
        }
        #[cfg(feature = "telemetry")]
        let t0 = tel_on.then(std::time::Instant::now);
        let v = score_set(
            &w,
            n_eval,
            rail,
            &hardened,
            &mut base_cc,
            &cfg.opt,
            &patches,
            &wires,
            &mut cell.degradation,
        );
        #[cfg(feature = "telemetry")]
        if let Some(t0) = t0 {
            score_hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        tally(&mut cell, v);
    }

    #[cfg(feature = "telemetry")]
    {
        absort_telemetry::counter_add("faults.multi.sets", samples as u64);
        absort_telemetry::hist_merge("faults.mutant_score_ns", &score_hist);
    }

    NetworkReport {
        network: sel.name().to_owned(),
        n: cfg.n,
        components: circuit.n_components() as u64,
        base_cost: circuit.cost().total,
        hardened_cost: hardened.circuit.cost().total,
        tier: w.tier.to_owned(),
        vectors: w.vectors.len() as u64,
        fault_set_size: k as u64,
        kinds: vec![cell],
    }
}

/// Scores one sampled fault set. All-component sets ride the compiled
/// multi-patch tape when the compiled engine is selected; any set with a
/// wire-granularity member falls back to netlist rewriting for its
/// component members plus the interpreting [`FaultyEvaluator`] for its
/// wire members (the same split as the single-fault sweep).
#[allow(clippy::too_many_arguments)]
fn score_set(
    w: &Workload,
    n_eval: usize,
    rail: usize,
    hardened: &HardenedSorter,
    base_cc: &mut Option<CompiledCircuit>,
    opt: &CompileOptions,
    patches: &[(usize, Fault)],
    wires: &[WireFault],
    degradation: &mut Degradation,
) -> Verdict {
    if wires.is_empty() {
        if let Some(cc) = base_cc {
            return match cc.mutant_tape_multi(patches) {
                MultiMutantTape::Patched(patched) => {
                    let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&patched);
                    score_variant_wide(w, n_eval, rail, |p, o| ev.run_into(p, o), degradation)
                }
                MultiMutantTape::Dead => CLEAN,
                MultiMutantTape::Unsupported => {
                    let m = mutate::apply_set(&hardened.circuit, patches)
                        .expect("sampled distinct-site set must stay applicable");
                    let cc = m.compile_with(opt);
                    let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&cc);
                    score_variant_wide(w, n_eval, rail, |p, o| ev.run_into(p, o), degradation)
                }
            };
        }
    }
    let rewritten;
    let target: &Circuit = if patches.is_empty() {
        &hardened.circuit
    } else {
        rewritten = mutate::apply_set(&hardened.circuit, patches)
            .expect("sampled distinct-site set must stay applicable");
        &rewritten
    };
    let mut ev: FaultyEvaluator<'_, [u64; 4]> = FaultyEvaluator::new(target, wires);
    score_variant_wide(w, n_eval, rail, |p, o| ev.run_into(p, o), degradation)
}

/// One schedulable campaign unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    /// A combinational sweep: `(network, fault-set size)`.
    Comb(NetworkSel, usize),
    /// The clocked fish-streamer unit.
    Clocked,
    /// A clocked multi-fault-set unit at the given set size (`≥ 2`).
    ClockedSets(usize),
}

/// The `(network, fault_set_size)` key a unit's report carries — the
/// identity checkpoints use to tell finished units from pending ones.
fn unit_key(u: Unit) -> (&'static str, u64) {
    match u {
        Unit::Comb(sel, k) => (sel.name(), k as u64),
        Unit::Clocked => (crate::clocked_faults::CLOCKED_NETWORK, 1),
        Unit::ClockedSets(k) => (crate::clocked_faults::CLOCKED_NETWORK, k as u64),
    }
}

/// Everything that shapes a campaign's numbers, flattened into one
/// string. A checkpoint whose fingerprint differs is ignored — resuming
/// across a parameter change would silently mix incompatible results.
fn fingerprint(networks: &[NetworkSel], cfg: &CampaignConfig, opts: &CampaignOptions) -> String {
    let nets: Vec<&str> = networks.iter().map(|s| s.name()).collect();
    // Hardening changes what circuit is swept (and the cost columns);
    // the pass set provably does not change any report cell, but it is
    // fingerprinted anyway so a resumed campaign replays the exact
    // configuration of the run that wrote the checkpoint.
    let harden = [
        ("mono", cfg.harden.monotonicity),
        ("cons", cfg.harden.conservation),
        ("dup", cfg.harden.duplicate),
        ("ctl", cfg.harden.control),
    ]
    .iter()
    .filter(|(_, on)| *on)
    .map(|(name, _)| *name)
    .collect::<Vec<_>>()
    .join("+");
    format!(
        "absort-faults/v3|n={}|seed={:#x}|max_exhaustive={}|transients={}|engine={}|opt={}|harden={}|multi={}|sets={}|clocked={}|tenants={}|nets={}",
        cfg.n,
        cfg.seed,
        cfg.max_exhaustive,
        cfg.transient_samples,
        cfg.engine.name(),
        cfg.opt.passes.fingerprint(),
        harden,
        opts.multi,
        opts.sets_per_k,
        opts.clocked,
        opts.tenants.max(1),
        nets.join("+"),
    )
}

/// Writes the campaign-so-far to `path` (temp-file-then-rename, so a
/// kill mid-write leaves the previous checkpoint intact).
fn write_checkpoint(path: &Path, fp: &str, seed: u64, done: &[NetworkReport]) {
    let v = json::Value::obj([
        (
            "schema",
            json::Value::Str("absort-faults/checkpoint/v1".to_owned()),
        ),
        ("fingerprint", json::Value::Str(fp.to_owned())),
        ("seed", json::Value::Int(seed as i64)),
        (
            "networks",
            json::Value::Arr(done.iter().map(NetworkReport::to_json).collect()),
        ),
    ]);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = fs::create_dir_all(dir);
        }
    }
    let tmp = path.with_extension("tmp");
    if fs::write(&tmp, v.to_pretty()).is_ok() {
        let _ = fs::rename(&tmp, path);
    }
}

/// Loads a checkpoint's completed units, or nothing when the file is
/// absent, unparsable, or fingerprinted for a different campaign.
fn load_checkpoint(path: &Path, fp: &str) -> Vec<NetworkReport> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(v) = json::parse(&text) else {
        return Vec::new();
    };
    if v.get("schema").and_then(json::Value::as_str) != Some("absort-faults/checkpoint/v1")
        || v.get("fingerprint").and_then(json::Value::as_str) != Some(fp)
    {
        return Vec::new();
    }
    v.get("networks")
        .and_then(json::Value::as_arr)
        .map(|arr| arr.iter().filter_map(NetworkReport::from_json).collect())
        .unwrap_or_default()
}

/// Runs the campaign over the given targets with default options: the
/// classic single-fault sweep per network, no clocked unit, no
/// checkpointing.
pub fn run_campaign(networks: &[NetworkSel], cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_with(networks, cfg, &CampaignOptions::default())
}

/// Runs the full campaign: one unit per `(network, k ∈ 1..=multi)` pair
/// in network-major order, plus the clocked streamer unit last when
/// requested.
///
/// Units are independent and deterministic given `(cfg, unit)`, which is
/// what makes the checkpoint protocol sound: after every completed unit
/// the report-so-far is written to `opts.checkpoint`; a later run with
/// `opts.resume` skips the units the checkpoint covers and computes the
/// rest, producing a final report identical to an uninterrupted run.
/// When `opts.timeout` expires the campaign stops between units — always
/// after at least one freshly computed unit per invocation, so resuming
/// repeatedly terminates — and marks the report `truncated`.
pub fn run_campaign_with(
    networks: &[NetworkSel],
    cfg: &CampaignConfig,
    opts: &CampaignOptions,
) -> CampaignReport {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span("faults");
    let fp = fingerprint(networks, cfg, opts);
    let mut units: Vec<Unit> = Vec::new();
    for &sel in networks {
        for k in 1..=opts.multi.max(1) {
            units.push(Unit::Comb(sel, k));
        }
    }
    if opts.clocked {
        units.push(Unit::Clocked);
        for k in 2..=opts.multi {
            units.push(Unit::ClockedSets(k));
        }
    }

    let mut done: Vec<NetworkReport> = Vec::new();
    if opts.resume {
        if let Some(path) = &opts.checkpoint {
            let keys: Vec<_> = units.iter().map(|&u| unit_key(u)).collect();
            done = load_checkpoint(path, &fp)
                .into_iter()
                .filter(|r| keys.contains(&(r.network.as_str(), r.fault_set_size)))
                .collect();
        }
    }

    let deadline = opts.timeout.map(|t| Instant::now() + t);
    let mut truncated = false;
    let mut fresh = 0usize;
    for &u in &units {
        let key = unit_key(u);
        if done
            .iter()
            .any(|r| (r.network.as_str(), r.fault_set_size) == key)
        {
            continue;
        }
        if fresh > 0 {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    truncated = true;
                    break;
                }
            }
        }
        let rep = match u {
            Unit::Comb(sel, 1) => run_network(sel, cfg),
            Unit::Comb(sel, k) => run_network_sets(sel, cfg, k, opts.sets_per_k),
            Unit::Clocked => crate::clocked_faults::run_clocked_fish_with(cfg, opts.tenants.max(1)),
            Unit::ClockedSets(k) => crate::clocked_faults::run_clocked_fish_sets(
                cfg,
                k,
                opts.sets_per_k,
                opts.tenants.max(1),
            ),
        };
        done.push(rep);
        fresh += 1;
        if let Some(path) = &opts.checkpoint {
            write_checkpoint(path, &fp, cfg.seed, &done);
            #[cfg(feature = "telemetry")]
            absort_telemetry::counter_add("faults.checkpoint.writes", 1);
        }
    }

    // Emit in unit order regardless of the (resume-dependent) order the
    // reports were computed in, so resumed and uninterrupted runs
    // serialize identically.
    let mut ordered: Vec<NetworkReport> = Vec::with_capacity(done.len());
    for &u in &units {
        let key = unit_key(u);
        if let Some(pos) = done
            .iter()
            .position(|r| (r.network.as_str(), r.fault_set_size) == key)
        {
            ordered.push(done.remove(pos));
        }
    }
    CampaignReport {
        seed: cfg.seed,
        truncated,
        networks: ordered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fish_k_respects_builder_bound() {
        assert_eq!(fish_k(8), 2);
        assert_eq!(fish_k(16), 4);
        assert_eq!(fish_k(32), 4);
        for n in [4, 8, 16, 32, 64] {
            let k = fish_k(n);
            assert!(k >= 2 && k <= n / k, "n={n} k={k}");
        }
    }

    #[test]
    fn network_parse_roundtrips() {
        for sel in NetworkSel::ALL {
            assert_eq!(NetworkSel::parse(sel.name()), Some(sel));
        }
        assert_eq!(NetworkSel::parse("mux-merger"), Some(NetworkSel::MuxMerger));
        assert_eq!(NetworkSel::parse("nope"), None);
    }

    #[test]
    fn all_permanent_faults_detected_at_n4() {
        // The full acceptance-criteria run at n=8 lives in tests/faults.rs;
        // this in-crate smoke keeps the invariant cheap to check.
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        for sel in NetworkSel::ALL {
            let report = run_network(sel, &cfg);
            assert_eq!(report.tier, "exhaustive");
            assert_eq!(report.fault_set_size, 1);
            assert_eq!(
                report.permanent_detection_rate(),
                1.0,
                "network {} leaked a permanent fault",
                report.network
            );
            let injected: u64 = report.kinds.iter().map(|k| k.injected).sum();
            assert!(injected > 0, "network {} swept no sites", report.network);
        }
    }

    #[test]
    fn rail_matches_offline_checker_for_rewrite_kinds() {
        // Netlist-rewrite faults hit embedded core components, never a
        // primary input pin, so the hardware rail and the offline
        // zero-one oracle must agree site-for-site: the rail computes
        // exactly the oracle's two conditions, on the same (untouched)
        // inputs.
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        for sel in NetworkSel::ALL {
            let report = run_network(sel, &cfg);
            for cell in report.kinds.iter().filter(|c| {
                matches!(
                    c.kind,
                    Some(FaultKind::InvertBehaviour)
                        | Some(FaultKind::StuckSelectLow)
                        | Some(FaultKind::StuckSelectHigh)
                )
            }) {
                assert_eq!(
                    cell.flagged, cell.detected,
                    "{} {:?}: rail and offline checker disagree",
                    report.network, cell.kind
                );
            }
            // Pooled over permanent kinds the rail can only trail the
            // oracle (input-pin stuck-ats are invisible by principle).
            assert!(report.concurrent_detection_rate() <= report.permanent_detection_rate());
        }
    }

    #[test]
    fn multi_fault_sets_sample_and_score() {
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        let report = run_network_sets(NetworkSel::Prefix, &cfg, 2, 24);
        assert_eq!(report.fault_set_size, 2);
        assert_eq!(report.kinds.len(), 1);
        let cell = &report.kinds[0];
        assert_eq!(cell.kind, None);
        assert_eq!(cell.injected, 24);
        assert!(cell.detected + cell.masked <= cell.injected);
        assert!(
            cell.detected > 0,
            "two simultaneous faults should disorder something"
        );
        // Determinism: the sampling stream depends only on (seed, network, k).
        let again = run_network_sets(NetworkSel::Prefix, &cfg, 2, 24);
        assert_eq!(again.to_json().to_pretty(), report.to_json().to_pretty());
    }

    #[test]
    fn multi_fault_engines_agree() {
        for engine in Engine::ALL {
            let cfg = CampaignConfig {
                n: 4,
                engine,
                ..Default::default()
            };
            let r = run_network_sets(NetworkSel::MuxMerger, &cfg, 2, 16);
            let cell = &r.kinds[0];
            assert_eq!(cell.injected, 16, "{}", engine.name());
        }
        let interp = run_network_sets(
            NetworkSel::MuxMerger,
            &CampaignConfig {
                n: 4,
                engine: Engine::Interp,
                ..Default::default()
            },
            2,
            16,
        );
        let compiled = run_network_sets(
            NetworkSel::MuxMerger,
            &CampaignConfig {
                n: 4,
                engine: Engine::Compiled,
                ..Default::default()
            },
            2,
            16,
        );
        assert_eq!(
            interp.to_json().to_pretty(),
            compiled.to_json().to_pretty(),
            "multi-fault engines diverged"
        );
    }

    #[test]
    fn engines_agree_on_campaign_tallies() {
        // The engine selector must not change a single report cell: same
        // injected/detected/masked/flagged counts and the same
        // degradation extremes under both engines.
        for sel in [NetworkSel::Prefix, NetworkSel::Fish] {
            let mut reports = Engine::ALL.iter().map(|&engine| {
                let cfg = CampaignConfig {
                    n: 4,
                    engine,
                    ..Default::default()
                };
                run_network(sel, &cfg)
            });
            let interp = reports.next().unwrap();
            let compiled = reports.next().unwrap();
            assert_eq!(interp.kinds.len(), compiled.kinds.len());
            for (a, b) in interp.kinds.iter().zip(&compiled.kinds) {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.injected, b.injected, "{:?}", a.kind);
                assert_eq!(a.detected, b.detected, "{:?}", a.kind);
                assert_eq!(a.masked, b.masked, "{:?}", a.kind);
                assert_eq!(a.flagged, b.flagged, "{:?}", a.kind);
                assert_eq!(
                    a.degradation.max_inversions, b.degradation.max_inversions,
                    "{:?}",
                    a.kind
                );
                assert_eq!(
                    a.degradation.max_displacement, b.degradation.max_displacement,
                    "{:?}",
                    a.kind
                );
            }
        }
    }

    #[test]
    fn degradation_is_nonzero_for_detected_faults() {
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        let report = run_network(NetworkSel::Prefix, &cfg);
        let worst = report
            .kinds
            .iter()
            .map(|k| k.degradation.max_inversions)
            .max()
            .unwrap();
        assert!(worst > 0, "some fault must disorder some output");
    }

    #[test]
    fn default_options_match_plain_campaign() {
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        let nets = [NetworkSel::Prefix];
        let a = run_campaign(&nets, &cfg);
        let b = run_campaign_with(&nets, &cfg, &CampaignOptions::default());
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
        assert!(!a.truncated);
    }
}
