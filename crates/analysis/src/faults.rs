//! Fault-injection campaigns over the paper's networks (resilience
//! analysis).
//!
//! Sweeps every fault kind of the `absort-faults` taxonomy over fault
//! sites of the prefix sorter, the mux-based merge sorter, the fish
//! k-way merger, and the nonadaptive (Batcher-equal) sorter, and scores
//! two things per (network, fault kind):
//!
//! * **detection** — did some valid input produce an output differing
//!   from the sorted oracle? A fault the exhaustive checker cannot see
//!   escapes verification; the acceptance bar is 100% detection of
//!   permanent single faults at small `n` (fault-site enumeration already
//!   excludes provably vacuous sites — see
//!   `absort_circuit::faulty::permanent_fault_sites`);
//! * **graceful degradation** — across all faulty outputs, the worst
//!   Kendall-tau inversion count, the worst element displacement, and how
//!   often the fault destroyed/created tokens outright
//!   ([`absort_faults::Degradation`]).
//!
//! Component-granularity faults (behaviour inversion, stuck selects) are
//! injected by netlist rewriting (`absort_circuit::mutate`); wire
//! stuck-ats, bridges, and transient upsets are injected at evaluation
//! time (`absort_circuit::faulty`). Valid inputs are the network's
//! contract: all `2^n` vectors for the sorters, the k-sorted sequences
//! (Definition 4) for the merger. Beyond `max_exhaustive` vectors the
//! checker drops to a seeded random sample and the report's `tier` says
//! so.

use absort_circuit::eval::{pack_lanes, unpack_lanes};
use absort_circuit::faulty::{observable_wires, permanent_fault_sites, FaultyEvaluator};
use absort_circuit::mutate::{self, Fault};
use absort_circuit::{Circuit, Evaluator, WireFault};
use absort_core::{fish, lang, muxmerge, nonadaptive, prefix};
use absort_faults::{CampaignReport, Degradation, FaultKind, KindReport, NetworkReport};
use rand::prelude::*;

/// A network the campaign can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkSel {
    /// Prefix-sum adaptive sorter (`absort_core::prefix`).
    Prefix,
    /// Mux-based merge sorter (`absort_core::muxmerge`).
    MuxMerger,
    /// Fish k-way merger, combinational form (`absort_core::fish`).
    Fish,
    /// Nonadaptive sorter — Batcher-equal cost (`absort_core::nonadaptive`).
    Batcher,
}

impl NetworkSel {
    /// All four targets, in report order.
    pub const ALL: [NetworkSel; 4] = [
        NetworkSel::Prefix,
        NetworkSel::MuxMerger,
        NetworkSel::Fish,
        NetworkSel::Batcher,
    ];

    /// Stable name used in reports and telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            NetworkSel::Prefix => "prefix",
            NetworkSel::MuxMerger => "mux-merger",
            NetworkSel::Fish => "fish",
            NetworkSel::Batcher => "batcher",
        }
    }

    /// Parses a CLI `--network` value (`"all"` is handled by the caller).
    pub fn parse(s: &str) -> Option<NetworkSel> {
        match s {
            "prefix" => Some(NetworkSel::Prefix),
            "muxmerge" | "mux-merger" | "muxmerger" => Some(NetworkSel::MuxMerger),
            "fish" => Some(NetworkSel::Fish),
            "batcher" | "nonadaptive" => Some(NetworkSel::Batcher),
            _ => None,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Input width each network is built at (power of two).
    pub n: usize,
    /// Seed for sampled tiers and transient-fault placement.
    pub seed: u64,
    /// Valid-input count above which the checker samples instead of
    /// enumerating (the report's `tier` records which happened).
    pub max_exhaustive: usize,
    /// Transient (wire, vector) upsets injected per network.
    pub transient_samples: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n: 8,
            seed: 0x0ab5_0127,
            max_exhaustive: 1 << 12,
            transient_samples: 64,
        }
    }
}

/// Builds the circuit for one target at width `n`.
pub fn build_network(sel: NetworkSel, n: usize) -> Circuit {
    match sel {
        NetworkSel::Prefix => prefix::build(n),
        NetworkSel::MuxMerger => muxmerge::build(n),
        NetworkSel::Fish => fish::circuits::build_combinational_kmerger(n, fish_k(n)),
        NetworkSel::Batcher => nonadaptive::build(n),
    }
}

/// Group count for the fish merger at width `n`: the largest power of two
/// `k` with `k ≤ n/k` (the builder's own bound), and at least 2.
pub fn fish_k(n: usize) -> usize {
    let mut k = 2;
    while 2 * k <= n / (2 * k) {
        k *= 2;
    }
    k
}

/// The network's valid-input space at width `n`: every vector the
/// network's contract covers. Sorters accept anything; the fish merger
/// requires its `k` blocks individually sorted (Definition 4).
fn valid_inputs(sel: NetworkSel, n: usize) -> Vec<Vec<bool>> {
    match sel {
        NetworkSel::Fish => lang::all_k_sorted(n, fish_k(n)),
        _ => lang::all_sequences(n).collect(),
    }
}

/// Oracle outputs plus per-vector popcounts for a workload.
struct Workload {
    vectors: Vec<Vec<bool>>,
    oracle: Vec<Vec<bool>>,
    ones: Vec<usize>,
    tier: &'static str,
}

fn workload(sel: NetworkSel, cfg: &CampaignConfig) -> Workload {
    let mut vectors = valid_inputs(sel, cfg.n);
    let tier = if vectors.len() <= cfg.max_exhaustive {
        "exhaustive"
    } else {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sampled = Vec::with_capacity(cfg.max_exhaustive);
        for _ in 0..cfg.max_exhaustive {
            sampled.push(vectors[rng.gen_range(0..vectors.len())].clone());
        }
        vectors = sampled;
        "sampled"
    };
    let oracle: Vec<Vec<bool>> = vectors.iter().map(|v| lang::sorted_oracle(v)).collect();
    let ones = vectors
        .iter()
        .map(|v| v.iter().filter(|&&b| b).count())
        .collect();
    Workload {
        vectors,
        oracle,
        ones,
        tier,
    }
}

/// Outcome of sweeping one faulty variant over the whole workload.
struct Verdict {
    /// The zero-one checker fired: some output was unsorted or did not
    /// conserve its input's popcount.
    detected: bool,
    /// Some output differed from the fault-free reference at all. A site
    /// with `!differed` is *masked* (the network tolerates it); a site
    /// with `differed && !detected` escaped the checker.
    differed: bool,
}

/// Scores one faulty variant: runs every workload vector through
/// `eval_pass` in packed 64-lane chunks, applies the zero-one checker to
/// each output, and folds violating outputs into `degradation`.
fn score_variant(
    w: &Workload,
    n_inputs: usize,
    mut eval_pass: impl FnMut(&[u64]) -> Vec<u64>,
    degradation: &mut Degradation,
) -> Verdict {
    let mut v = Verdict {
        detected: false,
        differed: false,
    };
    let mut base = 0usize;
    for chunk in w.vectors.chunks(64) {
        let packed = pack_lanes(chunk, n_inputs);
        let outs = unpack_lanes(&eval_pass(&packed), chunk.len());
        for (i, out) in outs.iter().enumerate() {
            if out != &w.oracle[base + i] {
                v.differed = true;
            }
            // The deployable checker: no oracle needed, just the
            // zero-one sort property plus token conservation.
            let ones = out.iter().filter(|&&b| b).count();
            if !lang::is_sorted(out) || ones != w.ones[base + i] {
                v.detected = true;
                degradation.observe(out, w.ones[base + i]);
            }
        }
        base += chunk.len();
    }
    v
}

/// Folds one variant's verdict into a report cell.
fn tally(cell: &mut KindReport, v: Verdict) {
    cell.injected += 1;
    if v.detected {
        cell.detected += 1;
    } else if !v.differed {
        cell.masked += 1;
    }
}

/// Runs the full sweep for one network and returns its report.
pub fn run_network(sel: NetworkSel, cfg: &CampaignConfig) -> NetworkReport {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span(&format!("faults/{}", sel.name()));
    let circuit = build_network(sel, cfg.n);
    circuit
        .validate()
        .unwrap_or_else(|e| panic!("{} netlist failed validation: {e}", sel.name()));
    let w = workload(sel, cfg);

    let mut kinds: Vec<KindReport> = Vec::new();

    // --- component-granularity faults via netlist rewriting -------------
    for fault in Fault::ALL {
        let kind = match fault {
            Fault::InvertBehaviour => FaultKind::InvertBehaviour,
            Fault::StuckSelectLow => FaultKind::StuckSelectLow,
            Fault::StuckSelectHigh => FaultKind::StuckSelectHigh,
        };
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for (_, mutant) in mutate::mutants(&circuit, fault) {
            // Rewritten mutants must stay structurally sound before they
            // are trusted with an evaluation sweep.
            mutant
                .validate()
                .unwrap_or_else(|e| panic!("mutant failed validation: {e}"));
            let mut ev: Evaluator<'_, u64> = Evaluator::new(&mutant);
            let v = score_variant(&w, cfg.n, |p| ev.run(p), &mut cell.degradation);
            tally(&mut cell, v);
        }
        kinds.push(cell);
    }

    // --- wire-granularity permanent faults via the faulty evaluator -----
    let sites = permanent_fault_sites(&circuit, &w.vectors);
    for kind in [
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::BridgeOr,
    ] {
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for &site in sites.iter().filter(|s| match kind {
            FaultKind::StuckAt0 => matches!(s, WireFault::StuckAt { value: false, .. }),
            FaultKind::StuckAt1 => matches!(s, WireFault::StuckAt { value: true, .. }),
            _ => matches!(s, WireFault::BridgeOr { .. }),
        }) {
            let mut ev: FaultyEvaluator<'_, u64> = FaultyEvaluator::new(&circuit, &[site]);
            let v = score_variant(&w, cfg.n, |p| ev.run(p), &mut cell.degradation);
            tally(&mut cell, v);
        }
        kinds.push(cell);
    }

    // --- transient upsets: sampled (wire, vector) pairs -----------------
    let mut cell = KindReport {
        kind: Some(FaultKind::TransientFlip),
        ..Default::default()
    };
    let cone = observable_wires(&circuit);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7f1b);
    for _ in 0..cfg.transient_samples {
        let wire = cone[rng.gen_range(0..cone.len())];
        let vector = rng.gen_range(0..w.vectors.len()) as u64;
        let fault = WireFault::TransientFlip { wire, vector };
        let mut ev: FaultyEvaluator<'_, u64> = FaultyEvaluator::new(&circuit, &[fault]);
        let v = score_variant(&w, cfg.n, |p| ev.run(p), &mut cell.degradation);
        tally(&mut cell, v);
    }
    kinds.push(cell);

    #[cfg(feature = "telemetry")]
    {
        let injected: u64 = kinds.iter().map(|k| k.injected).sum();
        let detected: u64 = kinds.iter().map(|k| k.detected).sum();
        absort_telemetry::counter_add_many(&[
            ("faults.sites", injected),
            ("faults.detected", detected),
            (
                "faults.vectors_evaluated",
                injected * w.vectors.len() as u64,
            ),
        ]);
    }

    NetworkReport {
        network: sel.name().to_owned(),
        n: cfg.n,
        components: circuit.n_components() as u64,
        tier: w.tier.to_owned(),
        vectors: w.vectors.len() as u64,
        kinds,
    }
}

/// Runs the campaign over the given targets.
pub fn run_campaign(networks: &[NetworkSel], cfg: &CampaignConfig) -> CampaignReport {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span("faults");
    CampaignReport {
        seed: cfg.seed,
        networks: networks.iter().map(|&s| run_network(s, cfg)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fish_k_respects_builder_bound() {
        assert_eq!(fish_k(8), 2);
        assert_eq!(fish_k(16), 4);
        assert_eq!(fish_k(32), 4);
        for n in [4, 8, 16, 32, 64] {
            let k = fish_k(n);
            assert!(k >= 2 && k <= n / k, "n={n} k={k}");
        }
    }

    #[test]
    fn network_parse_roundtrips() {
        for sel in NetworkSel::ALL {
            assert_eq!(NetworkSel::parse(sel.name()), Some(sel));
        }
        assert_eq!(NetworkSel::parse("mux-merger"), Some(NetworkSel::MuxMerger));
        assert_eq!(NetworkSel::parse("nope"), None);
    }

    #[test]
    fn all_permanent_faults_detected_at_n4() {
        // The full acceptance-criteria run at n=8 lives in tests/faults.rs;
        // this in-crate smoke keeps the invariant cheap to check.
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        for sel in NetworkSel::ALL {
            let report = run_network(sel, &cfg);
            assert_eq!(report.tier, "exhaustive");
            assert_eq!(
                report.permanent_detection_rate(),
                1.0,
                "network {} leaked a permanent fault",
                report.network
            );
            let injected: u64 = report.kinds.iter().map(|k| k.injected).sum();
            assert!(injected > 0, "network {} swept no sites", report.network);
        }
    }

    #[test]
    fn degradation_is_nonzero_for_detected_faults() {
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        let report = run_network(NetworkSel::Prefix, &cfg);
        let worst = report
            .kinds
            .iter()
            .map(|k| k.degradation.max_inversions)
            .max()
            .unwrap();
        assert!(worst > 0, "some fault must disorder some output");
    }
}
