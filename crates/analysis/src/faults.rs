//! Fault-injection campaigns over the paper's networks (resilience
//! analysis).
//!
//! Sweeps every fault kind of the `absort-faults` taxonomy over fault
//! sites of the prefix sorter, the mux-based merge sorter, the fish
//! k-way merger, and the nonadaptive (Batcher-equal) sorter, and scores
//! two things per (network, fault kind):
//!
//! * **detection** — did some valid input produce an output differing
//!   from the sorted oracle? A fault the exhaustive checker cannot see
//!   escapes verification; the acceptance bar is 100% detection of
//!   permanent single faults at small `n` (fault-site enumeration already
//!   excludes provably vacuous sites — see
//!   `absort_circuit::faulty::permanent_fault_sites`);
//! * **graceful degradation** — across all faulty outputs, the worst
//!   Kendall-tau inversion count, the worst element displacement, and how
//!   often the fault destroyed/created tokens outright
//!   ([`absort_faults::Degradation`]).
//!
//! Component-granularity faults (behaviour inversion, stuck selects) are
//! injected by netlist rewriting (`absort_circuit::mutate`); wire
//! stuck-ats, bridges, and transient upsets are injected at evaluation
//! time (`absort_circuit::faulty`). Valid inputs are the network's
//! contract: all `2^n` vectors for the sorters, the k-sorted sequences
//! (Definition 4) for the merger. Beyond `max_exhaustive` vectors the
//! checker drops to a seeded random sample and the report's `tier` says
//! so.

use absort_circuit::eval::{pack_lanes, pack_lanes_wide};
use absort_circuit::faulty::{observable_wires, permanent_fault_sites, FaultyEvaluator};
use absort_circuit::mutate::{self, Fault};
use absort_circuit::{Circuit, CompiledEvaluator, Engine, Evaluator, MutantTape, WireFault};
use absort_core::{fish, lang, muxmerge, nonadaptive, prefix};
use absort_faults::{CampaignReport, Degradation, FaultKind, KindReport, NetworkReport};
use rand::prelude::*;

/// A network the campaign can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkSel {
    /// Prefix-sum adaptive sorter (`absort_core::prefix`).
    Prefix,
    /// Mux-based merge sorter (`absort_core::muxmerge`).
    MuxMerger,
    /// Fish k-way merger, combinational form (`absort_core::fish`).
    Fish,
    /// Nonadaptive sorter — Batcher-equal cost (`absort_core::nonadaptive`).
    Batcher,
}

impl NetworkSel {
    /// All four targets, in report order.
    pub const ALL: [NetworkSel; 4] = [
        NetworkSel::Prefix,
        NetworkSel::MuxMerger,
        NetworkSel::Fish,
        NetworkSel::Batcher,
    ];

    /// Stable name used in reports and telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            NetworkSel::Prefix => "prefix",
            NetworkSel::MuxMerger => "mux-merger",
            NetworkSel::Fish => "fish",
            NetworkSel::Batcher => "batcher",
        }
    }

    /// Parses a CLI `--network` value (`"all"` is handled by the caller).
    pub fn parse(s: &str) -> Option<NetworkSel> {
        match s {
            "prefix" => Some(NetworkSel::Prefix),
            "muxmerge" | "mux-merger" | "muxmerger" => Some(NetworkSel::MuxMerger),
            "fish" => Some(NetworkSel::Fish),
            "batcher" | "nonadaptive" => Some(NetworkSel::Batcher),
            _ => None,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Input width each network is built at (power of two).
    pub n: usize,
    /// Seed for sampled tiers and transient-fault placement.
    pub seed: u64,
    /// Valid-input count above which the checker samples instead of
    /// enumerating (the report's `tier` records which happened).
    pub max_exhaustive: usize,
    /// Transient (wire, vector) upsets injected per network.
    pub transient_samples: usize,
    /// Evaluation engine for the netlist-rewrite (mutant) sweeps. Each
    /// mutant is evaluated over the whole workload, so the one-time
    /// lowering pass amortizes immediately; the compiled tape is the
    /// default. Wire-granularity faults (stuck-ats, bridges, transients)
    /// always run on the interpreting [`FaultyEvaluator`] — the compiled
    /// tape reuses slots and has no per-wire identity to inject into.
    pub engine: Engine,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n: 8,
            seed: 0x0ab5_0127,
            max_exhaustive: 1 << 12,
            transient_samples: 64,
            engine: Engine::Compiled,
        }
    }
}

/// Builds the circuit for one target at width `n`.
pub fn build_network(sel: NetworkSel, n: usize) -> Circuit {
    match sel {
        NetworkSel::Prefix => prefix::build(n),
        NetworkSel::MuxMerger => muxmerge::build(n),
        NetworkSel::Fish => fish::circuits::build_combinational_kmerger(n, fish_k(n)),
        NetworkSel::Batcher => nonadaptive::build(n),
    }
}

/// Group count for the fish merger at width `n`: the largest power of two
/// `k` with `k ≤ n/k` (the builder's own bound), and at least 2.
pub fn fish_k(n: usize) -> usize {
    let mut k = 2;
    while 2 * k <= n / (2 * k) {
        k *= 2;
    }
    k
}

/// The network's valid-input space at width `n`: every vector the
/// network's contract covers. Sorters accept anything; the fish merger
/// requires its `k` blocks individually sorted (Definition 4).
fn valid_inputs(sel: NetworkSel, n: usize) -> Vec<Vec<bool>> {
    match sel {
        NetworkSel::Fish => lang::all_k_sorted(n, fish_k(n)),
        _ => lang::all_sequences(n).collect(),
    }
}

/// One workload, pre-packed for the sweep hot loop: 64-lane input
/// chunks, the packed sorted oracle per chunk, and the valid-lane masks.
/// Packing once here instead of once per faulty variant removes the
/// dominant allocation churn of the campaign (every variant used to
/// re-pack every chunk and allocate a fresh output vector per pass).
struct Workload {
    vectors: Vec<Vec<bool>>,
    ones: Vec<usize>,
    tier: &'static str,
    /// Packed 64-lane input chunks, in workload order.
    packed: Vec<Vec<u64>>,
    /// The same inputs packed as `[u64; 4]` wide chunks (256 vectors per
    /// chunk; word `k` of wide chunk `wi` is 64-lane chunk `4·wi + k`).
    /// The compiled engine sweeps these, quartering its pass count.
    packed_wide: Vec<Vec<[u64; 4]>>,
    /// Packed oracle outputs, one entry per input chunk.
    packed_oracle: Vec<Vec<u64>>,
    /// Low-bits mask of the lanes each chunk actually occupies.
    masks: Vec<u64>,
}

fn workload(sel: NetworkSel, cfg: &CampaignConfig) -> Workload {
    let mut vectors = valid_inputs(sel, cfg.n);
    let tier = if vectors.len() <= cfg.max_exhaustive {
        "exhaustive"
    } else {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sampled = Vec::with_capacity(cfg.max_exhaustive);
        for _ in 0..cfg.max_exhaustive {
            sampled.push(vectors[rng.gen_range(0..vectors.len())].clone());
        }
        vectors = sampled;
        "sampled"
    };
    let oracle: Vec<Vec<bool>> = vectors.iter().map(|v| lang::sorted_oracle(v)).collect();
    let ones = vectors
        .iter()
        .map(|v| v.iter().filter(|&&b| b).count())
        .collect();
    let packed = vectors.chunks(64).map(|c| pack_lanes(c, cfg.n)).collect();
    let packed_wide = vectors
        .chunks(256)
        .map(|c| pack_lanes_wide::<4>(c, cfg.n))
        .collect();
    let packed_oracle = oracle.chunks(64).map(|c| pack_lanes(c, cfg.n)).collect();
    let masks = vectors
        .chunks(64)
        .map(|c| {
            if c.len() == 64 {
                u64::MAX
            } else {
                (1u64 << c.len()) - 1
            }
        })
        .collect();
    Workload {
        vectors,
        ones,
        tier,
        packed,
        packed_wide,
        packed_oracle,
        masks,
    }
}

/// Outcome of sweeping one faulty variant over the whole workload.
struct Verdict {
    /// The zero-one checker fired: some output was unsorted or did not
    /// conserve its input's popcount.
    detected: bool,
    /// Some output differed from the fault-free reference at all. A site
    /// with `!differed` is *masked* (the network tolerates it); a site
    /// with `differed && !detected` escaped the checker.
    differed: bool,
}

/// Scores one faulty variant: runs every pre-packed 64-lane chunk through
/// `eval_pass` into a reused output buffer, diffs the packed outputs
/// against the packed oracle, and applies the zero-one checker only to
/// lanes that differ.
///
/// Skipping non-differing lanes loses nothing: a lane equal to the
/// oracle *is* a sorted vector with the conserved popcount, so the
/// checker (sortedness + token conservation, exactly the oracle's two
/// defining properties) cannot fire on it. Differing lanes are unpacked
/// and checked in ascending order, so detection results and the
/// degradation-observation sequence are identical to the old
/// vector-at-a-time sweep.
fn score_variant(
    w: &Workload,
    n_outputs: usize,
    mut eval_pass: impl FnMut(&[u64], &mut [u64]),
    degradation: &mut Degradation,
) -> Verdict {
    let mut v = Verdict {
        detected: false,
        differed: false,
    };
    let mut out = vec![0u64; n_outputs];
    let mut lane_buf: Vec<bool> = Vec::with_capacity(n_outputs);
    let mut base = 0usize;
    for (ci, packed) in w.packed.iter().enumerate() {
        eval_pass(packed, &mut out);
        check_chunk(w, ci, base, |o| out[o], &mut lane_buf, degradation, &mut v);
        base += w.masks[ci].count_ones() as usize;
    }
    v
}

/// Scores one faulty variant with `[u64; 4]` wide passes: each pass
/// covers four 64-lane chunks, quartering per-variant evaluation count.
/// This is what makes per-mutant lowering pay for itself in the compiled
/// campaign path — the tape is walked once per 256 vectors instead of
/// four times. Chunk checks run in the same ascending order as
/// [`score_variant`], so verdicts and degradation sequences match the
/// 64-lane sweep exactly.
fn score_variant_wide(
    w: &Workload,
    n_outputs: usize,
    mut eval_pass: impl FnMut(&[[u64; 4]], &mut [[u64; 4]]),
    degradation: &mut Degradation,
) -> Verdict {
    let mut v = Verdict {
        detected: false,
        differed: false,
    };
    let mut out = vec![[0u64; 4]; n_outputs];
    let mut lane_buf: Vec<bool> = Vec::with_capacity(n_outputs);
    let mut base = 0usize;
    for (wi, packed) in w.packed_wide.iter().enumerate() {
        eval_pass(packed, &mut out);
        for (ci, mask) in w.masks.iter().enumerate().skip(wi * 4).take(4) {
            let k = ci - wi * 4;
            check_chunk(
                w,
                ci,
                base,
                |o| out[o][k],
                &mut lane_buf,
                degradation,
                &mut v,
            );
            base += mask.count_ones() as usize;
        }
    }
    v
}

/// Diffs one 64-lane output chunk (read through `out_word`, which maps an
/// output index to its packed word) against the packed oracle and applies
/// the zero-one checker to differing lanes, folding results into `v`.
fn check_chunk(
    w: &Workload,
    ci: usize,
    base: usize,
    out_word: impl Fn(usize) -> u64,
    lane_buf: &mut Vec<bool>,
    degradation: &mut Degradation,
    v: &mut Verdict,
) {
    let mask = w.masks[ci];
    let n_outputs = w.packed_oracle[ci].len();
    let mut differed = 0u64;
    for (o, &oracle) in w.packed_oracle[ci].iter().enumerate() {
        differed |= (out_word(o) ^ oracle) & mask;
    }
    if differed != 0 {
        v.differed = true;
        let mut rest = differed;
        while rest != 0 {
            let lane = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            lane_buf.clear();
            lane_buf.extend((0..n_outputs).map(|o| out_word(o) >> lane & 1 == 1));
            // The deployable checker: no oracle needed, just the
            // zero-one sort property plus token conservation.
            let ones = lane_buf.iter().filter(|&&b| b).count();
            if !lang::is_sorted(lane_buf) || ones != w.ones[base + lane] {
                v.detected = true;
                degradation.observe(lane_buf, w.ones[base + lane]);
            }
        }
    }
}

/// Folds one variant's verdict into a report cell.
fn tally(cell: &mut KindReport, v: Verdict) {
    cell.injected += 1;
    if v.detected {
        cell.detected += 1;
    } else if !v.differed {
        cell.masked += 1;
    }
}

/// Runs the full sweep for one network and returns its report.
pub fn run_network(sel: NetworkSel, cfg: &CampaignConfig) -> NetworkReport {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span(&format!("faults/{}", sel.name()));
    let circuit = build_network(sel, cfg.n);
    circuit
        .validate()
        .unwrap_or_else(|e| panic!("{} netlist failed validation: {e}", sel.name()));
    let w = workload(sel, cfg);

    let mut kinds: Vec<KindReport> = Vec::new();

    // Compiled once per network; each mutant below is expressed as an
    // in-place tape patch instead of a full per-mutant lowering (the
    // dominant cost of compiled campaigns at small `n`).
    let mut base_cc = match cfg.engine {
        Engine::Compiled => Some(circuit.compile()),
        Engine::Interp => None,
    };

    // --- component-granularity faults via netlist rewriting -------------
    for fault in Fault::ALL {
        let kind = match fault {
            Fault::InvertBehaviour => FaultKind::InvertBehaviour,
            Fault::StuckSelectLow => FaultKind::StuckSelectLow,
            Fault::StuckSelectHigh => FaultKind::StuckSelectHigh,
        };
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for (ci, mutant) in mutate::mutants(&circuit, fault) {
            // Rewritten mutants must stay structurally sound before they
            // are trusted with an evaluation sweep.
            mutant
                .validate()
                .unwrap_or_else(|e| panic!("mutant failed validation: {e}"));
            let v = match &mut base_cc {
                Some(cc) => match cc.mutant_tape(ci, fault) {
                    // Wide walks amortize per-mutant setup further: one
                    // tape pass covers 256 vectors.
                    MutantTape::Patched(patched) => {
                        let mut ev: CompiledEvaluator<'_, [u64; 4]> =
                            CompiledEvaluator::new(&patched);
                        score_variant_wide(
                            &w,
                            cfg.n,
                            |p, o| ev.run_into(p, o),
                            &mut cell.degradation,
                        )
                    }
                    // Dead site: the mutant cannot differ from the base
                    // circuit, which matches the oracle on valid inputs.
                    MutantTape::Dead => Verdict {
                        detected: false,
                        differed: false,
                    },
                    MutantTape::Unsupported => {
                        let cc = mutant.compile();
                        let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&cc);
                        score_variant_wide(
                            &w,
                            cfg.n,
                            |p, o| ev.run_into(p, o),
                            &mut cell.degradation,
                        )
                    }
                },
                None => {
                    let mut ev: Evaluator<'_, u64> = Evaluator::new(&mutant);
                    score_variant(&w, cfg.n, |p, o| ev.run_into(p, o), &mut cell.degradation)
                }
            };
            tally(&mut cell, v);
        }
        kinds.push(cell);
    }

    // --- wire-granularity permanent faults via the faulty evaluator -----
    let sites = permanent_fault_sites(&circuit, &w.vectors);
    for kind in [
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::BridgeOr,
    ] {
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for &site in sites.iter().filter(|s| match kind {
            FaultKind::StuckAt0 => matches!(s, WireFault::StuckAt { value: false, .. }),
            FaultKind::StuckAt1 => matches!(s, WireFault::StuckAt { value: true, .. }),
            _ => matches!(s, WireFault::BridgeOr { .. }),
        }) {
            let mut ev: FaultyEvaluator<'_, [u64; 4]> = FaultyEvaluator::new(&circuit, &[site]);
            let v = score_variant_wide(&w, cfg.n, |p, o| ev.run_into(p, o), &mut cell.degradation);
            tally(&mut cell, v);
        }
        kinds.push(cell);
    }

    // --- transient upsets: sampled (wire, vector) pairs -----------------
    let mut cell = KindReport {
        kind: Some(FaultKind::TransientFlip),
        ..Default::default()
    };
    let cone = observable_wires(&circuit);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7f1b);
    for _ in 0..cfg.transient_samples {
        let wire = cone[rng.gen_range(0..cone.len())];
        let vector = rng.gen_range(0..w.vectors.len()) as u64;
        let fault = WireFault::TransientFlip { wire, vector };
        // The faulty evaluator counts `V::LANES` vectors per pass, so the
        // wide walk keeps transient lane targeting exact as long as the
        // wide chunks are fed in workload order.
        let mut ev: FaultyEvaluator<'_, [u64; 4]> = FaultyEvaluator::new(&circuit, &[fault]);
        let v = score_variant_wide(&w, cfg.n, |p, o| ev.run_into(p, o), &mut cell.degradation);
        tally(&mut cell, v);
    }
    kinds.push(cell);

    #[cfg(feature = "telemetry")]
    {
        let injected: u64 = kinds.iter().map(|k| k.injected).sum();
        let detected: u64 = kinds.iter().map(|k| k.detected).sum();
        absort_telemetry::counter_add_many(&[
            ("faults.sites", injected),
            ("faults.detected", detected),
            (
                "faults.vectors_evaluated",
                injected * w.vectors.len() as u64,
            ),
        ]);
    }

    NetworkReport {
        network: sel.name().to_owned(),
        n: cfg.n,
        components: circuit.n_components() as u64,
        tier: w.tier.to_owned(),
        vectors: w.vectors.len() as u64,
        kinds,
    }
}

/// Runs the campaign over the given targets.
pub fn run_campaign(networks: &[NetworkSel], cfg: &CampaignConfig) -> CampaignReport {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span("faults");
    CampaignReport {
        seed: cfg.seed,
        networks: networks.iter().map(|&s| run_network(s, cfg)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fish_k_respects_builder_bound() {
        assert_eq!(fish_k(8), 2);
        assert_eq!(fish_k(16), 4);
        assert_eq!(fish_k(32), 4);
        for n in [4, 8, 16, 32, 64] {
            let k = fish_k(n);
            assert!(k >= 2 && k <= n / k, "n={n} k={k}");
        }
    }

    #[test]
    fn network_parse_roundtrips() {
        for sel in NetworkSel::ALL {
            assert_eq!(NetworkSel::parse(sel.name()), Some(sel));
        }
        assert_eq!(NetworkSel::parse("mux-merger"), Some(NetworkSel::MuxMerger));
        assert_eq!(NetworkSel::parse("nope"), None);
    }

    #[test]
    fn all_permanent_faults_detected_at_n4() {
        // The full acceptance-criteria run at n=8 lives in tests/faults.rs;
        // this in-crate smoke keeps the invariant cheap to check.
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        for sel in NetworkSel::ALL {
            let report = run_network(sel, &cfg);
            assert_eq!(report.tier, "exhaustive");
            assert_eq!(
                report.permanent_detection_rate(),
                1.0,
                "network {} leaked a permanent fault",
                report.network
            );
            let injected: u64 = report.kinds.iter().map(|k| k.injected).sum();
            assert!(injected > 0, "network {} swept no sites", report.network);
        }
    }

    #[test]
    fn engines_agree_on_campaign_tallies() {
        // The engine selector must not change a single report cell: same
        // injected/detected/masked counts and the same degradation
        // extremes under both engines.
        for sel in [NetworkSel::Prefix, NetworkSel::Fish] {
            let mut reports = Engine::ALL.iter().map(|&engine| {
                let cfg = CampaignConfig {
                    n: 4,
                    engine,
                    ..Default::default()
                };
                run_network(sel, &cfg)
            });
            let interp = reports.next().unwrap();
            let compiled = reports.next().unwrap();
            assert_eq!(interp.kinds.len(), compiled.kinds.len());
            for (a, b) in interp.kinds.iter().zip(&compiled.kinds) {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.injected, b.injected, "{:?}", a.kind);
                assert_eq!(a.detected, b.detected, "{:?}", a.kind);
                assert_eq!(a.masked, b.masked, "{:?}", a.kind);
                assert_eq!(
                    a.degradation.max_inversions, b.degradation.max_inversions,
                    "{:?}",
                    a.kind
                );
                assert_eq!(
                    a.degradation.max_displacement, b.degradation.max_displacement,
                    "{:?}",
                    a.kind
                );
            }
        }
    }

    #[test]
    fn degradation_is_nonzero_for_detected_faults() {
        let cfg = CampaignConfig {
            n: 4,
            ..Default::default()
        };
        let report = run_network(NetworkSel::Prefix, &cfg);
        let worst = report
            .kinds
            .iter()
            .map(|k| k.degradation.max_inversions)
            .max()
            .unwrap();
        assert!(worst > 0, "some fault must disorder some output");
    }
}
