//! Section IV concentrator comparison (experiment E14).
//!
//! The paper tabulates (in prose) the concentrator landscape:
//! expander-based constructions have `O(n)` cost but unknown
//! concentration time; ranking-tree designs cost `O(n lg² n)`; the
//! prefix/mux-merger sorters give `O(n lg n)` cost with `O(lg² n)` time;
//! and the fish sorter gives a **time-multiplexed `O(n)`-cost,
//! `O(lg² n)`-time concentrator**, matched only by the columnsort
//! network.

use crate::table::{group_digits, Table};
use absort_core::sorter::SorterKind;
use absort_networks::concentrator::Concentrator;

/// One concentrator design's numbers at size `n`.
#[derive(Debug, Clone)]
pub struct ConcRow {
    /// Design name.
    pub name: &'static str,
    /// Asymptotic cost as the paper quotes it.
    pub cost_asymptotic: &'static str,
    /// Concentration time as the paper quotes it.
    pub time_asymptotic: &'static str,
    /// Numeric cost at `n` (cited formulas use constant 1).
    pub cost: u64,
    /// Numeric time at `n`, `None` when unknown (expanders).
    pub time: Option<u64>,
    /// Whether the numbers are measured from a built construction.
    pub measured: bool,
}

/// Generates the comparison rows at size `n`.
pub fn rows(n: usize) -> Vec<ConcRow> {
    assert!(n.is_power_of_two() && n >= 8);
    let k = n.trailing_zeros() as u64;
    let prefix = Concentrator::new(SorterKind::Prefix, n, n);
    let mux = Concentrator::new(SorterKind::MuxMerger, n, n);
    let fish = Concentrator::new(SorterKind::Fish { k: None }, n, n);
    vec![
        ConcRow {
            name: "expander-based [2,10,16,21,22]",
            cost_asymptotic: "O(n)",
            time_asymptotic: "unknown",
            cost: n as u64,
            time: None,
            measured: false,
        },
        ConcRow {
            name: "ranking trees [11,13]",
            cost_asymptotic: "O(n lg^2 n)",
            time_asymptotic: "O(lg n)",
            cost: n as u64 * k * k,
            time: Some(k),
            measured: false,
        },
        ConcRow {
            name: "prefix sorter (this paper)",
            cost_asymptotic: "O(n lg n)",
            time_asymptotic: "O(lg^2 n)",
            cost: prefix.cost(),
            time: Some(prefix.time()),
            measured: true,
        },
        ConcRow {
            name: "mux-merger sorter (this paper)",
            cost_asymptotic: "O(n lg n)",
            time_asymptotic: "O(lg^2 n)",
            cost: mux.cost(),
            time: Some(mux.time()),
            measured: true,
        },
        ConcRow {
            name: "fish sorter, time-multiplexed (this paper)",
            cost_asymptotic: "O(n)",
            time_asymptotic: "O(lg^2 n)",
            cost: fish.cost(),
            time: Some(fish.time()),
            measured: true,
        },
    ]
}

/// Renders the comparison at size `n`.
pub fn render(n: usize) -> String {
    let mut t = Table::new([
        "construction".to_string(),
        "cost".into(),
        "time".into(),
        format!("cost @ n={n}"),
        format!("time @ n={n}"),
        "numbers".into(),
    ]);
    for r in rows(n) {
        t.row([
            r.name.to_string(),
            r.cost_asymptotic.into(),
            r.time_asymptotic.into(),
            group_digits(r.cost),
            r.time.map_or("unknown".into(), group_digits),
            if r.measured {
                "measured"
            } else {
                "cited formula"
            }
            .into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fish_concentrator_linear_and_fast() {
        let n = 1usize << 16;
        let rows = rows(n);
        let fish = rows.iter().find(|r| r.name.contains("fish")).unwrap();
        assert!(fish.cost < 18 * n as u64, "O(n) cost claim");
        let t = fish.time.unwrap();
        let lg2 = 16u64 * 16;
        assert!(t < 10 * lg2, "O(lg² n) time claim, got {t}");
    }

    #[test]
    fn sorter_concentrators_beat_ranking_trees_on_cost() {
        let n = 1usize << 16;
        let rows = rows(n);
        let ranking = rows
            .iter()
            .find(|r| r.name.contains("ranking"))
            .unwrap()
            .cost;
        for name in ["prefix", "mux-merger", "fish"] {
            let c = rows.iter().find(|r| r.name.contains(name)).unwrap().cost;
            assert!(c < ranking, "{name}: {c} < {ranking}");
        }
    }

    #[test]
    fn render_shape() {
        let s = render(1 << 10);
        assert_eq!(s.lines().count(), 2 + 5);
        assert!(s.contains("unknown"));
    }
}
