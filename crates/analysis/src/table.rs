//! Minimal aligned-table rendering (ASCII and CSV).
//!
//! No serde available offline, so reports are rendered by hand: a
//! [`Table`] collects typed rows and prints either an aligned monospace
//! table (for terminals and EXPERIMENTS.md) or CSV (for downstream
//! plotting).

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned monospace table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = width[c]);
                if c + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV (naive quoting: cells containing commas are
    /// double-quoted).
    pub fn to_csv(&self) -> String {
        let quote = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(quote).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a large count with thousands separators (readability of the
/// cost columns).
pub fn group_digits(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "cost"]);
        t.row(["16", "192"]).row(["1024", "40960"]);
        let s = t.render();
        assert!(s.contains("n     cost"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1,5", "x\"y"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(1), "1");
        assert_eq!(group_digits(1234), "1,234");
        assert_eq!(group_digits(1234567), "1,234,567");
    }
}
