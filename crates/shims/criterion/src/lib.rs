//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId::new`, `Throughput::Elements`,
//! and `black_box` — over a simple median-of-samples wall-clock harness.
//!
//! Differences from real criterion: no statistical outlier analysis, no
//! HTML reports, no saved baselines. Each benchmark is warmed up briefly
//! and then timed for a fixed budget; the median per-iteration time (and
//! derived throughput) is printed as one line:
//!
//! ```text
//! eval_engines/scalar_256_vectors/1024  time: 1.234 ms/iter  thrpt: 212.4 Melem/s
//! ```
//!
//! A substring filter may be passed on the command line (as with real
//! criterion): `cargo bench --bench eval_engines -- scalar`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id with no parameter component.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark routine; handed to the closure given to
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    /// Median seconds per iteration, filled in by [`Bencher::iter`].
    median_spi: f64,
    warm_up: Duration,
    measure: Duration,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses (at least once),
        // and estimate the per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        loop {
            black_box(f());
            iters_done += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let est_spi = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Measurement: split the budget into samples of batched
        // iterations and take the median sample.
        const SAMPLES: usize = 11;
        let budget = self.measure.as_secs_f64();
        let batch = ((budget / SAMPLES as f64 / est_spi.max(1e-9)).ceil() as u64).max(1);
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        self.median_spi = samples[SAMPLES / 2];
    }
}

fn fmt_time(spi: f64) -> String {
    if spi >= 1.0 {
        format!("{spi:.3} s/iter")
    } else if spi >= 1e-3 {
        format!("{:.3} ms/iter", spi * 1e3)
    } else if spi >= 1e-6 {
        format!("{:.3} µs/iter", spi * 1e6)
    } else {
        format!("{:.1} ns/iter", spi * 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.2} {unit}/s")
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling is budget-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            median_spi: f64::NAN,
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
        };
        f(&mut b);
        let spi = b.median_spi;
        let mut line = format!("{full:<56} time: {}", fmt_time(spi));
        if spi.is_finite() && spi > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!("  thrpt: {}", fmt_rate(n as f64 / spi, "elem")));
                }
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!("  thrpt: {}", fmt_rate(n as f64 / spi, "B")));
                }
                None => {}
            }
        }
        println!("{line}");
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; all reporting is line-at-a-time).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; anything after `--` that is not a
        // flag is a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let ms = |var: &str, default_ms: u64| {
            Duration::from_millis(
                std::env::var(var)
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(default_ms),
            )
        };
        Criterion {
            filter,
            warm_up: ms("CRITERION_WARMUP_MS", 60),
            measure: ms("CRITERION_MEASURE_MS", 350),
        }
    }
}

impl Criterion {
    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.id.clone())
            .bench_function(BenchmarkId::from_parameter(""), f);
        self
    }
}

/// Declares a group-runner function from a list of `fn(&mut Criterion)`
/// targets, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            filter: None,
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(20),
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        let mut acc = 0u64;
        g.bench_function(BenchmarkId::new("spin", 100), |b| {
            b.iter(|| {
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
