//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API subset the workspace's tests and examples
//! use: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `SliceRandom::{shuffle, choose}`, and the prelude. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic for a given
//! seed, statistically strong enough for test-vector generation, and not
//! intended for cryptography.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 (matches the
    /// spirit, though not the exact stream, of rand 0.8).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut state);
            for (i, byte) in b.iter_mut().enumerate() {
                *byte = (z >> (8 * i)) as u8;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(w);
        }
        // An all-zero state would be a fixed point; nudge it.
        if s == [0; 4] {
            s = [
                0x9E3779B97F4A7C15,
                0xBF58476D1CE4E5B9,
                0x94D049BB133111EB,
                1,
            ];
        }
        StdRng { s }
    }
}

/// `SmallRng` is the same generator here.
pub type SmallRng = StdRng;

/// Types uniformly sampleable from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high]` (inclusive on both ends).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128) - (low as i128); // 0 ..= 2^64-1
                if span == (u64::MAX as i128) {
                    return rng.next_u64() as $t;
                }
                let span = (span + 1) as u128;
                // Lemire-style widening multiply; bias < 2^-64 per draw.
                let v = ((rng.next_u64() as u128) * span) >> 64;
                ((low as i128) + (v as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + SubOne> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.sub_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Helper to turn a half-open bound into an inclusive one.
pub trait SubOne {
    /// `self - 1` for integers; identity for floats (where half-open vs
    /// closed is immaterial at f64 resolution).
    fn sub_one(self) -> Self;
}

macro_rules! impl_sub_one_int {
    ($($t:ty),*) => {$(
        impl SubOne for $t {
            #[inline]
            fn sub_one(self) -> Self { self - 1 }
        }
    )*};
}

impl_sub_one_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SubOne for f32 {
    fn sub_one(self) -> Self {
        self
    }
}

impl SubOne for f64 {
    fn sub_one(self) -> Self {
        self
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self { rng.next_u64() as $t }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A random value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform value in the given range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

pub mod seq {
    //! Sequence-related traits, as in `rand::seq`.
    pub use super::SliceRandom;
}

pub mod rngs {
    //! Generator types, as in `rand::rngs`.
    pub use super::{SmallRng, StdRng};
}

pub mod prelude {
    //! The usual `use rand::prelude::*` surface.
    pub use super::{Rng, RngCore, SeedableRng, SliceRandom, SmallRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
        // Range of a single value must be sampleable.
        assert_eq!(rng.gen_range(4u32..5), 4);
        assert_eq!(rng.gen_range(9usize..=9), 9);
    }

    #[test]
    fn gen_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0)); // uniform draws land in [0,1), so p=1.0 always hits
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "{hits}");
    }

    #[test]
    fn standard_draws_cover_types() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u64 = rng.gen();
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
