//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), range / tuple /
//! `any::<T>()` strategies, `prop_map` / `prop_flat_map`,
//! `proptest::collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantic differences from real proptest, acceptable for these tests:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the regular assert message; it is not minimised.
//! * **Deterministic seeding.** Case `i` of test `t` derives its RNG seed
//!   from `hash(module_path, t, i)`, so failures reproduce across runs.
//! * `PROPTEST_CASES` (env) overrides the per-test case count.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration, as in `proptest::test_runner`.

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Derives a deterministic per-case RNG.
    pub fn case_rng(test_path: &str, case: u32) -> rand::StdRng {
        use rand::SeedableRng;
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_path.hash(&mut h);
        case.hash(&mut h);
        rand::StdRng::seed_from_u64(h.finish())
    }
}

pub mod strategy {
    //! Value-generation strategies, as in `proptest::strategy`.

    use rand::{Rng, StdRng};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` directly
    /// yields a value (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::SampleUniform + rand::SubOne + Copy> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + Copy> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_strategy_for_tuples {
        ($(($($S:ident $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuples! {
        (S0 0);
        (S0 0, S1 1);
        (S0 0, S1 1, S2 2);
        (S0 0, S1 1, S2 2, S3 3);
        (S0 0, S1 1, S2 2, S3 3, S4 4);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    }
}

pub mod arbitrary {
    //! `any::<T>()` support, as in `proptest::arbitrary`.

    use rand::{Rng, StdRng};

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> crate::strategy::Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies, as in `proptest::collection`.

    use crate::strategy::Strategy;
    use rand::{Rng, StdRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification: exact or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `elem` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

// Re-export at crate root as `proptest::prop::...` is spelled
// `proptest::collection::...` in this workspace; nothing more needed.

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __strats = ($($strat,)+);
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::case_rng(__path, __case);
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pow2_vec(max_exp: u32) -> impl Strategy<Value = Vec<bool>> {
        (1..=max_exp).prop_flat_map(|a| collection::vec(any::<bool>(), 1usize << a))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples destructure.
        #[test]
        fn ranges_and_tuples(a in 1u32..=9, (x, y) in (0usize..40, any::<u64>())) {
            prop_assert!((1..=9).contains(&a));
            prop_assert!(x < 40);
            let _ = y;
        }

        /// prop_flat_map-dependent sizes hold.
        #[test]
        fn flat_map_sizes(v in pow2_vec(6)) {
            prop_assert!(v.len().is_power_of_two());
            prop_assert!(v.len() <= 64);
        }

        /// prop_map transforms values.
        #[test]
        fn map_applies(n in (0usize..=10).prop_map(|k| 2 * k)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n <= 20);
        }
    }

    #[test]
    fn deterministic_cases() {
        use crate::strategy::Strategy;
        let s = (0u64..=u64::MAX,);
        let a = s.generate(&mut crate::test_runner::case_rng("t", 3));
        let b = s.generate(&mut crate::test_runner::case_rng("t", 3));
        let c = s.generate(&mut crate::test_runner::case_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
