//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`, so this shim maps that surface onto
//! `std::thread::scope` (stable since 1.63). Differences from real
//! crossbeam that are acceptable here:
//!
//! * `scope` never returns `Err`: `std::thread::scope` propagates panics
//!   from un-joined child threads by resuming the panic in the parent, so
//!   every call site's `.expect(...)` simply never fires.
//! * `ScopedJoinHandle` exposes only `join`.

#![forbid(unsafe_code)]

pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads; mirrors
    /// `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; mirrors
    /// `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame; all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let mut left = 0;
        let mut right = 0;
        super::thread::scope(|s| {
            let hl = s.spawn(|_| data[..2].iter().sum::<u64>());
            let hr = s.spawn(|_| data[2..].iter().sum::<u64>());
            left = hl.join().expect("left");
            right = hr.join().expect("right");
        })
        .expect("scope");
        assert_eq!(left + right, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }
}
