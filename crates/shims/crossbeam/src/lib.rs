//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join` (mapped onto `std::thread::scope`, stable
//! since 1.63) and, since the serving layer landed, the bounded MPMC
//! subset of `crossbeam::channel` (mapped onto a `Mutex<VecDeque>` +
//! two `Condvar`s). Differences from real crossbeam that are acceptable
//! here:
//!
//! * `scope` never returns `Err`: `std::thread::scope` propagates panics
//!   from un-joined child threads by resuming the panic in the parent, so
//!   every call site's `.expect(...)` simply never fires.
//! * `ScopedJoinHandle` exposes only `join`.
//! * `channel` exposes only `bounded` and the blocking/non-blocking/
//!   timed send-receive surface the serve daemon needs — no `select!`,
//!   no unbounded channels, no zero-capacity rendezvous channels.

#![forbid(unsafe_code)]

pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads; mirrors
    /// `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; mirrors
    /// `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame; all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Bounded multi-producer multi-consumer channels, mirroring the
    //! `crossbeam-channel` API subset used by `absort-serve`: a fixed
    //! capacity ring with blocking `send`/`recv`, non-blocking
    //! `try_send`/`try_recv` (the load-shedding primitives), and a timed
    //! `recv_timeout` (the worker idle poll). Disconnection follows
    //! crossbeam semantics: a receiver drains buffered messages before
    //! reporting `Disconnected`, and senders fail fast once every
    //! receiver is gone.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error for [`Sender::try_send`]: the message is handed back so a
    /// shedding caller can still answer it (e.g. with an `Overloaded`
    /// reply) instead of losing it.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
            }
        }
    }

    /// Error for [`Sender::send`]: every receiver has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Receiver::recv`]: the channel is empty and every
    /// sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// The sending half; clonable for multi-producer use.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable for multi-consumer (worker pool) use.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.shared.inner.lock().expect("channel poisoned");
            g.senders -= 1;
            if g.senders == 0 {
                // Wake blocked receivers so they can observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.shared.inner.lock().expect("channel poisoned");
            g.receivers -= 1;
            if g.receivers == 0 {
                // Wake blocked senders so they can observe disconnection.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Non-blocking send: enqueues, or reports `Full`/`Disconnected`
        /// immediately with the message handed back.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut g = self.shared.inner.lock().expect("channel poisoned");
            if g.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if g.queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(msg));
            }
            g.queue.push_back(msg);
            drop(g);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Blocking send: waits for space (or for disconnection).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut g = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if g.receivers == 0 {
                    return Err(SendError(msg));
                }
                if g.queue.len() < self.shared.capacity {
                    g.queue.push_back(msg);
                    drop(g);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                g = self.shared.not_full.wait(g).expect("channel poisoned");
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when nothing is buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive: drains buffered messages even after all
        /// senders dropped, then reports `RecvError`.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = g.queue.pop_front() {
                    drop(g);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.shared.not_empty.wait(g).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.shared.inner.lock().expect("channel poisoned");
            if let Some(msg) = g.queue.pop_front() {
                drop(g);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if g.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline; used for idle polls that must still
        /// notice shutdown flags.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = g.queue.pop_front() {
                    drop(g);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(g, remaining)
                    .expect("channel poisoned");
                g = guard;
                if res.timed_out() && g.queue.is_empty() {
                    if g.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when nothing is buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Creates a bounded channel with space for `capacity` messages.
    /// A zero capacity is rounded up to one (this shim has no rendezvous
    /// channels; callers wanting "as small as possible" still make
    /// progress).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity.clamp(1, 1024)),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let mut left = 0;
        let mut right = 0;
        super::thread::scope(|s| {
            let hl = s.spawn(|_| data[..2].iter().sum::<u64>());
            let hr = s.spawn(|_| data[2..].iter().sum::<u64>());
            left = hl.join().expect("left");
            right = hr.join().expect("right");
        })
        .expect("scope");
        assert_eq!(left + right, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }

    mod channel {
        use crate::channel::*;
        use std::time::Duration;

        #[test]
        fn try_send_sheds_at_capacity() {
            let (tx, rx) = bounded::<u32>(2);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Ok(()));
            match tx.try_send(3) {
                Err(TrySendError::Full(v)) => assert_eq!(v, 3),
                other => panic!("expected Full, got {other:?}"),
            }
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Ok(3));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnection_drains_then_errors() {
            let (tx, rx) = bounded::<u32>(4);
            tx.try_send(7).unwrap();
            tx.try_send(8).unwrap();
            drop(tx);
            // Buffered messages survive sender disconnect…
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.try_recv(), Ok(8));
            // …then the disconnect is reported.
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_fast_without_receivers() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
            match tx.try_send(6) {
                Err(TrySendError::Disconnected(v)) => assert_eq!(v, 6),
                other => panic!("expected Disconnected, got {other:?}"),
            }
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.try_send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        }

        #[test]
        fn mpmc_across_threads_delivers_everything() {
            let (tx, rx) = bounded::<u64>(8);
            let total: u64 = std::thread::scope(|s| {
                let mut sums = Vec::new();
                for _ in 0..3 {
                    let rx = rx.clone();
                    sums.push(s.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    }));
                }
                drop(rx);
                std::thread::scope(|p| {
                    for t in 0..4 {
                        let tx = tx.clone();
                        p.spawn(move || {
                            for i in 0..100u64 {
                                tx.send(t * 100 + i).unwrap();
                            }
                        });
                    }
                });
                drop(tx);
                sums.into_iter().map(|h| h.join().unwrap()).sum()
            });
            // 4 producers × sum over t*100+i for i in 0..100
            let expect: u64 = (0..4u64)
                .flat_map(|t| (0..100u64).map(move |i| t * 100 + i))
                .sum();
            assert_eq!(total, expect);
        }

        #[test]
        fn blocking_send_waits_for_space() {
            let (tx, rx) = bounded::<u32>(1);
            tx.try_send(1).unwrap();
            std::thread::scope(|s| {
                let h = s.spawn(|| tx.send(2));
                std::thread::sleep(Duration::from_millis(10));
                assert_eq!(rx.recv(), Ok(1));
                h.join().unwrap().unwrap();
                assert_eq!(rx.recv(), Ok(2));
            });
        }
    }
}
