//! # absort-faults — fault taxonomy, degradation metrics, report types
//!
//! The paper's cost/depth/time claims (Chien & Oruç, Table I) assume
//! every 2×2 switch and comparator behaves. This crate holds the shared
//! vocabulary for asking what happens when one doesn't: a [`FaultKind`]
//! taxonomy covering both netlist-rewriting faults and evaluation-time
//! wire faults, *graceful degradation* metrics on faulty 0/1 outputs
//! ([`inversions`], [`max_displacement`], [`Degradation`]), and the
//! campaign report structures ([`KindReport`], [`NetworkReport`],
//! [`CampaignReport`]) that `absort-analysis` fills in and the `absort`
//! CLI writes to `results/faults/` as JSON.
//!
//! The crate deliberately knows nothing about circuits — it depends only
//! on `absort-telemetry` for JSON — so both the circuit layer and the
//! analysis layer can use it without a dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use absort_telemetry::json::Value;

/// The fault taxonomy a campaign sweeps, spanning both injection
/// mechanisms: netlist rewrites (component granularity, from
/// `absort-circuit::mutate`) and evaluation-time wire faults (from
/// `absort-circuit::faulty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Component behaviour inverted (comparator steered by the wrong
    /// line, gate complemented, mux arms exchanged).
    InvertBehaviour,
    /// Component select/control line tied to constant 0.
    StuckSelectLow,
    /// Component select/control line tied to constant 1.
    StuckSelectHigh,
    /// A wire shorted to ground: reads as 0 no matter what drives it.
    StuckAt0,
    /// A wire shorted to power: reads as 1 no matter what drives it.
    StuckAt1,
    /// Two sibling outputs shorted into a wired-OR.
    BridgeOr,
    /// A single-event upset: one wire inverted on one evaluation only.
    TransientFlip,
}

impl FaultKind {
    /// Every kind, in campaign-sweep order. The first six are permanent;
    /// [`FaultKind::TransientFlip`] is the only transient kind.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::InvertBehaviour,
        FaultKind::StuckSelectLow,
        FaultKind::StuckSelectHigh,
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::BridgeOr,
        FaultKind::TransientFlip,
    ];

    /// Stable snake_case name used in report keys and telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::InvertBehaviour => "invert",
            FaultKind::StuckSelectLow => "stuck_select_low",
            FaultKind::StuckSelectHigh => "stuck_select_high",
            FaultKind::StuckAt0 => "stuck_at_0",
            FaultKind::StuckAt1 => "stuck_at_1",
            FaultKind::BridgeOr => "bridge_or",
            FaultKind::TransientFlip => "transient_flip",
        }
    }

    /// True for faults that persist across evaluations (everything except
    /// the transient upset). The 100%-detection acceptance bar applies to
    /// these: a permanent fault that no exhaustive check can see is a
    /// vacuous fault site, and the enumerators exclude those up front.
    pub fn is_permanent(self) -> bool {
        !matches!(self, FaultKind::TransientFlip)
    }
}

// ---------------------------------------------------------------------------
// Degradation metrics
// ---------------------------------------------------------------------------

/// Kendall-tau distance of a 0/1 sequence from sorted order: the number
/// of inverted pairs, i.e. (one, zero) pairs where the one precedes the
/// zero. Zero iff the sequence is ascending-sorted.
pub fn inversions(out: &[bool]) -> u64 {
    let mut ones_seen = 0u64;
    let mut inv = 0u64;
    for &b in out {
        if b {
            ones_seen += 1;
        } else {
            inv += ones_seen;
        }
    }
    inv
}

/// Maximum displacement of any element from its position in the sorted
/// rearrangement, under the canonical matching (k-th zero of the output
/// to the k-th zero slot, k-th one to the k-th one slot — the matching
/// that minimises the maximum). Zero iff the sequence is sorted.
pub fn max_displacement(out: &[bool]) -> u64 {
    let n = out.len();
    let zeros = out.iter().filter(|&&b| !b).count();
    let mut zi = 0usize; // next sorted slot for a zero: 0..zeros
    let mut oi = zeros; // next sorted slot for a one: zeros..n
    let mut worst = 0u64;
    for (pos, &b) in out.iter().enumerate() {
        let target = if b {
            let t = oi;
            oi += 1;
            t
        } else {
            let t = zi;
            zi += 1;
            t
        };
        worst = worst.max(pos.abs_diff(target) as u64);
    }
    debug_assert_eq!(zi, zeros);
    debug_assert_eq!(oi, n);
    worst
}

/// Worst-case degradation observed across a set of faulty outputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Worst Kendall-tau inversion count of any faulty output.
    pub max_inversions: u64,
    /// Worst element displacement of any faulty output.
    pub max_displacement: u64,
    /// Number of outputs whose popcount differed from the input's — the
    /// fault destroyed or created tokens rather than mis-routing them.
    pub conservation_violations: u64,
}

impl Degradation {
    /// Folds one faulty output into the running worst case. `input_ones`
    /// is the popcount of the vector that produced `out`.
    pub fn observe(&mut self, out: &[bool], input_ones: usize) {
        self.max_inversions = self.max_inversions.max(inversions(out));
        self.max_displacement = self.max_displacement.max(max_displacement(out));
        if out.iter().filter(|&&b| b).count() != input_ones {
            self.conservation_violations += 1;
        }
    }

    /// Merges another worst case into this one.
    pub fn merge(&mut self, other: &Degradation) {
        self.max_inversions = self.max_inversions.max(other.max_inversions);
        self.max_displacement = self.max_displacement.max(other.max_displacement);
        self.conservation_violations += other.conservation_violations;
    }

    /// Serializes this record as a JSON object.
    pub fn to_json(self) -> Value {
        Value::obj([
            ("max_inversions", Value::Int(self.max_inversions as i64)),
            ("max_displacement", Value::Int(self.max_displacement as i64)),
            (
                "conservation_violations",
                Value::Int(self.conservation_violations as i64),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Detection and degradation totals for one (network, fault kind) cell.
///
/// A site is **masked** when its injection never changed any output over
/// the whole workload — the network *tolerates* the fault (the
/// mutation-testing literature calls these equivalent mutants). Masked
/// sites are excluded from the detection denominator: the detection rate
/// asks whether the checker catches every fault that actually changes
/// behaviour, and the masked count is itself a resilience statistic.
#[derive(Debug, Clone, Default)]
pub struct KindReport {
    /// The fault kind swept.
    pub kind: Option<FaultKind>,
    /// Fault sites injected.
    pub injected: u64,
    /// Sites whose misbehaviour the zero-one checker observed (some valid
    /// input produced an unsorted or non-conserving output).
    pub detected: u64,
    /// Sites whose injection changed no output on any workload vector.
    pub masked: u64,
    /// Worst-case degradation across every faulty (site, vector) pair.
    pub degradation: Degradation,
}

impl KindReport {
    /// `detected / (injected − masked)`, or 1.0 for a cell with no
    /// behaviour-changing site (nothing escaped).
    pub fn detection_rate(&self) -> f64 {
        let effective = self.injected - self.masked;
        if effective == 0 {
            1.0
        } else {
            self.detected as f64 / effective as f64
        }
    }

    /// Serializes this record as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            (
                "kind",
                Value::Str(self.kind.map_or("?", FaultKind::name).to_owned()),
            ),
            ("injected", Value::Int(self.injected as i64)),
            ("detected", Value::Int(self.detected as i64)),
            ("masked", Value::Int(self.masked as i64)),
            ("detection_rate", Value::Float(self.detection_rate())),
            ("degradation", self.degradation.to_json()),
        ])
    }
}

/// One network's campaign results across all fault kinds.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Network name (`"prefix"`, `"muxmerge"`, `"fish"`, `"batcher"`).
    pub network: String,
    /// Input width the campaign built the network at.
    pub n: usize,
    /// Component count of the fault-free circuit.
    pub components: u64,
    /// `"exhaustive"` or `"sampled"` — whether the checker enumerated
    /// every valid input or a random subset.
    pub tier: String,
    /// Valid input vectors the checker evaluated per fault site.
    pub vectors: u64,
    /// Per-fault-kind cells.
    pub kinds: Vec<KindReport>,
}

impl NetworkReport {
    /// Permanent-fault detection rate across all permanent kinds pooled
    /// (masked sites excluded from the denominator, as in
    /// [`KindReport::detection_rate`]).
    pub fn permanent_detection_rate(&self) -> f64 {
        let (mut det, mut eff) = (0u64, 0u64);
        for k in &self.kinds {
            if k.kind.is_none_or(FaultKind::is_permanent) {
                det += k.detected;
                eff += k.injected - k.masked;
            }
        }
        if eff == 0 {
            1.0
        } else {
            det as f64 / eff as f64
        }
    }

    /// Serializes this record as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("network", Value::Str(self.network.clone())),
            ("n", Value::Int(self.n as i64)),
            ("components", Value::Int(self.components as i64)),
            ("tier", Value::Str(self.tier.clone())),
            ("vectors", Value::Int(self.vectors as i64)),
            (
                "permanent_detection_rate",
                Value::Float(self.permanent_detection_rate()),
            ),
            (
                "kinds",
                Value::Arr(self.kinds.iter().map(KindReport::to_json).collect()),
            ),
        ])
    }
}

/// A whole campaign: every swept network plus the sweep parameters.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// RNG seed used for sampled tiers and transient-fault placement.
    pub seed: u64,
    /// Per-network results.
    pub networks: Vec<NetworkReport>,
}

impl CampaignReport {
    /// Renders the report as a JSON value, suitable both for a telemetry
    /// manifest section and for a standalone report file.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("schema", Value::Str("absort-faults/v1".to_owned())),
            ("seed", Value::Int(self.seed as i64)),
            (
                "networks",
                Value::Arr(self.networks.iter().map(NetworkReport::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversions_counts_kendall_tau() {
        assert_eq!(inversions(&[false, false, true, true]), 0);
        assert_eq!(inversions(&[true, false]), 1);
        assert_eq!(inversions(&[true, true, false, false]), 4);
        assert_eq!(inversions(&[true, false, true, false]), 3);
        assert_eq!(inversions(&[]), 0);
    }

    #[test]
    fn displacement_of_sorted_is_zero() {
        assert_eq!(max_displacement(&[false, false, true, true]), 0);
        assert_eq!(max_displacement(&[]), 0);
        assert_eq!(max_displacement(&[true]), 0);
    }

    #[test]
    fn displacement_of_reversed() {
        // 1100 -> sorted 0011: the leading one must travel to slot 2.
        assert_eq!(max_displacement(&[true, true, false, false]), 2);
        // 10 -> 01: both elements move one slot.
        assert_eq!(max_displacement(&[true, false]), 1);
    }

    #[test]
    fn displacement_single_straggler() {
        // one 1 at the front of seven 0s: it belongs at the end.
        let mut v = vec![false; 8];
        v[0] = true;
        assert_eq!(max_displacement(&v), 7);
        assert_eq!(inversions(&v), 7);
    }

    #[test]
    fn degradation_observes_worst_case() {
        let mut d = Degradation::default();
        d.observe(&[false, true], 1); // sorted, conserving
        assert_eq!(d, Degradation::default());
        d.observe(&[true, false], 1); // inverted pair
        assert_eq!(d.max_inversions, 1);
        assert_eq!(d.max_displacement, 1);
        assert_eq!(d.conservation_violations, 0);
        d.observe(&[true, true], 1); // created a token
        assert_eq!(d.conservation_violations, 1);
    }

    #[test]
    fn detection_rate_edges() {
        let r = KindReport::default();
        assert_eq!(r.detection_rate(), 1.0);
        let r = KindReport {
            injected: 4,
            detected: 3,
            ..Default::default()
        };
        assert!((r.detection_rate() - 0.75).abs() < 1e-12);
        // masked sites leave the denominator: 3 detected of 4−1 effective
        let r = KindReport {
            injected: 4,
            detected: 3,
            masked: 1,
            ..Default::default()
        };
        assert_eq!(r.detection_rate(), 1.0);
        // all-masked cell: nothing escaped
        let r = KindReport {
            injected: 5,
            masked: 5,
            ..Default::default()
        };
        assert_eq!(r.detection_rate(), 1.0);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = CampaignReport {
            seed: 7,
            networks: vec![NetworkReport {
                network: "prefix".into(),
                n: 8,
                components: 100,
                tier: "exhaustive".into(),
                vectors: 256,
                kinds: vec![KindReport {
                    kind: Some(FaultKind::StuckAt0),
                    injected: 12,
                    detected: 10,
                    masked: 2,
                    degradation: Degradation {
                        max_inversions: 3,
                        max_displacement: 2,
                        conservation_violations: 5,
                    },
                }],
            }],
        };
        let text = report.to_json().to_pretty();
        let back = absort_telemetry::json::parse(&text).expect("parses");
        assert_eq!(
            back.get("schema").and_then(Value::as_str),
            Some("absort-faults/v1")
        );
        let nets = back.get("networks").and_then(Value::as_arr).unwrap();
        assert_eq!(nets.len(), 1);
        assert_eq!(
            nets[0]
                .get("permanent_detection_rate")
                .and_then(Value::as_f64),
            Some(1.0)
        );
        let kinds = nets[0].get("kinds").and_then(Value::as_arr).unwrap();
        assert_eq!(
            kinds[0].get("kind").and_then(Value::as_str),
            Some("stuck_at_0")
        );
        assert_eq!(kinds[0].get("masked").and_then(Value::as_i64), Some(2));
        assert_eq!(
            kinds[0]
                .get("degradation")
                .and_then(|d| d.get("max_inversions"))
                .and_then(Value::as_i64),
            Some(3)
        );
    }

    #[test]
    fn kind_names_stable_and_permanence_flagged() {
        assert_eq!(FaultKind::ALL.len(), 7);
        assert!(FaultKind::StuckAt1.is_permanent());
        assert!(!FaultKind::TransientFlip.is_permanent());
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 7, "names are distinct");
    }
}
