//! # absort-faults — fault taxonomy, degradation metrics, report types
//!
//! The paper's cost/depth/time claims (Chien & Oruç, Table I) assume
//! every 2×2 switch and comparator behaves. This crate holds the shared
//! vocabulary for asking what happens when one doesn't: a [`FaultKind`]
//! taxonomy covering both netlist-rewriting faults and evaluation-time
//! wire faults, *graceful degradation* metrics on faulty 0/1 outputs
//! ([`inversions`], [`max_displacement`], [`Degradation`]), and the
//! campaign report structures ([`KindReport`], [`NetworkReport`],
//! [`CampaignReport`]) that `absort-analysis` fills in and the `absort`
//! CLI writes to `results/faults/` as JSON.
//!
//! The crate deliberately knows nothing about circuits — it depends only
//! on `absort-telemetry` for JSON — so both the circuit layer and the
//! analysis layer can use it without a dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use absort_telemetry::json;

use absort_telemetry::json::Value;

/// The fault taxonomy a campaign sweeps, spanning both injection
/// mechanisms: netlist rewrites (component granularity, from
/// `absort-circuit::mutate`) and evaluation-time wire faults (from
/// `absort-circuit::faulty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Component behaviour inverted (comparator steered by the wrong
    /// line, gate complemented, mux arms exchanged).
    InvertBehaviour,
    /// Component select/control line tied to constant 0.
    StuckSelectLow,
    /// Component select/control line tied to constant 1.
    StuckSelectHigh,
    /// A wire shorted to ground: reads as 0 no matter what drives it.
    StuckAt0,
    /// A wire shorted to power: reads as 1 no matter what drives it.
    StuckAt1,
    /// Two sibling outputs shorted into a wired-OR.
    BridgeOr,
    /// A single-event upset: one wire inverted on one evaluation only.
    TransientFlip,
}

impl FaultKind {
    /// Every kind, in campaign-sweep order. The first six are permanent;
    /// [`FaultKind::TransientFlip`] is the only transient kind.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::InvertBehaviour,
        FaultKind::StuckSelectLow,
        FaultKind::StuckSelectHigh,
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::BridgeOr,
        FaultKind::TransientFlip,
    ];

    /// Stable snake_case name used in report keys and telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::InvertBehaviour => "invert",
            FaultKind::StuckSelectLow => "stuck_select_low",
            FaultKind::StuckSelectHigh => "stuck_select_high",
            FaultKind::StuckAt0 => "stuck_at_0",
            FaultKind::StuckAt1 => "stuck_at_1",
            FaultKind::BridgeOr => "bridge_or",
            FaultKind::TransientFlip => "transient_flip",
        }
    }

    /// True for faults that persist across evaluations (everything except
    /// the transient upset). The 100%-detection acceptance bar applies to
    /// these: a permanent fault that no exhaustive check can see is a
    /// vacuous fault site, and the enumerators exclude those up front.
    pub fn is_permanent(self) -> bool {
        !matches!(self, FaultKind::TransientFlip)
    }

    /// Inverse of [`FaultKind::name`], used when loading reports back
    /// from JSON (checkpoint resume).
    pub fn from_name(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

// ---------------------------------------------------------------------------
// Degradation metrics
// ---------------------------------------------------------------------------

/// Kendall-tau distance of a 0/1 sequence from sorted order: the number
/// of inverted pairs, i.e. (one, zero) pairs where the one precedes the
/// zero. Zero iff the sequence is ascending-sorted.
pub fn inversions(out: &[bool]) -> u64 {
    let mut ones_seen = 0u64;
    let mut inv = 0u64;
    for &b in out {
        if b {
            ones_seen += 1;
        } else {
            inv += ones_seen;
        }
    }
    inv
}

/// Maximum displacement of any element from its position in the sorted
/// rearrangement, under the canonical matching (k-th zero of the output
/// to the k-th zero slot, k-th one to the k-th one slot — the matching
/// that minimises the maximum). Zero iff the sequence is sorted.
pub fn max_displacement(out: &[bool]) -> u64 {
    let n = out.len();
    let zeros = out.iter().filter(|&&b| !b).count();
    let mut zi = 0usize; // next sorted slot for a zero: 0..zeros
    let mut oi = zeros; // next sorted slot for a one: zeros..n
    let mut worst = 0u64;
    for (pos, &b) in out.iter().enumerate() {
        let target = if b {
            let t = oi;
            oi += 1;
            t
        } else {
            let t = zi;
            zi += 1;
            t
        };
        worst = worst.max(pos.abs_diff(target) as u64);
    }
    debug_assert_eq!(zi, zeros);
    debug_assert_eq!(oi, n);
    worst
}

/// Worst-case degradation observed across a set of faulty outputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Worst Kendall-tau inversion count of any faulty output.
    pub max_inversions: u64,
    /// Worst element displacement of any faulty output.
    pub max_displacement: u64,
    /// Number of outputs whose popcount differed from the input's — the
    /// fault destroyed or created tokens rather than mis-routing them.
    pub conservation_violations: u64,
    /// Number of (fault, vector) evaluations the *concurrent* error rail
    /// of a self-checking wrapper flagged in hardware (zero when the
    /// swept circuit carries no rail).
    pub flagged: u64,
}

impl Degradation {
    /// Folds one faulty output into the running worst case. `input_ones`
    /// is the popcount of the vector that produced `out`.
    pub fn observe(&mut self, out: &[bool], input_ones: usize) {
        self.max_inversions = self.max_inversions.max(inversions(out));
        self.max_displacement = self.max_displacement.max(max_displacement(out));
        if out.iter().filter(|&&b| b).count() != input_ones {
            self.conservation_violations += 1;
        }
    }

    /// Merges another worst case into this one.
    pub fn merge(&mut self, other: &Degradation) {
        self.max_inversions = self.max_inversions.max(other.max_inversions);
        self.max_displacement = self.max_displacement.max(other.max_displacement);
        self.conservation_violations += other.conservation_violations;
        self.flagged += other.flagged;
    }

    /// Serializes this record as a JSON object.
    pub fn to_json(self) -> Value {
        Value::obj([
            ("max_inversions", Value::Int(self.max_inversions as i64)),
            ("max_displacement", Value::Int(self.max_displacement as i64)),
            (
                "conservation_violations",
                Value::Int(self.conservation_violations as i64),
            ),
            ("flagged", Value::Int(self.flagged as i64)),
        ])
    }

    /// Parses a record serialized by [`Degradation::to_json`]. The
    /// `flagged` field is optional so v1 reports still load.
    pub fn from_json(v: &Value) -> Option<Degradation> {
        Some(Degradation {
            max_inversions: v.get("max_inversions")?.as_i64()? as u64,
            max_displacement: v.get("max_displacement")?.as_i64()? as u64,
            conservation_violations: v.get("conservation_violations")?.as_i64()? as u64,
            flagged: v.get("flagged").and_then(Value::as_i64).unwrap_or(0) as u64,
        })
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Detection and degradation totals for one (network, fault kind) cell.
///
/// A site is **masked** when its injection never changed any output over
/// the whole workload — the network *tolerates* the fault (the
/// mutation-testing literature calls these equivalent mutants). Masked
/// sites are excluded from the detection denominator: the detection rate
/// asks whether the checker catches every fault that actually changes
/// behaviour, and the masked count is itself a resilience statistic.
#[derive(Debug, Clone, Default)]
pub struct KindReport {
    /// The fault kind swept. `None` marks a mixed-kind cell (a multi-fault
    /// set drawn across kinds), serialized as `"mixed"`.
    pub kind: Option<FaultKind>,
    /// Fault sites (or fault *sets*, for multi-fault cells) injected.
    pub injected: u64,
    /// Sites whose misbehaviour the zero-one checker observed (some valid
    /// input produced an unsorted or non-conserving output).
    pub detected: u64,
    /// Sites whose injection changed no output on any workload vector.
    pub masked: u64,
    /// Sites the hardware error rail of the self-checking wrapper flagged
    /// on at least one workload vector (concurrent detection).
    pub flagged: u64,
    /// Flagged sites whose rail-triggered replay (reset the machine and
    /// re-run the affected schedule) completed correctly with a quiet
    /// rail — transients the retry policy absorbed. Only clocked
    /// campaigns exercise the replay protocol; combinational cells
    /// report zero.
    pub recovered: u64,
    /// Flagged sites whose replay still raised the rail (or still
    /// produced a wrong stream): the machine stops with an error
    /// indication rather than emitting silent garbage.
    pub fail_stop: u64,
    /// Worst-case degradation across every faulty (site, vector) pair.
    pub degradation: Degradation,
}

impl KindReport {
    /// `detected / (injected − masked)`, or 0.0 for a cell where every
    /// site is masked — a denominator of zero must not surface as NaN in
    /// JSON reports.
    pub fn detection_rate(&self) -> f64 {
        let effective = self.injected - self.masked;
        if effective == 0 {
            0.0
        } else {
            self.detected as f64 / effective as f64
        }
    }

    /// `flagged / (injected − masked)`: the fraction of behaviour-changing
    /// sites the *concurrent* error rail caught in hardware, 0.0 when the
    /// denominator is empty (same NaN guard as
    /// [`KindReport::detection_rate`]).
    pub fn concurrent_detection_rate(&self) -> f64 {
        let effective = self.injected - self.masked;
        if effective == 0 {
            0.0
        } else {
            self.flagged as f64 / effective as f64
        }
    }

    /// Serializes this record as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            (
                "kind",
                Value::Str(self.kind.map_or("mixed", FaultKind::name).to_owned()),
            ),
            ("injected", Value::Int(self.injected as i64)),
            ("detected", Value::Int(self.detected as i64)),
            ("masked", Value::Int(self.masked as i64)),
            ("flagged", Value::Int(self.flagged as i64)),
            ("recovered", Value::Int(self.recovered as i64)),
            ("fail_stop", Value::Int(self.fail_stop as i64)),
            ("detection_rate", Value::Float(self.detection_rate())),
            (
                "concurrent_detection_rate",
                Value::Float(self.concurrent_detection_rate()),
            ),
            ("degradation", self.degradation.to_json()),
        ])
    }

    /// Parses a record serialized by [`KindReport::to_json`]; derived
    /// rates are recomputed, not read back.
    pub fn from_json(v: &Value) -> Option<KindReport> {
        Some(KindReport {
            kind: v.get("kind").and_then(Value::as_str).and_then(|s| {
                // "mixed" (and the legacy "?") deliberately map to None.
                FaultKind::from_name(s)
            }),
            injected: v.get("injected")?.as_i64()? as u64,
            detected: v.get("detected")?.as_i64()? as u64,
            masked: v.get("masked")?.as_i64()? as u64,
            flagged: v.get("flagged").and_then(Value::as_i64).unwrap_or(0) as u64,
            // Recovery columns arrived with schema v3; v2 reports load
            // with both zero.
            recovered: v.get("recovered").and_then(Value::as_i64).unwrap_or(0) as u64,
            fail_stop: v.get("fail_stop").and_then(Value::as_i64).unwrap_or(0) as u64,
            degradation: Degradation::from_json(v.get("degradation")?)?,
        })
    }
}

/// One network's campaign results across all fault kinds.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Network name (`"prefix"`, `"muxmerge"`, `"fish"`, `"batcher"`,
    /// `"fish-clocked"`).
    pub network: String,
    /// Input width the campaign built the network at.
    pub n: usize,
    /// Component count of the fault-free circuit.
    pub components: u64,
    /// Cost (paper units) of the bare, unhardened circuit.
    pub base_cost: u64,
    /// Cost (paper units) of the self-checking wrapper actually swept —
    /// the base core plus the enabled checker cones. The difference
    /// `hardened_cost − base_cost` is the hardware price of concurrent
    /// detection, reported next to the coverage it buys.
    pub hardened_cost: u64,
    /// `"exhaustive"` or `"sampled"` — whether the checker enumerated
    /// every valid input or a random subset.
    pub tier: String,
    /// Valid input vectors the checker evaluated per fault site.
    pub vectors: u64,
    /// Simultaneous faults per injection: 1 for the classic single-fault
    /// sweep, k ≥ 2 for sampled k-fault sets.
    pub fault_set_size: u64,
    /// Per-fault-kind cells.
    pub kinds: Vec<KindReport>,
}

impl NetworkReport {
    /// Permanent-fault detection rate across all permanent kinds pooled
    /// (masked sites excluded from the denominator, as in
    /// [`KindReport::detection_rate`]; 0.0 when every permanent site is
    /// masked so JSON never carries NaN).
    pub fn permanent_detection_rate(&self) -> f64 {
        let (mut det, mut eff) = (0u64, 0u64);
        for k in &self.kinds {
            if k.kind.is_none_or(FaultKind::is_permanent) {
                det += k.detected;
                eff += k.injected - k.masked;
            }
        }
        if eff == 0 {
            0.0
        } else {
            det as f64 / eff as f64
        }
    }

    /// Concurrent (error-rail) detection rate across all permanent kinds
    /// pooled, with the same denominator as
    /// [`NetworkReport::permanent_detection_rate`].
    pub fn concurrent_detection_rate(&self) -> f64 {
        let (mut flag, mut eff) = (0u64, 0u64);
        for k in &self.kinds {
            if k.kind.is_none_or(FaultKind::is_permanent) {
                flag += k.flagged;
                eff += k.injected - k.masked;
            }
        }
        if eff == 0 {
            0.0
        } else {
            flag as f64 / eff as f64
        }
    }

    /// Flagged sites whose rail-triggered replay cleared, pooled across
    /// every kind (clocked campaigns only; zero elsewhere).
    pub fn recovered(&self) -> u64 {
        self.kinds.iter().map(|k| k.recovered).sum()
    }

    /// Flagged sites that stayed flagged (or wrong) through replay,
    /// pooled across every kind — the fail-stop population.
    pub fn fail_stop(&self) -> u64 {
        self.kinds.iter().map(|k| k.fail_stop).sum()
    }

    /// Serializes this record as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("network", Value::Str(self.network.clone())),
            ("n", Value::Int(self.n as i64)),
            ("components", Value::Int(self.components as i64)),
            ("base_cost", Value::Int(self.base_cost as i64)),
            ("hardened_cost", Value::Int(self.hardened_cost as i64)),
            ("tier", Value::Str(self.tier.clone())),
            ("vectors", Value::Int(self.vectors as i64)),
            ("fault_set_size", Value::Int(self.fault_set_size as i64)),
            (
                "permanent_detection_rate",
                Value::Float(self.permanent_detection_rate()),
            ),
            (
                "concurrent_detection_rate",
                Value::Float(self.concurrent_detection_rate()),
            ),
            ("recovered", Value::Int(self.recovered() as i64)),
            ("fail_stop", Value::Int(self.fail_stop() as i64)),
            (
                "kinds",
                Value::Arr(self.kinds.iter().map(KindReport::to_json).collect()),
            ),
        ])
    }

    /// Parses a record serialized by [`NetworkReport::to_json`] — the
    /// checkpoint/resume path. Derived rates are recomputed on demand.
    pub fn from_json(v: &Value) -> Option<NetworkReport> {
        Some(NetworkReport {
            network: v.get("network")?.as_str()?.to_owned(),
            n: v.get("n")?.as_i64()? as usize,
            components: v.get("components")?.as_i64()? as u64,
            // Cost columns arrived with the pass-pipeline refactor; v2
            // reports written before it load as zero-cost.
            base_cost: v.get("base_cost").and_then(Value::as_i64).unwrap_or(0) as u64,
            hardened_cost: v.get("hardened_cost").and_then(Value::as_i64).unwrap_or(0) as u64,
            tier: v.get("tier")?.as_str()?.to_owned(),
            vectors: v.get("vectors")?.as_i64()? as u64,
            fault_set_size: v.get("fault_set_size").and_then(Value::as_i64).unwrap_or(1) as u64,
            kinds: v
                .get("kinds")?
                .as_arr()?
                .iter()
                .map(KindReport::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// A whole campaign: every swept network plus the sweep parameters.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// RNG seed used for sampled tiers and transient-fault placement.
    pub seed: u64,
    /// True when a wall-clock budget expired before every planned unit
    /// ran: the report is a valid prefix of the full campaign, not the
    /// whole thing.
    pub truncated: bool,
    /// Per-network results.
    pub networks: Vec<NetworkReport>,
}

impl CampaignReport {
    /// Renders the report as a JSON value, suitable both for a telemetry
    /// manifest section and for a standalone report file.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("schema", Value::Str("absort-faults/v3".to_owned())),
            ("seed", Value::Int(self.seed as i64)),
            ("truncated", Value::Bool(self.truncated)),
            (
                "networks",
                Value::Arr(self.networks.iter().map(NetworkReport::to_json).collect()),
            ),
        ])
    }

    /// Parses a report serialized by [`CampaignReport::to_json`].
    pub fn from_json(v: &Value) -> Option<CampaignReport> {
        Some(CampaignReport {
            seed: v.get("seed")?.as_i64()? as u64,
            truncated: v.get("truncated").and_then(Value::as_bool).unwrap_or(false),
            networks: v
                .get("networks")?
                .as_arr()?
                .iter()
                .map(NetworkReport::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversions_counts_kendall_tau() {
        assert_eq!(inversions(&[false, false, true, true]), 0);
        assert_eq!(inversions(&[true, false]), 1);
        assert_eq!(inversions(&[true, true, false, false]), 4);
        assert_eq!(inversions(&[true, false, true, false]), 3);
        assert_eq!(inversions(&[]), 0);
    }

    #[test]
    fn displacement_of_sorted_is_zero() {
        assert_eq!(max_displacement(&[false, false, true, true]), 0);
        assert_eq!(max_displacement(&[]), 0);
        assert_eq!(max_displacement(&[true]), 0);
    }

    #[test]
    fn displacement_of_reversed() {
        // 1100 -> sorted 0011: the leading one must travel to slot 2.
        assert_eq!(max_displacement(&[true, true, false, false]), 2);
        // 10 -> 01: both elements move one slot.
        assert_eq!(max_displacement(&[true, false]), 1);
    }

    #[test]
    fn displacement_single_straggler() {
        // one 1 at the front of seven 0s: it belongs at the end.
        let mut v = vec![false; 8];
        v[0] = true;
        assert_eq!(max_displacement(&v), 7);
        assert_eq!(inversions(&v), 7);
    }

    #[test]
    fn degradation_observes_worst_case() {
        let mut d = Degradation::default();
        d.observe(&[false, true], 1); // sorted, conserving
        assert_eq!(d, Degradation::default());
        d.observe(&[true, false], 1); // inverted pair
        assert_eq!(d.max_inversions, 1);
        assert_eq!(d.max_displacement, 1);
        assert_eq!(d.conservation_violations, 0);
        d.observe(&[true, true], 1); // created a token
        assert_eq!(d.conservation_violations, 1);
    }

    #[test]
    fn detection_rate_edges() {
        let r = KindReport::default();
        assert_eq!(r.detection_rate(), 0.0, "empty cell must not be NaN");
        let r = KindReport {
            injected: 4,
            detected: 3,
            ..Default::default()
        };
        assert!((r.detection_rate() - 0.75).abs() < 1e-12);
        // masked sites leave the denominator: 3 detected of 4−1 effective
        let r = KindReport {
            injected: 4,
            detected: 3,
            masked: 1,
            ..Default::default()
        };
        assert_eq!(r.detection_rate(), 1.0);
    }

    #[test]
    fn all_masked_cell_rates_are_zero_not_nan() {
        // injected == masked: the denominator is empty. The rate must be
        // a finite 0.0 — a NaN would serialize as `null`/garbage in the
        // JSON report and poison every downstream aggregation.
        let r = KindReport {
            injected: 5,
            masked: 5,
            ..Default::default()
        };
        assert_eq!(r.detection_rate(), 0.0);
        assert!(r.detection_rate().is_finite());
        assert_eq!(r.concurrent_detection_rate(), 0.0);
        let net = NetworkReport {
            network: "prefix".into(),
            n: 4,
            components: 1,
            base_cost: 1,
            hardened_cost: 2,
            tier: "exhaustive".into(),
            vectors: 16,
            fault_set_size: 1,
            kinds: vec![r],
        };
        assert_eq!(net.permanent_detection_rate(), 0.0);
        assert!(net.permanent_detection_rate().is_finite());
        assert_eq!(net.concurrent_detection_rate(), 0.0);
        let text = net.to_json().to_pretty();
        assert!(
            !text.contains("NaN") && !text.contains("nan") && !text.contains("null"),
            "rates must serialize as finite numbers: {text}"
        );
    }

    fn sample_report() -> CampaignReport {
        CampaignReport {
            seed: 7,
            truncated: false,
            networks: vec![NetworkReport {
                network: "prefix".into(),
                n: 8,
                components: 100,
                base_cost: 120,
                hardened_cost: 180,
                tier: "exhaustive".into(),
                vectors: 256,
                fault_set_size: 2,
                kinds: vec![KindReport {
                    kind: Some(FaultKind::StuckAt0),
                    injected: 12,
                    detected: 10,
                    masked: 2,
                    flagged: 9,
                    recovered: 3,
                    fail_stop: 6,
                    degradation: Degradation {
                        max_inversions: 3,
                        max_displacement: 2,
                        conservation_violations: 5,
                        flagged: 40,
                    },
                }],
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample_report();
        let text = report.to_json().to_pretty();
        let back = absort_telemetry::json::parse(&text).expect("parses");
        assert_eq!(
            back.get("schema").and_then(Value::as_str),
            Some("absort-faults/v3")
        );
        assert_eq!(back.get("truncated").and_then(Value::as_bool), Some(false));
        let nets = back.get("networks").and_then(Value::as_arr).unwrap();
        assert_eq!(nets.len(), 1);
        assert_eq!(
            nets[0]
                .get("permanent_detection_rate")
                .and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            nets[0].get("fault_set_size").and_then(Value::as_i64),
            Some(2)
        );
        assert_eq!(
            nets[0]
                .get("concurrent_detection_rate")
                .and_then(Value::as_f64),
            Some(0.9)
        );
        let kinds = nets[0].get("kinds").and_then(Value::as_arr).unwrap();
        assert_eq!(
            kinds[0].get("kind").and_then(Value::as_str),
            Some("stuck_at_0")
        );
        assert_eq!(kinds[0].get("masked").and_then(Value::as_i64), Some(2));
        assert_eq!(kinds[0].get("flagged").and_then(Value::as_i64), Some(9));
        assert_eq!(kinds[0].get("recovered").and_then(Value::as_i64), Some(3));
        assert_eq!(kinds[0].get("fail_stop").and_then(Value::as_i64), Some(6));
        assert_eq!(nets[0].get("recovered").and_then(Value::as_i64), Some(3));
        assert_eq!(nets[0].get("fail_stop").and_then(Value::as_i64), Some(6));
        assert_eq!(
            kinds[0]
                .get("degradation")
                .and_then(|d| d.get("max_inversions"))
                .and_then(Value::as_i64),
            Some(3)
        );
    }

    #[test]
    fn from_json_is_a_lossless_inverse_of_to_json() {
        // The checkpoint/resume path rides on this: a report loaded from
        // a checkpoint must re-serialize byte-for-byte identical to the
        // original, or resumed campaigns would diverge from uninterrupted
        // ones.
        let report = sample_report();
        let text = report.to_json().to_pretty();
        let parsed = absort_telemetry::json::parse(&text).expect("parses");
        let back = CampaignReport::from_json(&parsed).expect("loads");
        assert_eq!(back.to_json().to_pretty(), text);
        // Mixed-kind (None) cells survive the roundtrip too.
        let mut mixed = sample_report();
        mixed.truncated = true;
        mixed.networks[0].kinds[0].kind = None;
        let text = mixed.to_json().to_pretty();
        let parsed = absort_telemetry::json::parse(&text).expect("parses");
        let back = CampaignReport::from_json(&parsed).expect("loads");
        assert!(back.truncated);
        assert_eq!(back.networks[0].kinds[0].kind, None);
        assert_eq!(back.to_json().to_pretty(), text);
    }

    /// Golden back-compat pin: a report written by the v2 schema (no
    /// `recovered`/`fail_stop` keys anywhere) parses under the v3 reader
    /// with both recovery columns defaulting to 0, and every shared
    /// field survives unchanged.
    #[test]
    fn v2_reports_parse_under_the_v3_reader() {
        let golden_v2 = r#"{
  "schema": "absort-faults/v2",
  "seed": 7,
  "truncated": false,
  "networks": [
    {
      "network": "prefix",
      "n": 8,
      "components": 100,
      "base_cost": 120,
      "hardened_cost": 180,
      "tier": "exhaustive",
      "vectors": 256,
      "fault_set_size": 2,
      "permanent_detection_rate": 1.0,
      "concurrent_detection_rate": 0.9,
      "kinds": [
        {
          "kind": "stuck_at_0",
          "injected": 12,
          "detected": 10,
          "masked": 2,
          "flagged": 9,
          "detection_rate": 1.0,
          "concurrent_detection_rate": 0.9,
          "degradation": {
            "max_inversions": 3,
            "max_displacement": 2,
            "conservation_violations": 5,
            "flagged": 40
          }
        }
      ]
    }
  ]
}"#;
        let parsed = absort_telemetry::json::parse(golden_v2).expect("parses");
        let back = CampaignReport::from_json(&parsed).expect("v2 loads under v3 reader");
        let kind = &back.networks[0].kinds[0];
        assert_eq!(kind.recovered, 0, "missing v3 column defaults to 0");
        assert_eq!(kind.fail_stop, 0, "missing v3 column defaults to 0");
        assert_eq!(back.networks[0].recovered(), 0);
        assert_eq!(back.networks[0].fail_stop(), 0);
        // Every shared field is bit-identical to the v3 sample that the
        // golden text was derived from.
        let mut expect = sample_report();
        expect.networks[0].kinds[0].recovered = 0;
        expect.networks[0].kinds[0].fail_stop = 0;
        assert_eq!(back.to_json().to_pretty(), expect.to_json().to_pretty());
    }

    #[test]
    fn kind_names_stable_and_permanence_flagged() {
        assert_eq!(FaultKind::ALL.len(), 7);
        assert!(FaultKind::StuckAt1.is_permanent());
        assert!(!FaultKind::TransientFlip.is_permanent());
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 7, "names are distinct");
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("mixed"), None);
        assert_eq!(FaultKind::from_name("?"), None);
    }

    // -- Degradation invariants, property-based ---------------------------

    use proptest::prelude::*;

    /// Builds a `Degradation` by observing each `(out, ones)` pair in an
    /// arbitrary observation set.
    fn observe_all(obs: &[(Vec<bool>, usize)]) -> Degradation {
        let mut d = Degradation::default();
        for (out, ones) in obs {
            d.observe(out, *ones);
        }
        d
    }

    fn obs_set() -> impl Strategy<Value = Vec<(Vec<bool>, usize)>> {
        proptest::collection::vec(
            (proptest::collection::vec(any::<bool>(), 0..16), 0usize..16),
            0..8,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Kendall-tau inversions vanish exactly on sorted sequences —
        /// the zero-one checker and the degradation metric agree on what
        /// "ordered" means.
        #[test]
        fn inversions_zero_iff_sorted(out in proptest::collection::vec(any::<bool>(), 0..24)) {
            let sorted = out.windows(2).all(|w| w[0] <= w[1]);
            prop_assert_eq!(inversions(&out) == 0, sorted);
            prop_assert_eq!(max_displacement(&out) == 0, sorted);
        }

        /// No element of an n-bit output can be displaced by more than n
        /// positions.
        #[test]
        fn displacement_bounded_by_n(out in proptest::collection::vec(any::<bool>(), 0..24)) {
            prop_assert!(max_displacement(&out) <= out.len() as u64);
        }

        /// `merge` is commutative: folding B into A gives the same record
        /// as folding A into B.
        #[test]
        fn merge_commutes(a in obs_set(), b in obs_set()) {
            let (da, db) = (observe_all(&a), observe_all(&b));
            let mut ab = da;
            ab.merge(&db);
            let mut ba = db;
            ba.merge(&da);
            prop_assert_eq!(ab, ba);
        }

        /// `merge` is associative: (A ∪ B) ∪ C = A ∪ (B ∪ C), and both
        /// equal observing the concatenated set directly.
        #[test]
        fn merge_associates(a in obs_set(), b in obs_set(), c in obs_set()) {
            let (da, db, dc) = (observe_all(&a), observe_all(&b), observe_all(&c));
            let mut left = da;
            left.merge(&db);
            left.merge(&dc);
            let mut bc = db;
            bc.merge(&dc);
            let mut right = da;
            right.merge(&bc);
            prop_assert_eq!(left, right);
            let all: Vec<_> = a.iter().chain(&b).chain(&c).cloned().collect();
            prop_assert_eq!(left, observe_all(&all));
        }
    }
}
