//! `absort` — command-line driver for the adaptive sorting networks.
//!
//! ```text
//! absort sort  --network mux-merger 0110100111000011
//! absort route --network fish 3,1,0,2
//! absort concentrate --m 4 a.b..c.d
//! absort inspect --network prefix --n 256
//! absort verify --network fish --n 16
//! absort dot --network mux-merger --n 16
//! absort emit --rust --network prefix --n 64 --standalone
//! absort serve --addr 127.0.0.1:7600 --workers 4
//! absort --network prefix --faults --faults-out report.json
//! ```

use absort::circuit::{
    dot, CompileOptions, CompiledEvaluator, Engine, Evaluator, OptLevel, PassSet,
};
use absort::core::{lang, muxmerge, nonadaptive, prefix, SorterKind};
use absort::networks::concentrator::Concentrator;
use absort::networks::permuter::RadixPermuter;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: absort <command> [options]\n\
         \n\
         commands:\n\
           sort        --network <prefix|mux-merger|fish|nonadaptive> <bits>\n\
                       sort a binary sequence (power-of-two length)\n\
           route       --network <...> <dest0,dest1,...>\n\
                       route a permutation through the radix permuter\n\
           concentrate --m <m> <pattern>   ('.' = idle, any other char = packet)\n\
           inspect     --network <...> --n <size> [--profile]\n\
                       print cost/depth and the hardware profile;\n\
                       --profile adds a sampled per-op-kind hot table\n\
                       for the compiled tape\n\
           verify      --network <...> --n <size>\n\
                       exhaustively verify sorting over all 2^n inputs (n <= 20)\n\
           dot         --network <...> --n <size>\n\
                       emit the built circuit as Graphviz DOT\n\
           emit        --rust --network <...> --n <size> [--standalone]\n\
                       [--fn-name <name>]\n\
                       print the compiled tape as straight-line, branch-\n\
                       free Rust source (--standalone: a #![no_std] crate\n\
                       root compilable with plain rustc)\n\
           save        --network <...> --n <size>\n\
                       emit the built circuit as a text netlist\n\
           eval        <netlist-file> <bits>\n\
                       load a saved netlist and evaluate it\n\
           rules       synth [--out <path>] | check [--ruleset <path>]\n\
                       synth: regenerate the rewrite-pass ruleset (ruler-\n\
                       style enumeration + cvec matching + exhaustive\n\
                       verification); check: validate and re-verify a\n\
                       ruleset file (default: the compiled-in set)\n\
           serve       [--addr <host:port>] [--workers <w>] [--queue <q>]\n\
                       [--batch-max <b>] [--max-n <n>] [--chaos]\n\
                       run the fault-tolerant sorting daemon: length-\n\
                       prefixed TCP protocol, wide-lane request batching,\n\
                       bounded queues with typed Overloaded shedding,\n\
                       per-request deadlines, SIGTERM graceful drain;\n\
                       --chaos honors forced-worker-panic requests (test\n\
                       harnesses only)\n\
         \n\
         fault campaigns (no subcommand):\n\
           absort --network <prefix|mux-merger|fish|batcher|all> --faults\n\
                  [--n <size>] [--faults-out <path>] [--multi <k>] [--clocked]\n\
                  [--tenants <t>]\n\
                  [--checkpoint <path>] [--resume] [--faults-timeout-secs <s>]\n\
                  sweep fault sites x fault kinds, score offline detection,\n\
                  concurrent (error-rail) detection, and degradation; write a\n\
                  JSON report under results/faults/\n\
         \n\
         metrics runs (no subcommand):\n\
           absort --network <prefix|mux-merger|fish|batcher> --metrics\n\
                  [--n <size>] [--metrics-out <path>] [--trace-out <path>]\n\
                  build + compile the network and sweep both evaluation\n\
                  engines instrumented, producing latency histograms in the\n\
                  run manifest (and optionally a Chrome trace)\n\
         \n\
         options:\n\
           --engine <interp|compiled>\n\
                                 evaluation engine for the verify/faults\n\
                                 sweep drivers (default: compiled — the\n\
                                 netlist is lowered once to a register-\n\
                                 allocated micro-op tape)\n\
           --opt-level <0|1|2>   compiled-engine optimization tier\n\
                                 (default 2: every pass; 1 matches the\n\
                                 pre-pipeline compiler; 0 is bare lowering)\n\
           --passes <list>       explicit comma-separated pass list for the\n\
                                 compiled engine, overriding --opt-level\n\
                                 (const-prologue, const-prop, cse, rewrite,\n\
                                 dce, mask-reuse; \"none\" disables all)\n\
           --fuse                run the post-regalloc superinstruction\n\
                                 pass: adjacent hot op pairs and 4x4-switch\n\
                                 mask-reuse chains collapse into single\n\
                                 dispatches (fault campaigns recompile at\n\
                                 fused sites, results unchanged)\n\
           --harden-duplicate    add duplicate-and-compare to the fault\n\
                                 campaign's self-checking wrapper; the\n\
                                 summary prices the extra hardware next to\n\
                                 the coverage it buys (requires --faults)\n\
           --metrics             record spans/counters/histograms; print a\n\
                                 telemetry report to stderr and write a JSON\n\
                                 run manifest under results/metrics/\n\
           --metrics-out <path>  explicit manifest path (requires --metrics)\n\
           --trace-out <path>    also record begin/end span events and counter\n\
                                 samples, written as Chrome trace_event JSON\n\
                                 viewable in Perfetto (requires --metrics)\n\
           --faults              run a fault-injection campaign\n\
           --faults-out <path>   report path (requires --faults)\n\
           --multi <k>           also sweep sampled simultaneous fault sets\n\
                                 of every size 2..=k (requires --faults)\n\
           --clocked             also sweep the clocked fish streamer:\n\
                                 permanent + cycle-precise transient faults\n\
                                 over full sort schedules, with rail-triggered\n\
                                 replay scoring recovered vs fail-stop; with\n\
                                 --multi, simultaneous fault sets ride along\n\
                                 (requires --faults)\n\
           --tenants <t>         round-robin t in-flight schedules through\n\
                                 each clocked faulty machine instead of one\n\
                                 fresh machine per schedule (default 1;\n\
                                 requires --faults --clocked)\n\
           --checkpoint <path>   write the campaign-so-far after every unit\n\
                                 (default with --resume:\n\
                                 results/faults/checkpoint.json)\n\
           --resume              skip units an earlier checkpoint already\n\
                                 covers (requires --faults)\n\
           --faults-timeout-secs <s>\n\
                                 stop between units once the budget expires;\n\
                                 the report is marked \"truncated\" and a\n\
                                 checkpointed run can be resumed"
    );
    exit(2);
}

/// Reports which flag was malformed before the usage text, so a typo in
/// one flag does not read as "you got the whole invocation wrong".
fn flag_error(flag: &str, got: Option<&String>) -> ! {
    match got {
        Some(v) => eprintln!("error: invalid value {v:?} for {flag}\n"),
        None => eprintln!("error: {flag} requires a value\n"),
    }
    usage();
}

/// [`flag_error`] for enumerated flags: names every valid value, so a
/// typo'd enum member is answered with the actual menu.
fn enum_flag_error(flag: &str, got: Option<&String>, valid: &str) -> ! {
    match got {
        Some(v) => eprintln!("error: invalid value {v:?} for {flag} (valid: {valid})\n"),
        None => eprintln!("error: {flag} requires a value (valid: {valid})\n"),
    }
    usage();
}

/// Valid `--passes` tokens, quoted back at the user on a parse error.
const VALID_PASSES: &str = "const-prologue, const-prop, cse, rewrite, dce, mask-reuse, none";

fn parse_kind(s: &str) -> SorterKind {
    match s {
        "prefix" => SorterKind::Prefix,
        "mux-merger" | "muxmerge" | "mux" => SorterKind::MuxMerger,
        "fish" => SorterKind::Fish { k: None },
        other => {
            eprintln!("unknown network {other:?} (try prefix | mux-merger | fish)");
            exit(2);
        }
    }
}

struct Args {
    network: String,
    n: Option<usize>,
    m: Option<usize>,
    engine: Engine,
    opt: CompileOptions,
    harden_duplicate: bool,
    metrics: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    profile: bool,
    rust: bool,
    standalone: bool,
    fn_name: Option<String>,
    faults: bool,
    faults_out: Option<String>,
    multi: Option<usize>,
    clocked: bool,
    tenants: Option<usize>,
    checkpoint: Option<String>,
    resume: bool,
    faults_timeout_secs: Option<u64>,
    opt_level: OptLevel,
    addr: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    batch_max: Option<usize>,
    max_n: Option<usize>,
    chaos: bool,
    out: Option<String>,
    ruleset: Option<String>,
    positional: Vec<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut a = Args {
        network: "mux-merger".to_string(),
        n: None,
        m: None,
        engine: Engine::default(),
        opt: CompileOptions::default(),
        harden_duplicate: false,
        metrics: false,
        metrics_out: None,
        trace_out: None,
        profile: false,
        rust: false,
        standalone: false,
        fn_name: None,
        faults: false,
        faults_out: None,
        multi: None,
        clocked: false,
        tenants: None,
        checkpoint: None,
        resume: false,
        faults_timeout_secs: None,
        opt_level: OptLevel::default(),
        addr: None,
        workers: None,
        queue: None,
        batch_max: None,
        max_n: None,
        chaos: false,
        out: None,
        ruleset: None,
        positional: Vec::new(),
    };
    let mut it = argv.iter();
    let parse_usize = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> usize {
        let v = it.next();
        v.and_then(|v| v.parse().ok())
            .unwrap_or_else(|| flag_error(flag, v))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--network" => {
                a.network = it
                    .next()
                    .unwrap_or_else(|| flag_error("--network", None))
                    .clone()
            }
            "--n" => a.n = Some(parse_usize("--n", &mut it)),
            "--m" => a.m = Some(parse_usize("--m", &mut it)),
            "--engine" => {
                let v = it.next();
                a.engine = v
                    .and_then(|v| Engine::parse(v))
                    .unwrap_or_else(|| enum_flag_error("--engine", v, Engine::VALID));
            }
            "--opt-level" => {
                let v = it.next();
                let level = v
                    .and_then(|v| OptLevel::parse(v))
                    .unwrap_or_else(|| enum_flag_error("--opt-level", v, "0, 1, 2"));
                a.opt.passes = level.passes();
                a.opt_level = level;
            }
            "--passes" => {
                let v = it.next();
                let Some(v) = v else {
                    enum_flag_error("--passes", None, VALID_PASSES)
                };
                match PassSet::parse_list(v) {
                    Ok(set) => a.opt.passes = set,
                    Err(tok) => enum_flag_error("--passes", Some(&tok), VALID_PASSES),
                }
            }
            "--harden-duplicate" => a.harden_duplicate = true,
            "--metrics" => a.metrics = true,
            "--metrics-out" => {
                a.metrics_out = Some(
                    it.next()
                        .unwrap_or_else(|| flag_error("--metrics-out", None))
                        .clone(),
                );
            }
            "--trace-out" => {
                a.trace_out = Some(
                    it.next()
                        .unwrap_or_else(|| flag_error("--trace-out", None))
                        .clone(),
                );
            }
            "--profile" => a.profile = true,
            "--fuse" => a.opt.fuse = true,
            "--rust" => a.rust = true,
            "--standalone" => a.standalone = true,
            "--fn-name" => {
                a.fn_name = Some(
                    it.next()
                        .unwrap_or_else(|| flag_error("--fn-name", None))
                        .clone(),
                );
            }
            "--faults" => a.faults = true,
            "--faults-out" => {
                a.faults_out = Some(
                    it.next()
                        .unwrap_or_else(|| flag_error("--faults-out", None))
                        .clone(),
                );
            }
            "--multi" => {
                let k = parse_usize("--multi", &mut it);
                if k == 0 {
                    flag_error("--multi", Some(&"0".to_string()));
                }
                a.multi = Some(k);
            }
            "--clocked" => a.clocked = true,
            "--tenants" => {
                let t = parse_usize("--tenants", &mut it);
                if t == 0 {
                    flag_error("--tenants", Some(&"0".to_string()));
                }
                a.tenants = Some(t);
            }
            "--checkpoint" => {
                a.checkpoint = Some(
                    it.next()
                        .unwrap_or_else(|| flag_error("--checkpoint", None))
                        .clone(),
                );
            }
            "--resume" => a.resume = true,
            "--faults-timeout-secs" => {
                a.faults_timeout_secs = Some(parse_usize("--faults-timeout-secs", &mut it) as u64);
            }
            "--addr" => {
                a.addr = Some(
                    it.next()
                        .unwrap_or_else(|| flag_error("--addr", None))
                        .clone(),
                );
            }
            "--workers" => a.workers = Some(parse_usize("--workers", &mut it)),
            "--queue" => {
                let q = parse_usize("--queue", &mut it);
                if q == 0 {
                    flag_error("--queue", Some(&"0".to_string()));
                }
                a.queue = Some(q);
            }
            "--batch-max" => {
                let b = parse_usize("--batch-max", &mut it);
                if b == 0 {
                    flag_error("--batch-max", Some(&"0".to_string()));
                }
                a.batch_max = Some(b);
            }
            "--max-n" => {
                let n = parse_usize("--max-n", &mut it);
                if n == 0 {
                    flag_error("--max-n", Some(&"0".to_string()));
                }
                a.max_n = Some(n);
            }
            "--chaos" => a.chaos = true,
            "--out" => {
                a.out = Some(
                    it.next()
                        .unwrap_or_else(|| flag_error("--out", None))
                        .clone(),
                );
            }
            "--ruleset" => {
                a.ruleset = Some(
                    it.next()
                        .unwrap_or_else(|| flag_error("--ruleset", None))
                        .clone(),
                );
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other}\n");
                usage()
            }
            other => a.positional.push(other.to_string()),
        }
    }
    // Flag dependency: a report path without the campaign flag is a
    // mistake worth naming precisely, not silently accepting.
    if a.faults_out.is_some() && !a.faults {
        eprintln!(
            "error: --faults-out requires --faults (it names the fault-campaign report path)\n"
        );
        usage();
    }
    // Same for the telemetry output paths: without --metrics nothing is
    // recorded, so a bare output path would silently produce nothing.
    let metrics_only = [
        (a.metrics_out.is_some(), "--metrics-out"),
        (a.trace_out.is_some(), "--trace-out"),
    ];
    for (set, flag) in metrics_only {
        if set && !a.metrics {
            eprintln!("error: {flag} requires --metrics (it names a telemetry output path)\n");
            usage();
        }
    }
    let campaign_only = [
        (a.harden_duplicate, "--harden-duplicate"),
        (a.multi.is_some(), "--multi"),
        (a.clocked, "--clocked"),
        (a.tenants.is_some(), "--tenants"),
        (a.checkpoint.is_some(), "--checkpoint"),
        (a.resume, "--resume"),
        (a.faults_timeout_secs.is_some(), "--faults-timeout-secs"),
    ];
    for (set, flag) in campaign_only {
        if set && !a.faults {
            eprintln!("error: {flag} requires --faults (it tunes the fault campaign)\n");
            usage();
        }
    }
    // Tenancy only means something for the clocked streamer sweep.
    if a.tenants.is_some() && !a.clocked {
        eprintln!("error: --tenants requires --clocked (it schedules the clocked streamer)\n");
        usage();
    }
    a
}

fn require_pow2(n: usize) {
    if !n.is_power_of_two() || n < 2 {
        eprintln!("size {n} must be a power of two >= 2");
        exit(1);
    }
}

fn build_circuit(network: &str, n: usize) -> absort::circuit::Circuit {
    require_pow2(n);
    match network {
        "prefix" => prefix::build(n),
        "mux-merger" | "muxmerge" | "mux" => muxmerge::build(n),
        "nonadaptive" => nonadaptive::build(n),
        "fish" => {
            eprintln!("the fish sorter is time-multiplexed (Model B); it has no single combinational circuit — use inspect/sort instead");
            exit(2);
        }
        other => {
            eprintln!("unknown network {other:?}");
            exit(2);
        }
    }
}

fn cmd_sort(a: &Args) {
    let bits_str = a.positional.first().unwrap_or_else(|| usage());
    let bits = lang::bits(bits_str);
    if !bits.len().is_power_of_two() {
        eprintln!("input length {} is not a power of two", bits.len());
        exit(1);
    }
    let out = if a.network == "nonadaptive" {
        let c = nonadaptive::build(bits.len());
        c.eval(&bits)
    } else {
        parse_kind(&a.network).sort(&bits)
    };
    println!("{}", lang::show(&out, 4));
    if a.network != "nonadaptive" {
        let kind = parse_kind(&a.network);
        println!(
            "network: {}   cost model: {} units   depth/time: {}",
            kind.name(),
            kind.cost(bits.len()),
            kind.depth(bits.len())
        );
    }
}

fn cmd_route(a: &Args) {
    let spec = a.positional.first().unwrap_or_else(|| usage());
    let dests: Vec<usize> = spec
        .split(',')
        .map(|t| {
            t.trim().parse().unwrap_or_else(|_| {
                eprintln!("bad destination {t:?}");
                exit(1)
            })
        })
        .collect();
    let n = dests.len();
    if !n.is_power_of_two() {
        eprintln!("permutation length {n} is not a power of two");
        exit(1);
    }
    let rp = RadixPermuter::new(parse_kind(&a.network), n);
    let packets: Vec<(usize, String)> = dests
        .iter()
        .enumerate()
        .map(|(i, &d)| (d, format!("p{i}")))
        .collect();
    match rp.route(&packets) {
        Ok(out) => {
            for (slot, payload) in out.iter().enumerate() {
                println!("output {slot} <- {payload}");
            }
            println!(
                "bit-level cost {}   permutation time {}   {}-switched",
                rp.cost(),
                rp.time(),
                if rp.is_packet_switched() {
                    "packet"
                } else {
                    "circuit"
                }
            );
        }
        Err(e) => {
            eprintln!("routing failed: {e}");
            exit(1);
        }
    }
}

fn cmd_concentrate(a: &Args) {
    let pattern = a.positional.first().unwrap_or_else(|| usage());
    let n = pattern.chars().count();
    if !n.is_power_of_two() {
        eprintln!("pattern length {n} is not a power of two");
        exit(1);
    }
    let m = a.m.unwrap_or(n);
    let conc = Concentrator::new(parse_kind(&a.network), n, m);
    let requests: Vec<Option<char>> = pattern.chars().map(|c| (c != '.').then_some(c)).collect();
    match conc.concentrate(&requests) {
        Ok(out) => {
            let rendered: String = out.iter().map(|o| o.unwrap_or('.')).collect();
            println!("{rendered}");
            println!("cost {}   time {}", conc.cost(), conc.time());
        }
        Err(e) => {
            eprintln!("concentration failed: {e}");
            exit(1);
        }
    }
}

fn cmd_inspect(a: &Args) {
    let n = a.n.unwrap_or_else(|| usage());
    if a.network == "fish" {
        if a.profile {
            eprintln!(
                "error: --profile profiles a compiled combinational tape; the fish sorter is time-multiplexed (Model B)"
            );
            exit(2);
        }
        let f = absort::core::FishSorter::with_default_k(n);
        let r = f.report();
        println!("fish sorter n={n} k={}", f.k);
        println!("  cost (exact construction): {}", r.cost_exact);
        println!("  cost (paper eq. 17 bound): {}", r.cost_paper_bound);
        println!("  sorting time serial:       {}", r.time_unpipelined);
        println!("  sorting time pipelined:    {}", r.time_pipelined);
        return;
    }
    let c = build_circuit(&a.network, n);
    println!("{} sorter, n = {n}", a.network);
    println!("  {}", c.cost());
    println!("  depth: {}", c.depth());
    let stats = c.stats();
    #[cfg(feature = "telemetry")]
    record_circuit_section(&a.network, n, &stats);
    println!(
        "  components: {}   wires: {}   mean fanout: {:.2}",
        c.n_components(),
        c.n_wires(),
        stats.mean_fanout
    );
    println!("hardware profile:");
    print!("{}", c.scope_report(3));
    let cc = c.compile_with(&a.opt);
    println!("compiled tape (passes: {}):", a.opt.passes.fingerprint());
    for s in cc.pass_stats() {
        println!(
            "  {:<14} {:>6} -> {:>6} ops  (-{})",
            s.name,
            s.ops_before,
            s.ops_after,
            s.removed()
        );
    }
    if !cc.rewrite_hits().is_empty() {
        println!("rewrite rule hits:");
        for (rule, hits) in cc.rewrite_hits() {
            println!("  {rule:<20} {hits:>6}");
        }
    }
    println!(
        "  tape: {} ops, {} slots (vs {} wires, {:.1}% saved)",
        cc.tape_len(),
        cc.n_slots(),
        c.n_wires(),
        100.0 * cc.slots_saved() as f64 / c.n_wires() as f64
    );
    if a.profile {
        #[cfg(feature = "profile")]
        print_tape_profile(&cc);
        #[cfg(not(feature = "profile"))]
        {
            eprintln!(
                "error: this binary was built without the `profile` feature; rebuild with `--features profile` to use --profile"
            );
            exit(2);
        }
    }
}

/// Human `ns` rendering for the profile table (the telemetry crate's
/// formatter is private, and `--profile` works without telemetry).
#[cfg(feature = "profile")]
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Replays deterministic 64-lane workloads through the profiled dispatch
/// loop — sampling one pass in four, the other passes run the production
/// loop — and prints the hot-op table plus the hottest depth levels.
#[cfg(feature = "profile")]
fn print_tape_profile(cc: &absort::circuit::CompiledCircuit) {
    use absort::circuit::TapeProfile;
    const TOTAL_PASSES: usize = 128;
    const SAMPLE_EVERY: usize = 4;
    let mut prof = TapeProfile::new();
    let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(cc);
    let mut out = vec![0u64; cc.n_outputs()];
    let mut inputs = vec![0u64; cc.n_inputs()];
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut splitmix = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for pass in 0..TOTAL_PASSES {
        for v in inputs.iter_mut() {
            *v = splitmix();
        }
        if pass % SAMPLE_EVERY == 0 {
            ev.run_into_profiled(&inputs, &mut out, &mut prof);
        } else {
            ev.run_into(&inputs, &mut out);
        }
    }
    let total_ns = prof.total_ns().max(1);
    println!(
        "tape profile ({} of {TOTAL_PASSES} passes sampled, 64-lane):",
        prof.passes
    );
    println!(
        "  {:<14} {:>10} {:>12} {:>7} {:>8}",
        "kind", "execs", "time", "%time", "ns/op"
    );
    for (name, k) in prof.hot_kinds() {
        println!(
            "  {:<14} {:>10} {:>12} {:>6.1}% {:>8.1}",
            name,
            k.executions,
            fmt_ns(k.total_ns),
            100.0 * k.total_ns as f64 / total_ns as f64,
            k.total_ns as f64 / k.executions as f64,
        );
    }
    // Same-level adjacent pairs — the statistic the `fuse` pass's
    // superinstruction menu is derived from.
    let pairs = prof.hot_pairs();
    if !pairs.is_empty() {
        let total_pairs: u64 = pairs.iter().map(|&(_, c)| c).sum();
        println!("  hottest same-level op pairs (fusion candidates):");
        for ((a, b), count) in pairs.iter().take(8) {
            println!(
                "    {:<28} {:>10}  ({:>4.1}%)",
                format!("{a} + {b}"),
                count,
                100.0 * *count as f64 / total_pairs as f64,
            );
        }
    }
    let mut levels: Vec<(usize, absort::circuit::profile::LevelStat)> = prof
        .levels
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, l)| l.executions > 0)
        .collect();
    levels.sort_by_key(|l| std::cmp::Reverse(l.1.total_ns));
    println!("  hottest levels (of {} + prologue):", cc.n_levels());
    for (i, l) in levels.iter().take(8) {
        let label = if *i == 0 {
            "prologue".to_owned()
        } else {
            format!("level {}", i - 1)
        };
        println!(
            "    {:<10} {:>8} ops {:>12} ({:>4.1}%)",
            label,
            l.executions,
            fmt_ns(l.total_ns),
            100.0 * l.total_ns as f64 / total_ns as f64,
        );
    }
    println!("  (per-op times include the clock-read overhead of profiling; use them to rank, not as absolute dispatch cost)");
}

/// Sweeps all `2^n` inputs through `pass` in packed 64-lane groups
/// (integers `v, v+1, …` packed straight into lanes, no per-bool
/// vectors) and checks every lane against the sorted zero-one pattern
/// (`bit i == (i >= n − popcount)`). Returns the failure count.
fn verify_sweep(n: usize, mut pass: impl FnMut(&[u64], &mut [u64])) -> u64 {
    let total = 1u64 << n;
    let mut packed = vec![0u64; n];
    let mut out = vec![0u64; n];
    let mut failures = 0u64;
    let mut v = 0u64;
    while v < total {
        let lanes = (total - v).min(64) as usize;
        packed.fill(0);
        for lane in 0..lanes {
            let x = v + lane as u64;
            for (i, p) in packed.iter_mut().enumerate() {
                *p |= (x >> i & 1) << lane;
            }
        }
        pass(&packed, &mut out);
        for lane in 0..lanes {
            let ones = (v + lane as u64).count_ones() as usize;
            let ok = out
                .iter()
                .enumerate()
                .all(|(i, word)| (word >> lane & 1 == 1) == (i >= n - ones));
            if !ok {
                failures += 1;
            }
        }
        v += lanes as u64;
    }
    failures
}

fn cmd_verify(a: &Args) {
    let n = a.n.unwrap_or_else(|| usage());
    require_pow2(n);
    if n > 20 {
        eprintln!("exhaustive verification limited to n <= 20");
        exit(1);
    }
    let failures = if a.network == "fish" {
        // The fish sorter is the time-multiplexed functional model — no
        // single combinational circuit, so no packed engine applies.
        let f = absort::core::FishSorter::with_default_k(n.max(4));
        let mut failures = 0u64;
        for v in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
            let ones = v.count_ones() as usize;
            let sorted = f.sort(&bits);
            if !sorted
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (i >= n - ones))
            {
                failures += 1;
            }
        }
        failures
    } else {
        let c = build_circuit(&a.network, n);
        match a.engine {
            Engine::Compiled => {
                let cc = c.compile_with(&a.opt);
                let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&cc);
                verify_sweep(n, |p, o| ev.run_into(p, o))
            }
            Engine::Interp => {
                let mut ev: Evaluator<'_, u64> = Evaluator::new(&c);
                verify_sweep(n, |p, o| ev.run_into(p, o))
            }
        }
    };
    if failures == 0 {
        println!("verified: all {} inputs sort correctly", 1u64 << n);
        if a.network != "fish" {
            println!("engine: {}", a.engine);
        }
    } else {
        println!("FAILED on {failures} inputs");
        exit(1);
    }
}

/// `absort emit --rust --network <x> --n <k>`: compiles the network with
/// the selected options and prints the tape as straight-line Rust.
fn cmd_emit(a: &Args) {
    if !a.rust {
        eprintln!("error: emit requires a target language flag (only --rust exists)\n");
        usage();
    }
    let n = a.n.unwrap_or_else(|| usage());
    // The fish *sorter* is time-multiplexed, but its combinational
    // k-merger core is a circuit like any other — that is what `emit
    // --network fish` prints (matching the fault campaigns).
    let c = if a.network == "fish" {
        require_pow2(n);
        absort::core::fish::circuits::build_combinational_kmerger(
            n,
            absort::analysis::faults::fish_k(n),
        )
    } else {
        build_circuit(&a.network, n)
    };
    let cc = c.compile_with(&a.opt);
    let fn_name = a.fn_name.clone().unwrap_or_else(|| {
        format!(
            "sort_{}_{n}",
            a.network
                .replace('-', "_")
                .replace("muxmerge", "mux_merger")
        )
    });
    print!(
        "{}",
        absort::circuit::emit::emit_rust(&cc, &fn_name, a.standalone)
    );
}

fn cmd_dot(a: &Args) {
    let n = a.n.unwrap_or_else(|| usage());
    let c = build_circuit(&a.network, n);
    print!("{}", dot::to_dot(&c, &format!("{}-{n}", a.network)));
}

fn cmd_save(a: &Args) {
    let n = a.n.unwrap_or_else(|| usage());
    let c = build_circuit(&a.network, n);
    print!("{}", absort::circuit::serdes::to_text(&c));
}

fn cmd_eval(a: &Args) {
    let [path, bits_str] = a.positional.as_slice() else {
        usage()
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    let circuit = absort::circuit::serdes::from_text(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    let bits = lang::bits(bits_str);
    if bits.len() != circuit.n_inputs() {
        eprintln!(
            "netlist has {} inputs, got {} bits",
            circuit.n_inputs(),
            bits.len()
        );
        exit(1);
    }
    println!("{}", lang::show(&circuit.eval(&bits), 0));
}

/// Runs the fault-tolerant sorting daemon (`absort serve`): binds,
/// serves until SIGTERM/SIGINT, then drains gracefully — stops
/// accepting, flushes in-flight requests, prints the final stats, and
/// exits 0.
fn cmd_serve(a: &Args) {
    use absort::serve::{signal, ServeConfig, Server};
    let cfg = ServeConfig {
        addr: a
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:7600".to_string()),
        workers: a.workers.unwrap_or(0),
        queue_capacity: a.queue.unwrap_or(1024),
        batch_max: a.batch_max.unwrap_or(absort::serve::server::WIDE_LANES),
        max_n: a
            .max_n
            .map_or(absort::serve::proto::DEFAULT_MAX_N, |n| n as u32),
        chaos: a.chaos,
        opt: a.opt_level,
        ..ServeConfig::default()
    };
    signal::install_handlers();
    let server = Server::start(cfg.clone()).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {}: {e}", cfg.addr);
        exit(1);
    });
    println!("absort serve listening on {}", server.local_addr());
    if cfg.chaos {
        println!("chaos hooks ENABLED: forced-worker-panic requests will be honored");
    }
    while !signal::drain_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("drain requested: no longer accepting; flushing in-flight requests");
    let stats = server.join();
    println!(
        "drained cleanly: {} conns, {} requests, {} ok, {} shed, {} deadline-missed, \
         {} malformed, {} slow-loris closed, {} panics isolated, {} solo retries, \
         {} internal, {} batches",
        stats.conns_accepted,
        stats.requests,
        stats.replies_ok,
        stats.shed,
        stats.deadline_missed,
        stats.malformed,
        stats.slow_loris_closed,
        stats.panics_isolated,
        stats.solo_retries,
        stats.internal_errors,
        stats.batches,
    );
}

/// Stashes the inspected circuit's structural numbers as a manifest
/// section, so a `--metrics` run records *what* was measured alongside
/// where the time went.
#[cfg(feature = "telemetry")]
fn record_circuit_section(network: &str, n: usize, stats: &absort::circuit::Stats) {
    use absort_telemetry::json::Value;
    absort_telemetry::add_section(
        "circuit",
        Value::obj([
            ("network", Value::Str(network.to_string())),
            ("n", Value::Int(n as i64)),
            ("cost", Value::Int(stats.cost.total as i64)),
            ("depth", Value::Int(stats.depth as i64)),
            (
                "n_components",
                Value::Int(
                    stats
                        .components_per_level
                        .iter()
                        .map(|&c| i64::from(c))
                        .sum(),
                ),
            ),
            ("mean_fanout", Value::Float(stats.mean_fanout)),
            ("max_fanout", Value::Int(i64::from(stats.max_fanout))),
        ]),
    );
}

fn unix_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// Runs the fault-injection campaign (`absort --network <x> --faults`):
/// builds the selected networks, sweeps every fault kind over their
/// fault sites, prints a detection/degradation summary, and writes the
/// JSON report (default `results/faults/campaign-<unix-ms>.json`).
fn cmd_faults(a: &Args) {
    use absort::analysis::faults::{self as fc, NetworkSel};
    let n = a.n.unwrap_or(8);
    require_pow2(n);
    let networks: Vec<NetworkSel> = if a.network == "all" {
        NetworkSel::ALL.to_vec()
    } else {
        match NetworkSel::parse(&a.network) {
            Some(sel) => vec![sel],
            None => {
                eprintln!(
                    "unknown network {:?} (try prefix | mux-merger | fish | batcher | all)",
                    a.network
                );
                exit(2);
            }
        }
    };
    let cfg = fc::CampaignConfig {
        n,
        engine: a.engine,
        opt: a.opt,
        harden: absort::networks::hardened::HardenOptions {
            duplicate: a.harden_duplicate,
            ..Default::default()
        },
        ..Default::default()
    };
    // --resume implies a checkpoint; default its path so "interrupt, then
    // rerun with --resume" works without repeating the flag pair.
    let checkpoint = a.checkpoint.clone().or_else(|| {
        a.resume
            .then(|| "results/faults/checkpoint.json".to_string())
    });
    let opts = fc::CampaignOptions {
        multi: a.multi.unwrap_or(1),
        clocked: a.clocked,
        tenants: a.tenants.unwrap_or(1),
        checkpoint: checkpoint.as_deref().map(std::path::PathBuf::from),
        resume: a.resume,
        timeout: a.faults_timeout_secs.map(std::time::Duration::from_secs),
        ..Default::default()
    };
    let report = fc::run_campaign_with(&networks, &cfg, &opts);

    for net in &report.networks {
        let sets = if net.fault_set_size > 1 {
            format!(", {}-fault sets", net.fault_set_size)
        } else {
            String::new()
        };
        println!(
            "{} n={}  [{} tier: {} vectors/site, {} components, {} engine{}]",
            net.network, net.n, net.tier, net.vectors, net.components, a.engine, sets
        );
        for k in &net.kinds {
            println!(
                "  {:<18} injected {:>4}  detected {:>4}  masked {:>4}  flagged {:>4}  \
                 rate {:.3}  concurrent {:.3}  worst inversions {:>3}  worst displacement {:>3}",
                k.kind.map_or("mixed", |k| k.name()),
                k.injected,
                k.detected,
                k.masked,
                k.flagged,
                k.detection_rate(),
                k.concurrent_detection_rate(),
                k.degradation.max_inversions,
                k.degradation.max_displacement,
            );
        }
        println!(
            "  permanent-fault detection rate: {:.3}   concurrent (error-rail): {:.3}",
            net.permanent_detection_rate(),
            net.concurrent_detection_rate()
        );
        // Recovery columns only exist for units with replay semantics
        // (the clocked streamer); keep combinational summaries unchanged.
        let (rec, fstop) = (net.recovered(), net.fail_stop());
        if rec + fstop > 0 {
            println!("  recovery (rail-triggered replay): recovered {rec}  fail-stop {fstop}");
        }
        // The hardening trade in one row: what the checker hardware
        // costs against the concurrent coverage it buys.
        let overhead = net.hardened_cost.saturating_sub(net.base_cost);
        println!(
            "  hardening: base cost {}  hardened {}  overhead {} units ({:.1}%)  \
             concurrent coverage {:.3}",
            net.base_cost,
            net.hardened_cost,
            overhead,
            if net.base_cost == 0 {
                0.0
            } else {
                100.0 * overhead as f64 / net.base_cost as f64
            },
            net.concurrent_detection_rate(),
        );
    }
    if report.truncated {
        println!(
            "campaign truncated by --faults-timeout-secs; rerun with --resume to finish{}",
            checkpoint
                .as_deref()
                .map(|p| format!(" (checkpoint: {p})"))
                .unwrap_or_default()
        );
    }

    let path = a
        .faults_out
        .clone()
        .unwrap_or_else(|| format!("results/faults/campaign-{}.json", unix_ms()));
    let write_result = {
        #[cfg(feature = "telemetry")]
        {
            // The report rides in the run manifest (spans and counters of
            // the campaign included) via the telemetry manifest writer.
            absort_telemetry::add_section("faults", report.to_json());
            absort_telemetry::write_manifest(std::path::Path::new(&path))
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let p = std::path::Path::new(&path);
            if let Some(parent) = p.parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            std::fs::write(p, report.to_json().to_pretty())
        }
    };
    match write_result {
        Ok(()) => println!("fault report: {path}"),
        Err(e) => {
            eprintln!("error: cannot write fault report {path}: {e}");
            exit(1);
        }
    }
}

/// Runs the flag-only metrics mode (`absort --network <x> --metrics`):
/// builds and compiles the selected network, then sweeps both evaluation
/// engines over a deterministic 64-lane workload with instrumentation
/// on, so the manifest carries populated eval-latency histograms (and
/// `--trace-out` a non-trivial span trace) without needing a campaign.
#[cfg(feature = "telemetry")]
fn cmd_metrics_run(a: &Args) {
    use absort::analysis::faults::{build_network, NetworkSel};
    let n = a.n.unwrap_or(8);
    require_pow2(n);
    let Some(sel) = NetworkSel::parse(&a.network) else {
        eprintln!(
            "unknown network {:?} (try prefix | mux-merger | fish | batcher)",
            a.network
        );
        exit(2);
    };
    const PASSES: usize = 256;
    let _span = absort_telemetry::span("metrics_run");
    let circuit = {
        let _s = absort_telemetry::span("build");
        build_network(sel, n)
    };
    record_circuit_section(&a.network, n, &circuit.stats());
    let cc = {
        let _s = absort_telemetry::span("compile");
        circuit.compile_with(&a.opt)
    };
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut splitmix = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut inputs = vec![0u64; circuit.n_inputs()];
    let mut out = vec![0u64; circuit.n_outputs()];
    {
        let _s = absort_telemetry::span("eval/interp");
        let mut ev: Evaluator<'_, u64> = Evaluator::new(&circuit);
        for _ in 0..PASSES {
            for v in inputs.iter_mut() {
                *v = splitmix();
            }
            ev.run_into(&inputs, &mut out);
        }
    }
    {
        let _s = absort_telemetry::span("eval/compiled");
        let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&cc);
        for _ in 0..PASSES {
            for v in inputs.iter_mut() {
                *v = splitmix();
            }
            ev.run_into(&inputs, &mut out);
        }
    }
    println!(
        "metrics run: {} n={n}, {PASSES} passes x 64 lanes per engine (tape: {} ops, {} slots)",
        sel.name(),
        cc.tape_len(),
        cc.n_slots(),
    );
}

/// Writes the Chrome trace if `--trace-out` was given (event recording
/// must have been switched on before the instrumented work ran).
#[cfg(feature = "telemetry")]
fn write_trace_out(a: &Args) {
    let Some(path) = &a.trace_out else { return };
    match absort_telemetry::write_trace(std::path::Path::new(path)) {
        Ok(()) => eprintln!("trace: {path}"),
        Err(e) => {
            eprintln!("error: cannot write trace {path}: {e}");
            exit(1);
        }
    }
}

fn run_command(cmd: &str, rest: &Args) {
    // The campaign flags belong to the standalone flag-only mode; accepting
    // them here and doing nothing would silently drop the user's ask.
    if rest.faults || rest.faults_out.is_some() {
        eprintln!(
            "error: --faults/--faults-out run standalone: absort --network <x> --faults [--faults-out <path>]\n"
        );
        usage();
    }
    // --profile drives the inspect tape profiler; accepting it elsewhere
    // and doing nothing would silently drop the user's ask.
    if rest.profile && cmd != "inspect" {
        eprintln!("error: --profile applies to the inspect command only\n");
        usage();
    }
    // Same for the emitter flags: they select emit's output shape.
    let emit_only = [
        (rest.rust, "--rust"),
        (rest.standalone, "--standalone"),
        (rest.fn_name.is_some(), "--fn-name"),
    ];
    for (set, flag) in emit_only {
        if set && cmd != "emit" {
            eprintln!("error: {flag} applies to the emit command only\n");
            usage();
        }
    }
    // And the daemon flags: they configure the serve command.
    let serve_only = [
        (rest.addr.is_some(), "--addr"),
        (rest.workers.is_some(), "--workers"),
        (rest.queue.is_some(), "--queue"),
        (rest.batch_max.is_some(), "--batch-max"),
        (rest.max_n.is_some(), "--max-n"),
        (rest.chaos, "--chaos"),
    ];
    for (set, flag) in serve_only {
        if set && cmd != "serve" {
            eprintln!("error: {flag} applies to the serve command only\n");
            usage();
        }
    }
    // And the ruleset flags: they shape the rules subcommands.
    let rules_only = [
        (rest.out.is_some(), "--out"),
        (rest.ruleset.is_some(), "--ruleset"),
    ];
    for (set, flag) in rules_only {
        if set && cmd != "rules" {
            eprintln!("error: {flag} applies to the rules command only\n");
            usage();
        }
    }
    match cmd {
        "sort" => cmd_sort(rest),
        "route" => cmd_route(rest),
        "concentrate" => cmd_concentrate(rest),
        "inspect" => cmd_inspect(rest),
        "verify" => cmd_verify(rest),
        "emit" => cmd_emit(rest),
        "dot" => cmd_dot(rest),
        "save" => cmd_save(rest),
        "eval" => cmd_eval(rest),
        "serve" => cmd_serve(rest),
        "rules" => cmd_rules(rest),
        _ => usage(),
    }
}

/// `absort rules synth | check`: regenerate or audit the rewrite
/// pass's ruleset. `synth` prints (or `--out`-writes) the
/// deterministic synthesized set; `check` validates and exhaustively
/// re-verifies a ruleset file (`--ruleset <path>`, default: the
/// compiled-in committed set).
fn cmd_rules(a: &Args) {
    use absort::circuit::passes::rewrite;
    use absort::circuit::pattern::RuleSet;
    match a.positional.first().map(String::as_str) {
        Some("synth") => {
            let set = absort::rules::synthesize();
            let text = set.print();
            match &a.out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &text) {
                        eprintln!("error: cannot write {path}: {e}");
                        exit(1);
                    }
                    eprintln!(
                        "wrote {} rules + {} builtins to {path}",
                        set.rules.len(),
                        set.builtins.len()
                    );
                }
                None => print!("{text}"),
            }
        }
        Some("check") => {
            let set = match &a.ruleset {
                Some(path) => {
                    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        eprintln!("error: cannot read {path}: {e}");
                        exit(1);
                    });
                    RuleSet::parse(&text).unwrap_or_else(|e| {
                        eprintln!("error: {path}: {e}");
                        exit(1);
                    })
                }
                None => rewrite::default_ruleset().clone(),
            };
            if let Err(e) = absort::rules::check(&set) {
                eprintln!("ruleset check FAILED: {e}");
                exit(1);
            }
            println!(
                "ruleset ok: {} rules, {} builtins, all verified exhaustively",
                set.rules.len(),
                set.builtins.len()
            );
        }
        other => {
            match other {
                Some(sub) => eprintln!(
                    "error: invalid value {sub:?} for rules subcommand (valid: synth, check)\n"
                ),
                None => eprintln!("error: rules requires a subcommand (valid: synth, check)\n"),
            }
            usage();
        }
    }
}

#[cfg(feature = "telemetry")]
fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    if cmd.starts_with("--") {
        // Flag-only invocation: a fault campaign, or a metrics run.
        let a = parse_args(&argv);
        if !a.faults && !a.metrics {
            usage();
        }
        absort_telemetry::init_from_env();
        absort_telemetry::set_enabled(true);
        if a.trace_out.is_some() {
            absort_telemetry::set_trace_enabled(true);
        }
        if a.faults {
            cmd_faults(&a);
        } else {
            cmd_metrics_run(&a);
            eprint!("{}", absort_telemetry::render_report());
            let path = a
                .metrics_out
                .as_ref()
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| absort_telemetry::default_manifest_path("metrics-run"));
            match absort_telemetry::write_manifest(&path) {
                Ok(()) => eprintln!("telemetry manifest: {}", path.display()),
                Err(e) => {
                    eprintln!("error: cannot write manifest {}: {e}", path.display());
                    exit(1);
                }
            }
        }
        write_trace_out(&a);
        return;
    }
    let rest = parse_args(&argv[1..]);
    absort_telemetry::init_from_env();
    if rest.metrics {
        absort_telemetry::set_enabled(true);
    }
    if rest.trace_out.is_some() {
        absort_telemetry::set_trace_enabled(true);
    }
    {
        let _span = absort_telemetry::span(cmd);
        run_command(cmd, &rest);
    }
    if absort_telemetry::enabled() {
        eprint!("{}", absort_telemetry::render_report());
        let path = rest
            .metrics_out
            .as_ref()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| absort_telemetry::default_manifest_path(cmd));
        match absort_telemetry::write_manifest(&path) {
            Ok(()) => eprintln!("telemetry manifest: {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write manifest {}: {e}", path.display());
                exit(1);
            }
        }
        write_trace_out(&rest);
    }
}

#[cfg(not(feature = "telemetry"))]
fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    if cmd.starts_with("--") {
        // Flag-only invocation: the fault-campaign mode. The metrics-run
        // mode exists to exercise instrumentation, so without the
        // telemetry feature it has nothing to do.
        let a = parse_args(&argv);
        if !a.faults {
            if a.metrics {
                eprintln!(
                    "error: this binary was built without the `telemetry` feature; a --metrics run records nothing"
                );
                exit(2);
            }
            usage();
        }
        cmd_faults(&a);
        return;
    }
    let rest = parse_args(&argv[1..]);
    if rest.metrics {
        eprintln!(
            "note: this binary was built without the `telemetry` feature; --metrics is ignored"
        );
    }
    run_command(cmd, &rest);
}
