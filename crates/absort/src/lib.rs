//! # absort — adaptive binary sorting networks and interconnection networks
//!
//! A full reproduction of Chien & Oruç, *Adaptive Binary Sorting Schemes
//! and Associated Interconnection Networks* (ICPP 1992 / IEEE TPDS 5(6),
//! June 1994), as a Rust library. This facade crate re-exports the whole
//! workspace under one roof:
//!
//! * [`circuit`] — the bit-level netlist substrate (Model A) with the
//!   paper's unit cost/depth accounting;
//! * [`cmpnet`] — word-level comparator networks (Batcher, balanced
//!   merging, zero-one-principle verification);
//! * [`blocks`] — swappers, (n,k)-multiplexers/demultiplexers, prefix
//!   adders (Section II);
//! * [`core`] — the three adaptive binary sorters: prefix (Network 1),
//!   mux-merger (Network 2), and the time-multiplexed fish sorter
//!   (Network 3), plus the `A_n` sequence theory and Theorems 1–4;
//! * [`baselines`] — Batcher bit-level networks, Leighton's columnsort,
//!   and the AKS analytic model;
//! * [`networks`] — concentrators and radix permuters built from the
//!   sorters, and the Beneš baseline (Section IV);
//! * [`analysis`] — experiment drivers regenerating every table and
//!   figure (see EXPERIMENTS.md);
//! * [`faults`] — the fault taxonomy, degradation metrics, and campaign
//!   report types behind `absort --faults` (resilience analysis);
//! * [`rules`] — ruler-style rule synthesis and ruleset auditing for
//!   the compile pipeline's declarative `rewrite` pass (`absort rules`);
//! * [`serve`] — the fault-tolerant TCP sorting service behind
//!   `absort serve`: length-prefixed protocol, wide-lane request
//!   batching, backpressure with typed load shedding, deadlines, and
//!   chaos-tested graceful degradation.
//!
//! ## Quickstart
//!
//! ```
//! use absort::core::{lang, SorterKind};
//!
//! let bits = lang::bits("0110_1001_1100_0011");
//! let sorted = SorterKind::MuxMerger.sort(&bits);
//! assert_eq!(sorted, lang::sorted_oracle(&bits));
//!
//! // And the same network as a real circuit with exact bit-level cost:
//! let circuit = absort::core::muxmerge::build(16);
//! assert_eq!(circuit.eval(&bits), sorted);
//! assert_eq!(circuit.cost().total, 151); // the exact 4n lg n − Θ(n) recurrence
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use absort_analysis as analysis;
pub use absort_baselines as baselines;
pub use absort_blocks as blocks;
pub use absort_circuit as circuit;
pub use absort_cmpnet as cmpnet;
pub use absort_core as core;
pub use absort_faults as faults;
pub use absort_networks as networks;
pub use absort_rules as rules;
pub use absort_serve as serve;
