//! # absort-parwalk — level-parallel tape evaluation
//!
//! The compiled micro-op tape is sorted by circuit depth level, and
//! every op inside one level is combinationally independent of its
//! level-mates. With the **parallel-safe** slot allocation
//! (`CompileOptions::with_par_safe()`), that independence also holds at
//! the storage layer: within a level no op writes a slot another level-
//! mate reads or writes (freed slots are parked until the level
//! boundary, dead defs get private slots). A level can therefore be
//! chunked across threads with nothing but a barrier at each level
//! boundary.
//!
//! This crate provides [`ParEvaluator`], a persistent-pool evaluator
//! that does exactly that. It exists outside `absort-circuit` because
//! the shared slot buffer needs `UnsafeCell` aliasing that the circuit
//! crate's `#![forbid(unsafe_code)]` rules out; everything it reads
//! comes through `CompiledCircuit`'s public accessors.
//!
//! ## Preconditions (checked at construction)
//!
//! * the tape must be compiled with `with_par_safe()` — slot WAR/WAW
//!   freedom inside levels is what makes chunking sound; this is not
//!   detectable from the tape, so the caller promises it by calling
//!   [`ParEvaluator::new`] (debug assertions verify the observable
//!   half: no two ops in a level share a destination slot);
//! * the tape must be compiled with `with_fuse()` **or** carry no
//!   mask-reuse 4×4 switches: a standalone reuse op reads select masks
//!   computed by the *previous* tape op, state that does not survive a
//!   chunk boundary. The fuse pass guarantees reuse runs are either
//!   collapsed into self-contained `S4Chain` superinstructions or have
//!   the flag cleared; [`ParEvaluator::new`] rejects offending tapes.
//!
//! ## When it wins
//!
//! Barrier costs are paid per level (~a microsecond each), so the win
//! condition is `ops per level × lane width` large: wide-lane walks
//! (`[u64; 4]`, `[u64; 8]`) over n ≥ 256 networks. Scalar or small-n
//! walks are faster on one core — `bench_eval` picks per size.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use absort_circuit::compile::{CompiledCircuit, MicroOp, S4ChainData, S4Item, REUSE_MASKS};
use absort_circuit::{Lane, Perm4};

/// Spin barrier with generation counter: cheap enough to sit at every
/// level boundary (a `std::sync::Barrier` parks threads, costing tens of
/// microseconds per level).
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        Self {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
        } else {
            // Bounded spin, then yield: on an oversubscribed box (more
            // participants than cores) pure spinning burns whole
            // scheduler quanta per level and a run degrades by ~1000×.
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < 128 {
                    std::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The shared slot buffer. Soundness: during a run, every participant
/// writes only the destination slots of its own chunk of the current
/// level, and par-safe allocation guarantees those chunks touch disjoint
/// slots (and no level-mate reads a slot written this level). Between
/// levels a [`SpinBarrier`] sequences the accesses. All access goes
/// through the raw [`SlotBuf::ptr`] — no `&mut` is ever formed, so
/// concurrent participants never alias a unique reference.
struct SlotBuf<V>(Box<[UnsafeCell<V>]>);

// SAFETY: see the struct docs — disjoint-slot writes inside a level,
// barrier-separated levels. The raw pointer never outlives a run.
unsafe impl<V: Send> Sync for SlotBuf<V> {}

impl<V> SlotBuf<V> {
    fn ptr(&self) -> *mut V {
        // UnsafeCell<V> is repr-transparent over V.
        self.0.as_ptr() as *mut V
    }
}

/// Everything a worker needs: the decoded tape (cloned out of the
/// `CompiledCircuit` so workers are `'static`), the shared slot buffer,
/// and the rendezvous state.
struct Shared<V> {
    tape: Box<[MicroOp]>,
    perm_sets: Box<[[Perm4; 4]]>,
    fused_pairs: Box<[[MicroOp; 2]]>,
    s4_chains: Box<[S4ChainData]>,
    s4_items: Box<[S4Item]>,
    level_ranges: Box<[(u32, u32)]>,
    slots: SlotBuf<V>,
    /// Run rendezvous: bumped once per `run_into`, workers sleep on it.
    epoch: Mutex<u64>,
    wake: Condvar,
    barrier: SpinBarrier,
    shutdown: AtomicBool,
}

impl<V: Lane> Shared<V> {
    /// Executes tape positions `[start, end)`. `# Safety`: the caller
    /// must hold the level-chunking contract described on [`SlotBuf`].
    unsafe fn exec_range(&self, w: *mut V, start: usize, end: usize) {
        macro_rules! rd {
            ($s:expr) => {
                *w.add($s as usize)
            };
        }
        macro_rules! wr {
            ($d:expr, $v:expr) => {
                *w.add($d as usize) = $v
            };
        }
        let switch4 = |w: *mut V, m: &[V; 4], d: &[u32; 4], ins: &[u32; 4], pm: &[Perm4; 4]| unsafe {
            let iv = [
                *w.add(ins[0] as usize),
                *w.add(ins[1] as usize),
                *w.add(ins[2] as usize),
                *w.add(ins[3] as usize),
            ];
            for j in 0..4 {
                *w.add(d[j] as usize) = m[0]
                    .and(iv[pm[0][j] as usize])
                    .or(m[1].and(iv[pm[1][j] as usize]))
                    .or(m[2].and(iv[pm[2][j] as usize]))
                    .or(m[3].and(iv[pm[3][j] as usize]));
            }
        };
        let masks = |v1: V, v0: V| {
            [
                v1.not().and(v0.not()),
                v1.not().and(v0),
                v1.and(v0.not()),
                v1.and(v0),
            ]
        };
        for op in &self.tape[start..end] {
            match *op {
                MicroOp::Const { d, v } => wr!(d, V::splat(v)),
                MicroOp::Not { d, a } => wr!(d, rd!(a).not()),
                MicroOp::And { d, a, b } => wr!(d, rd!(a).and(rd!(b))),
                MicroOp::Or { d, a, b } => wr!(d, rd!(a).or(rd!(b))),
                MicroOp::Xor { d, a, b } => wr!(d, rd!(a).xor(rd!(b))),
                MicroOp::Nand { d, a, b } => wr!(d, rd!(a).and(rd!(b)).not()),
                MicroOp::Nor { d, a, b } => wr!(d, rd!(a).or(rd!(b)).not()),
                MicroOp::Xnor { d, a, b } => wr!(d, rd!(a).xor(rd!(b)).not()),
                MicroOp::Mux { d, s, a1, a0 } => {
                    wr!(d, V::select(rd!(s), rd!(a1), rd!(a0)))
                }
                MicroOp::Demux { d0, d1, s, x } => {
                    let (sv, xv) = (rd!(s), rd!(x));
                    wr!(d0, sv.not().and(xv));
                    wr!(d1, sv.and(xv));
                }
                MicroOp::Switch2 { d0, d1, s, a, b } => {
                    let (sv, av, bv) = (rd!(s), rd!(a), rd!(b));
                    wr!(d0, V::select(sv, bv, av));
                    wr!(d1, V::select(sv, av, bv));
                }
                MicroOp::Route2 { d0, d1, a, b } => {
                    let (av, bv) = (rd!(a), rd!(b));
                    wr!(d0, av);
                    wr!(d1, bv);
                }
                MicroOp::BitCompare { d0, d1, a, b } => {
                    let (av, bv) = (rd!(a), rd!(b));
                    wr!(d0, av.and(bv));
                    wr!(d1, av.or(bv));
                }
                MicroOp::Switch4 {
                    d,
                    ins,
                    s1,
                    s0,
                    pidx,
                } => {
                    // `new` rejected standalone reuse ops, so the masks
                    // are always ours to compute.
                    let m = masks(rd!(s1), rd!(s0));
                    let pm = &self.perm_sets[(pidx & !REUSE_MASKS) as usize];
                    switch4(w, &m, &d, &ins, pm);
                }
                MicroOp::Pair2 { idx } => {
                    for sub in &self.fused_pairs[idx as usize] {
                        match *sub {
                            MicroOp::And { d, a, b } => wr!(d, rd!(a).and(rd!(b))),
                            MicroOp::Or { d, a, b } => wr!(d, rd!(a).or(rd!(b))),
                            MicroOp::Xor { d, a, b } => wr!(d, rd!(a).xor(rd!(b))),
                            MicroOp::Nand { d, a, b } => wr!(d, rd!(a).and(rd!(b)).not()),
                            MicroOp::Nor { d, a, b } => wr!(d, rd!(a).or(rd!(b)).not()),
                            MicroOp::Xnor { d, a, b } => wr!(d, rd!(a).xor(rd!(b)).not()),
                            MicroOp::Mux { d, s, a1, a0 } => {
                                wr!(d, V::select(rd!(s), rd!(a1), rd!(a0)))
                            }
                            MicroOp::BitCompare { d0, d1, a, b } => {
                                let (av, bv) = (rd!(a), rd!(b));
                                wr!(d0, av.and(bv));
                                wr!(d1, av.or(bv));
                            }
                            MicroOp::Switch2 { d0, d1, s, a, b } => {
                                let (sv, av, bv) = (rd!(s), rd!(a), rd!(b));
                                wr!(d0, V::select(sv, bv, av));
                                wr!(d1, V::select(sv, av, bv));
                            }
                            ref other => {
                                unreachable!("non-fusible op {other:?} inside a fused pair")
                            }
                        }
                    }
                }
                MicroOp::S4Chain { idx } => {
                    let ch = self.s4_chains[idx as usize];
                    let m = masks(rd!(ch.s1), rd!(ch.s0));
                    let items = &self.s4_items[ch.start as usize..(ch.start + ch.len) as usize];
                    for it in items {
                        let pm = &self.perm_sets[it.pidx as usize];
                        switch4(w, &m, &it.d, &it.ins, pm);
                    }
                }
            }
        }
    }

    /// One participant's share of a full level walk (`tid` in
    /// `0..total`). Chunks every level into `total` contiguous pieces
    /// and barriers at each level boundary.
    ///
    /// `# Safety`: caller guarantees exactly `barrier.total` participants
    /// run this concurrently with distinct `tid`s over a par-safe tape.
    unsafe fn walk_levels(&self, tid: usize, total: usize) {
        let w = self.slots.ptr();
        for &(start, end) in self.level_ranges.iter() {
            let (start, end) = (start as usize, end as usize);
            let len = end - start;
            let chunk = len.div_ceil(total);
            let lo = (start + tid * chunk).min(end);
            let hi = (lo + chunk).min(end);
            if lo < hi {
                self.exec_range(w, lo, hi);
            }
            self.barrier.wait();
        }
    }
}

/// Persistent-pool, level-parallel evaluator over a compiled tape.
///
/// Construction spawns `threads - 1` workers that sleep between runs;
/// [`ParEvaluator::run_into`] wakes them, walks the levels with the main
/// thread as participant `0`, and returns once the final level's barrier
/// resolves. Dropping the evaluator shuts the pool down.
pub struct ParEvaluator<V: Lane> {
    shared: Arc<Shared<V>>,
    prologue_len: usize,
    input_slots: Box<[u32]>,
    output_slots: Box<[u32]>,
    threads: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<V: Lane> ParEvaluator<V> {
    /// Builds the evaluator and spawns its worker pool.
    ///
    /// `threads` is clamped to at least 1 (1 = no workers, plain
    /// sequential walk — useful as a baseline). The tape must come from
    /// `compile_with(&opts.with_fuse().with_par_safe())`; see the module
    /// docs for why. Panics if the tape still carries standalone
    /// mask-reuse ops.
    pub fn new(cc: &CompiledCircuit, threads: usize) -> Self {
        for (i, op) in cc.tape().iter().enumerate() {
            if let MicroOp::Switch4 { pidx, .. } = op {
                assert_eq!(
                    pidx & REUSE_MASKS,
                    0,
                    "tape position {i}: standalone mask-reuse op — compile with \
                     CompileOptions::with_fuse().with_par_safe() before ParEvaluator::new"
                );
            }
        }
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            tape: cc.tape().into(),
            perm_sets: cc.perm_sets().into(),
            fused_pairs: cc.fused_pairs().into(),
            s4_chains: cc.s4_chains().into(),
            s4_items: cc.s4_items().into(),
            level_ranges: cc.level_ranges().into(),
            slots: SlotBuf(
                (0..cc.n_slots())
                    .map(|_| UnsafeCell::new(V::ZERO))
                    .collect(),
            ),
            epoch: Mutex::new(0),
            wake: Condvar::new(),
            barrier: SpinBarrier::new(threads),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|tid| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        {
                            let mut epoch = sh.epoch.lock().unwrap();
                            while *epoch == seen && !sh.shutdown.load(Ordering::Acquire) {
                                epoch = sh.wake.wait(epoch).unwrap();
                            }
                            if sh.shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            seen = *epoch;
                        }
                        // SAFETY: run_into wakes exactly this pool, every
                        // participant has a distinct tid, and `new`
                        // validated the tape shape.
                        unsafe { sh.walk_levels(tid, threads) };
                    }
                })
            })
            .collect();
        Self {
            shared,
            prologue_len: cc.prologue_len(),
            input_slots: cc.input_slots().into(),
            output_slots: cc.output_slots().into(),
            threads,
            workers,
        }
    }

    /// Number of pool participants (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates one wide vector set: `inputs[i]` feeds primary input
    /// `i`, `out[j]` receives primary output `j`.
    pub fn run_into(&mut self, inputs: &[V], out: &mut [V]) {
        assert_eq!(inputs.len(), self.input_slots.len(), "wrong input arity");
        assert_eq!(out.len(), self.output_slots.len(), "wrong output arity");
        let sh = &self.shared;
        // Exclusive phase: workers are asleep, `&mut self` keeps runs
        // from overlapping — the main thread owns the buffer.
        let wp = sh.slots.ptr();
        for (&s, &v) in self.input_slots.iter().zip(inputs) {
            unsafe { *wp.add(s as usize) = v };
        }
        // The prologue (constant splats) precedes the first level and is
        // cheap: run it inline before waking anyone.
        unsafe { sh.exec_range(wp, 0, self.prologue_len) };
        if self.threads > 1 {
            let mut epoch = sh.epoch.lock().unwrap();
            *epoch += 1;
            drop(epoch);
            sh.wake.notify_all();
        }
        // SAFETY: participant 0 of exactly `threads` concurrent walkers.
        unsafe { sh.walk_levels(0, self.threads) };
        // All barriers resolved: workers are back to sleep (or spinning
        // toward the lock), the buffer is ours again.
        for (o, &s) in out.iter_mut().zip(self.output_slots.iter()) {
            *o = unsafe { *wp.add(s as usize) };
        }
    }

    /// Convenience wrapper allocating the output vector.
    pub fn run(&mut self, inputs: &[V]) -> Vec<V> {
        let mut out = vec![V::ZERO; self.output_slots.len()];
        self.run_into(inputs, &mut out);
        out
    }
}

impl<V: Lane> Drop for ParEvaluator<V> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Grab the lock so no worker misses the flag between its epoch
        // check and its wait.
        drop(self.shared.epoch.lock().unwrap());
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::{CompileOptions, Evaluator};
    use absort_core::{muxmerge, prefix};

    fn par_opts() -> CompileOptions {
        CompileOptions::default().with_fuse().with_par_safe()
    }

    #[test]
    fn matches_interpreter_exhaustively_n8() {
        for circuit in [prefix::build(8), muxmerge::build(8)] {
            let cc = circuit.compile_with(&par_opts());
            let mut interp: Evaluator<'_, u64> = Evaluator::new(&circuit);
            for threads in [1usize, 2, 4] {
                let mut par: ParEvaluator<u64> = ParEvaluator::new(&cc, threads);
                let mut packed = vec![0u64; 8];
                let mut v = 0u64;
                while v < 256 {
                    packed.fill(0);
                    for lane in 0..64 {
                        let x = v + lane as u64;
                        for (i, p) in packed.iter_mut().enumerate() {
                            *p |= (x >> i & 1) << lane;
                        }
                    }
                    assert_eq!(
                        par.run(&packed),
                        interp.run(&packed),
                        "threads={threads} base={v}"
                    );
                    v += 64;
                }
            }
        }
    }

    #[test]
    fn wide_lanes_and_repeat_runs() {
        let circuit = muxmerge::build(16);
        let cc = circuit.compile_with(&par_opts());
        let mut interp: Evaluator<'_, [u64; 8]> = Evaluator::new(&circuit);
        let mut par: ParEvaluator<[u64; 8]> = ParEvaluator::new(&cc, 3);
        let mut state = 1u64;
        for _ in 0..16 {
            let inputs: Vec<[u64; 8]> = (0..16)
                .map(|_| {
                    std::array::from_fn(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state
                    })
                })
                .collect();
            assert_eq!(par.run(&inputs), interp.run(&inputs));
        }
    }

    #[test]
    #[should_panic(expected = "standalone mask-reuse")]
    fn rejects_unfused_reuse_tapes() {
        let cc = muxmerge::build(8).compile_with(&CompileOptions::default().with_par_safe());
        let _: ParEvaluator<u64> = ParEvaluator::new(&cc, 2);
    }
}
