//! Wall-clock benches for the sorting networks (experiments E4–E8):
//! construction, circuit evaluation, and functional sorting of each
//! network vs the Batcher baseline.

use absort_baselines::batcher_bits::{BatcherBinary, BatcherKind};
use absort_bench::{bench_bits, BENCH_SIZES};
use absort_core::{fish::FishSorter, muxmerge, prefix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Fig. 5 / E5: prefix sorter — circuit construction and evaluation.
fn bench_fig5_prefix(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_prefix_sorter");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("build", n), &n, |b, &n| {
            b.iter(|| prefix::build(n))
        });
        let circuit = prefix::build(n);
        let input = bench_bits(n, 1);
        g.bench_with_input(BenchmarkId::new("circuit_eval", n), &n, |b, _| {
            b.iter(|| circuit.eval(&input))
        });
        g.bench_with_input(BenchmarkId::new("functional", n), &n, |b, _| {
            b.iter(|| prefix::sort(&input))
        });
    }
    g.finish();
}

/// Fig. 6 / E6: mux-merger sorter.
fn bench_fig6_muxmerge(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_muxmerge_sorter");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("build", n), &n, |b, &n| {
            b.iter(|| muxmerge::build(n))
        });
        let circuit = muxmerge::build(n);
        let input = bench_bits(n, 2);
        g.bench_with_input(BenchmarkId::new("circuit_eval", n), &n, |b, _| {
            b.iter(|| circuit.eval(&input))
        });
        g.bench_with_input(BenchmarkId::new("functional", n), &n, |b, _| {
            b.iter(|| muxmerge::sort(&input))
        });
    }
    g.finish();
}

/// Fig. 7 / E8: fish sorter functional datapath across k.
fn bench_fig7_fish(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_fish_sorter");
    for &n in &BENCH_SIZES {
        let input = bench_bits(n, 3);
        g.throughput(Throughput::Elements(n as u64));
        for kexp in [1u32, 2, 4] {
            let k = 1usize << kexp;
            if k * k > n {
                continue;
            }
            let f = FishSorter::new(n, k);
            g.bench_with_input(BenchmarkId::new(format!("sort_k{k}"), n), &n, |b, _| {
                b.iter(|| f.sort(&input))
            });
        }
    }
    g.finish();
}

/// Fig. 4 / E4 baseline: Batcher networks applied to bits and packets.
fn bench_fig4_batcher(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_batcher_baseline");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        let oem = BatcherBinary::new(BatcherKind::OddEvenMerge, n);
        let bit = BatcherBinary::new(BatcherKind::Bitonic, n);
        let input = bench_bits(n, 4);
        g.bench_with_input(BenchmarkId::new("oem_bits", n), &n, |b, _| {
            b.iter(|| oem.sort(&input))
        });
        g.bench_with_input(BenchmarkId::new("bitonic_bits", n), &n, |b, _| {
            b.iter(|| bit.sort(&input))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig5_prefix,
    bench_fig6_muxmerge,
    bench_fig7_fish,
    bench_fig4_batcher
);
criterion_main!(benches);
