//! Wall-clock benches for the Section IV networks (experiments E11, E12,
//! E14): radix-permuter routing per sorter, Beneš looping, and
//! concentration.

use absort_bench::{bench_bits, bench_perm, BENCH_SIZES};
use absort_core::sorter::SorterKind;
use absort_networks::{benes, concentrator::Concentrator, permuter::RadixPermuter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Fig. 10 / E11 + Table II / E12: permutation routing throughput.
fn bench_fig10_permuters(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_permutation_routing");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        let perm = bench_perm(n, 7);
        let packets: Vec<(usize, u32)> = perm
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        for kind in [
            SorterKind::Fish { k: None },
            SorterKind::MuxMerger,
            SorterKind::Prefix,
        ] {
            let rp = RadixPermuter::new(kind, n);
            g.bench_with_input(
                BenchmarkId::new(format!("radix_{}", kind.name()), n),
                &n,
                |b, _| b.iter(|| rp.route(&packets).unwrap()),
            );
        }
        let payload: Vec<u32> = (0..n as u32).collect();
        g.bench_with_input(BenchmarkId::new("benes_route_apply", n), &n, |b, _| {
            b.iter(|| benes::permute(&perm, &payload).unwrap())
        });
        let routing = benes::route(&perm).unwrap();
        g.bench_with_input(BenchmarkId::new("benes_apply_only", n), &n, |b, _| {
            b.iter(|| benes::apply(&routing, &payload))
        });
    }
    g.finish();
}

/// E14: concentration throughput per sorter kind at half load.
fn bench_concentrators(c: &mut Criterion) {
    let mut g = c.benchmark_group("concentrators");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        let mask = bench_bits(n, 9);
        let requests: Vec<Option<u32>> = mask
            .iter()
            .enumerate()
            .map(|(i, &b)| b.then_some(i as u32))
            .collect();
        for kind in [
            SorterKind::Fish { k: None },
            SorterKind::MuxMerger,
            SorterKind::Prefix,
        ] {
            let conc = Concentrator::new(kind, n, n);
            g.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| conc.concentrate(&requests).unwrap())
            });
        }
    }
    g.finish();
}

/// E12 support: the cost of *computing* a Beneš routing (the set-up cost
/// Table II charges the Beneš row for).
fn bench_benes_setup(c: &mut Criterion) {
    let mut g = c.benchmark_group("benes_setup");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        let perm = bench_perm(n, 13);
        g.bench_with_input(BenchmarkId::new("looping_route", n), &n, |b, _| {
            b.iter(|| benes::route(&perm).unwrap())
        });
    }
    g.finish();
}

/// EXT1: word sorting throughput (w stable binary passes + permuter).
fn bench_word_sorter(c: &mut Criterion) {
    use absort_networks::word_sorter::WordSorter;
    let mut g = c.benchmark_group("word_sorter");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        let items: Vec<(u64, u32)> = bench_perm(n, 17)
            .into_iter()
            .enumerate()
            .map(|(i, v)| ((v as u64) & 0xFFFF, i as u32))
            .collect();
        for (kind, label) in [
            (SorterKind::Fish { k: None }, "fish"),
            (SorterKind::MuxMerger, "muxmerge"),
        ] {
            let ws = WordSorter::new(kind, n, 16);
            g.bench_with_input(BenchmarkId::new(format!("w16_{label}"), n), &n, |b, _| {
                b.iter(|| ws.sort(&items).unwrap())
            });
        }
    }
    g.finish();
}

/// Sparse routing (concentrate + permute) at half load.
fn bench_sparse_router(c: &mut Criterion) {
    use absort_networks::sparse_router::SparseRouter;
    let mut g = c.benchmark_group("sparse_router");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        let mask = bench_bits(n, 23);
        let dests = bench_perm(n, 29);
        let inputs: Vec<Option<(usize, u64)>> = (0..n)
            .map(|i| mask[i].then_some((dests[i], i as u64)))
            .collect();
        let router = SparseRouter::new(SorterKind::Fish { k: None }, n);
        g.bench_with_input(BenchmarkId::new("fish_half_load", n), &n, |b, _| {
            b.iter(|| router.route(&inputs).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig10_permuters,
    bench_concentrators,
    bench_benes_setup,
    bench_word_sorter,
    bench_sparse_router
);
criterion_main!(benches);
