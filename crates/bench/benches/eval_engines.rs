//! Substrate throughput: the enum-dispatch interpreter vs the compiled
//! register-allocated micro-op tape, each through the scalar, 64-lane
//! bit-parallel, and crossbeam-parallel batch paths — the engines behind
//! the exhaustive verifiers and fault campaigns.
//!
//! Function names are digit-free (`interp_lanes`, `compiled_lanes`, …)
//! so the shim's substring filter can select a size by its parameter:
//! `cargo bench --bench eval_engines -- compiled_lanes/256`.

use absort_bench::bench_bits;
use absort_circuit::eval::pack_lanes;
use absort_circuit::{CompiledEvaluator, Evaluator};
use absort_core::muxmerge;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_eval_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval_engines");
    for n in [64usize, 256, 1024] {
        let circuit = muxmerge::build(n);
        let compiled = circuit.compile();
        let vectors: Vec<Vec<bool>> = (0..256).map(|s| bench_bits(n, s as u64)).collect();
        // Pre-packed 64-lane groups: the raw engine measurement, without
        // the bool<->lane conversion the batch API performs.
        let groups: Vec<Vec<u64>> = vectors.chunks(64).map(|ch| pack_lanes(ch, n)).collect();
        g.throughput(Throughput::Elements((vectors.len() * n) as u64));

        // scalar: one vector at a time (256 passes)
        g.bench_function(BenchmarkId::new("interp_scalar", n), |b| {
            let mut ev: Evaluator<'_, bool> = Evaluator::new(&circuit);
            let mut out = vec![false; n];
            b.iter(|| {
                let mut acc = 0usize;
                for v in &vectors {
                    ev.run_into(v, &mut out);
                    acc += out[0] as usize;
                }
                acc
            })
        });
        g.bench_function(BenchmarkId::new("compiled_scalar", n), |b| {
            let mut ev: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(&compiled);
            let mut out = vec![false; n];
            b.iter(|| {
                let mut acc = 0usize;
                for v in &vectors {
                    ev.run_into(v, &mut out);
                    acc += out[0] as usize;
                }
                acc
            })
        });

        // 64-lane packed (4 pre-packed passes, single thread)
        g.bench_function(BenchmarkId::new("interp_lanes", n), |b| {
            let mut ev: Evaluator<'_, u64> = Evaluator::new(&circuit);
            let mut out = vec![0u64; n];
            b.iter(|| {
                let mut acc = 0u64;
                for gp in &groups {
                    ev.run_into(gp, &mut out);
                    acc ^= out[0];
                }
                acc
            })
        });
        g.bench_function(BenchmarkId::new("compiled_lanes", n), |b| {
            let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&compiled);
            let mut out = vec![0u64; n];
            b.iter(|| {
                let mut acc = 0u64;
                for gp in &groups {
                    ev.run_into(gp, &mut out);
                    acc ^= out[0];
                }
                acc
            })
        });

        // batch API across threads (includes bool<->lane packing;
        // strided group assignment)
        for threads in [2usize, 4, 8] {
            g.bench_function(BenchmarkId::new(format!("interp_par{threads}t"), n), |b| {
                b.iter(|| circuit.eval_batch_parallel(&vectors, threads))
            });
            g.bench_function(
                BenchmarkId::new(format!("compiled_par{threads}t"), n),
                |b| b.iter(|| compiled.eval_batch_parallel(&vectors, threads)),
            );
        }
    }
    g.finish();
}

fn bench_compile_lower(c: &mut Criterion) {
    // One-time lowering cost: netlist -> levelized, register-allocated
    // micro-op tape. Amortized over every subsequent evaluation pass.
    let mut g = c.benchmark_group("compile_lower");
    for n in [64usize, 256, 1024] {
        let circuit = muxmerge::build(n);
        g.throughput(Throughput::Elements(circuit.n_components() as u64));
        g.bench_with_input(BenchmarkId::new("lower", n), &circuit, |b, circuit| {
            b.iter(|| circuit.compile())
        });
    }
    g.finish();
}

fn bench_pipelined_streaming(c: &mut Criterion) {
    use absort_circuit::pipeline::Pipelined;
    let mut g = c.benchmark_group("pipelined_streaming");
    let n = 256usize;
    let circuit = muxmerge::build(n);
    let pipe = Pipelined::new(&circuit);
    let groups: Vec<Vec<bool>> = (0..32).map(|s| bench_bits(n, 1000 + s as u64)).collect();
    g.throughput(Throughput::Elements((groups.len() * n) as u64));
    g.bench_function(BenchmarkId::new("gate_level_pipeline_32_groups", n), |b| {
        b.iter(|| pipe.simulate(&groups))
    });
    g.bench_function(BenchmarkId::new("combinational_32_groups", n), |b| {
        b.iter(|| {
            let mut ev: Evaluator<'_, bool> = Evaluator::new(&circuit);
            let mut out = vec![false; n];
            for v in &groups {
                ev.run_into(v, &mut out);
            }
            out[0]
        })
    });
    g.finish();
}

fn bench_build_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("circuit_construction");
    for k in [8u32, 10, 12] {
        let n = 1usize << k;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("muxmerge_build", n), &n, |b, &n| {
            b.iter(|| muxmerge::build(n))
        });
        let circuit = muxmerge::build(n);
        g.bench_with_input(BenchmarkId::new("depth_analysis", n), &n, |b, _| {
            b.iter(|| circuit.depth())
        });
        g.bench_with_input(BenchmarkId::new("cost_analysis", n), &n, |b, _| {
            b.iter(|| circuit.cost())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_eval_engines,
    bench_compile_lower,
    bench_pipelined_streaming,
    bench_build_scaling
);
criterion_main!(benches);
