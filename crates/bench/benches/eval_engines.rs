//! Substrate throughput: scalar vs 64-lane bit-parallel vs
//! crossbeam-parallel batch evaluation of the constructed sorter
//! circuits — the engines behind the exhaustive verifiers.

use absort_bench::bench_bits;
use absort_circuit::Evaluator;
use absort_core::muxmerge;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_eval_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval_engines");
    let n = 1024usize;
    let circuit = muxmerge::build(n);
    let vectors: Vec<Vec<bool>> = (0..256).map(|s| bench_bits(n, s as u64)).collect();

    // scalar: one vector at a time (256 passes)
    g.throughput(Throughput::Elements((vectors.len() * n) as u64));
    g.bench_function(BenchmarkId::new("scalar_256_vectors", n), |b| {
        b.iter(|| {
            let mut ev: Evaluator<'_, bool> = Evaluator::new(&circuit);
            let mut acc = 0usize;
            for v in &vectors {
                let mut out = vec![false; n];
                ev.run_into(v, &mut out);
                acc += out[0] as usize;
            }
            acc
        })
    });

    // 64-lane packed (4 passes)
    g.bench_function(BenchmarkId::new("lanes64_256_vectors", n), |b| {
        b.iter(|| circuit.eval_batch_parallel(&vectors, 1))
    });

    // parallel batch across threads
    for threads in [2usize, 4, 8] {
        g.bench_function(
            BenchmarkId::new(format!("parallel_{threads}t_256_vectors"), n),
            |b| b.iter(|| circuit.eval_batch_parallel(&vectors, threads)),
        );
    }
    g.finish();
}

fn bench_pipelined_streaming(c: &mut Criterion) {
    use absort_circuit::pipeline::Pipelined;
    let mut g = c.benchmark_group("pipelined_streaming");
    let n = 256usize;
    let circuit = muxmerge::build(n);
    let pipe = Pipelined::new(&circuit);
    let groups: Vec<Vec<bool>> = (0..32).map(|s| bench_bits(n, 1000 + s as u64)).collect();
    g.throughput(Throughput::Elements((groups.len() * n) as u64));
    g.bench_function(BenchmarkId::new("gate_level_pipeline_32_groups", n), |b| {
        b.iter(|| pipe.simulate(&groups))
    });
    g.bench_function(BenchmarkId::new("combinational_32_groups", n), |b| {
        b.iter(|| {
            let mut ev: Evaluator<'_, bool> = Evaluator::new(&circuit);
            let mut out = vec![false; n];
            for v in &groups {
                ev.run_into(v, &mut out);
            }
            out[0]
        })
    });
    g.finish();
}

fn bench_build_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("circuit_construction");
    for k in [8u32, 10, 12] {
        let n = 1usize << k;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("muxmerge_build", n), &n, |b, &n| {
            b.iter(|| muxmerge::build(n))
        });
        let circuit = muxmerge::build(n);
        g.bench_with_input(BenchmarkId::new("depth_analysis", n), &n, |b, _| {
            b.iter(|| circuit.depth())
        });
        g.bench_with_input(BenchmarkId::new("cost_analysis", n), &n, |b, _| {
            b.iter(|| circuit.cost())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_eval_engines,
    bench_pipelined_streaming,
    bench_build_scaling
);
criterion_main!(benches);
