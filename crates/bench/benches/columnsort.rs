//! E13: the fish sorter vs Leighton's columnsort — wall-clock of the two
//! O(n)-cost schemes' functional datapaths, plus the pure algorithm on
//! word data.

use absort_baselines::columnsort::{columnsort, Geometry};
use absort_bench::{bench_bits, BENCH_SIZES};
use absort_core::fish::FishSorter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn valid_geometry(n: usize) -> Geometry {
    // largest s with r = n/s, s | r and r >= 2(s-1)^2
    let mut best = Geometry::new(n, 1);
    let mut s = 1usize;
    while s * s <= n {
        if n % s == 0 {
            let r = n / s;
            if r % s == 0 && r >= 2 * (s - 1) * (s - 1) {
                best = Geometry::new(r, s);
            }
        }
        s *= 2;
    }
    best
}

fn bench_columnsort_vs_fish(c: &mut Criterion) {
    let mut g = c.benchmark_group("columnsort_vs_fish");
    for &n in &BENCH_SIZES {
        g.throughput(Throughput::Elements(n as u64));
        let bits = bench_bits(n, 21);
        let geom = valid_geometry(n);
        g.bench_with_input(
            BenchmarkId::new(format!("columnsort_r{}s{}", geom.r, geom.s), n),
            &n,
            |b, _| b.iter(|| columnsort(&bits, geom)),
        );
        let fish = FishSorter::with_default_k(n);
        g.bench_with_input(BenchmarkId::new("fish_sort", n), &n, |b, _| {
            b.iter(|| fish.sort(&bits))
        });
        // word data through columnsort (the algorithm is general)
        let words: Vec<u64> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as u64) ^ (u64::from(b) << 40))
            .collect();
        g.bench_with_input(BenchmarkId::new("columnsort_words", n), &n, |b, _| {
            b.iter(|| columnsort(&words, geom))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_columnsort_vs_fish);
criterion_main!(benches);
