//! # absort-bench — benchmark harness and experiment reproduction binary
//!
//! * Criterion benches (`cargo bench`): wall-clock throughput of every
//!   construction — `sorters` (Figs. 4–7 / E4–E8), `networks` (Fig. 10,
//!   Table II, concentrators / E11–E14), `columnsort` (E13), and
//!   `eval_engines` (the substrate's scalar / 64-lane / parallel
//!   evaluators).
//! * The `repro` binary regenerates every table and figure of the paper:
//!   `cargo run -p absort-bench --bin repro -- all` (or a single
//!   experiment id — see `repro --help`).

#![forbid(unsafe_code)]

/// Standard input sizes used across the wall-clock benches.
pub const BENCH_SIZES: [usize; 3] = [256, 1024, 4096];

/// Deterministic pseudo-random bit vector for benches (splitmix64).
pub fn bench_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut state = seed;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        out.push((z ^ (z >> 31)) & 1 == 1);
    }
    out
}

/// Deterministic pseudo-random permutation for benches.
pub fn bench_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let j = ((z ^ (z >> 31)) as usize) % (i + 1);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bits_deterministic() {
        assert_eq!(bench_bits(64, 1), bench_bits(64, 1));
        assert_ne!(bench_bits(64, 1), bench_bits(64, 2));
    }

    #[test]
    fn bench_perm_is_permutation() {
        let p = bench_perm(100, 3);
        let mut q = p.clone();
        q.sort_unstable();
        assert_eq!(q, (0..100).collect::<Vec<_>>());
    }
}
