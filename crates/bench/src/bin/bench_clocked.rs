//! `bench_clocked` — sustained-throughput numbers for the clocked Model B
//! streamer under multi-tenant load.
//!
//! The time-multiplexed fish sorter shares one `n/k`-input merger across
//! `k` cycles; [`absort_networks::hardened::StreamingSorter::stream_tenants`]
//! round-robins many independent in-flight sorts through that one
//! machine. This benchmark streams a fixed workload of schedules through
//! the hardened streamer at several tenancy levels and reports sustained
//! throughput (schedules/s and machine cycles/s), next to the bare
//! (checker-free) machine at tenancy 1 so the hardening tax on the
//! clocked path is priced in the same file. Results are written as JSON
//! (default `BENCH_clocked.json`); each headline number is the minimum
//! over `--reps` samples with a min/median/max spread alongside.
//!
//! Usage:
//!   cargo run --release -p absort-bench --bin bench_clocked -- \
//!       [--quick] [--reps N] [--out BENCH_clocked.json]
//!
//! `--quick` restricts to n = 16 (CI smoke); the default sweep is
//! n ∈ {16, 64, 256}.

use std::hint::black_box;
use std::time::Instant;

use absort_analysis::faults::fish_k;
use absort_bench::bench_bits;
use absort_networks::hardened::{streaming_sorter, HardenOptions, StreamingSorter};

/// Schedules streamed per measurement pass.
const WORKLOAD: usize = 64;

/// Min/median/max wall-clock seconds per pass over `--reps` samples.
#[derive(Clone, Copy)]
struct Sample {
    min: f64,
    median: f64,
    max: f64,
}

fn sample<R>(reps: usize, mut f: impl FnMut() -> R) -> Sample {
    let mut secs: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    Sample {
        min: secs[0],
        median: secs[secs.len() / 2],
        max: secs[secs.len() - 1],
    }
}

fn ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

/// Streams the whole workload through `s`, `tenants` schedules per
/// machine occupancy, and returns how many rail events fired (zero on a
/// fault-free machine — the return value only keeps the work observable).
fn stream_workload(s: &StreamingSorter, vectors: &[Vec<bool>], tenants: usize) -> usize {
    let mut rails = 0usize;
    for batch in vectors.chunks(tenants) {
        for (_, rail) in s.stream_tenants(batch) {
            rails += usize::from(rail);
        }
    }
    rails
}

fn tenancy_row(s: &StreamingSorter, vectors: &[Vec<bool>], tenants: usize, reps: usize) -> String {
    let sp = sample(reps, || stream_workload(s, vectors, tenants));
    let cycles = (vectors.len() * s.k) as f64;
    let schedules_per_s = vectors.len() as f64 / sp.min;
    let cycles_per_s = cycles / sp.min;
    eprintln!(
        "  tenants={tenants}: {} ms / {} schedules  ({:.0} schedules/s, {:.0} cycles/s)",
        ms(sp.min),
        vectors.len(),
        schedules_per_s,
        cycles_per_s,
    );
    format!(
        concat!(
            "        {{\n",
            "          \"tenants\": {tenants},\n",
            "          \"sustained_ms\": {min},\n",
            "          \"schedules_per_sec\": {sps:.1},\n",
            "          \"cycles_per_sec\": {cps:.1},\n",
            "          \"spread\": {{ \"min\": {min}, \"median\": {med}, \"max\": {max} }}\n",
            "        }}"
        ),
        tenants = tenants,
        min = ms(sp.min),
        med = ms(sp.median),
        max = ms(sp.max),
        sps = schedules_per_s,
        cps = cycles_per_s,
    )
}

fn size_row(n: usize, reps: usize) -> String {
    let k = fish_k(n);
    let hardened = streaming_sorter(n, k, Some(&HardenOptions::default()));
    let bare = streaming_sorter(n, k, None);
    let vectors: Vec<Vec<bool>> = (0..WORKLOAD).map(|s| bench_bits(n, s as u64)).collect();

    // Fault-free sanity before timing: the hardened rail must stay quiet
    // over the whole workload at the deepest tenancy swept.
    assert_eq!(
        stream_workload(&hardened, &vectors, 8),
        0,
        "hardened streamer raised its rail on a fault-free workload"
    );

    eprintln!(
        "n={n} k={k}: hardened core {} units (bare {}), {} state bits",
        hardened.machine.comb().cost().total,
        bare.machine.comb().cost().total,
        hardened.machine.n_state(),
    );
    let rows: Vec<String> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| tenancy_row(&hardened, &vectors, t, reps))
        .collect();
    let bare_solo = sample(reps, || stream_workload(&bare, &vectors, 1));

    format!(
        concat!(
            "    {{\n",
            "      \"n\": {n},\n",
            "      \"k\": {k},\n",
            "      \"hardened_cost\": {hc},\n",
            "      \"bare_cost\": {bc},\n",
            "      \"state_bits\": {sb},\n",
            "      \"bare_solo_ms\": {bs},\n",
            "      \"tenancies\": [\n{rows}\n      ]\n",
            "    }}"
        ),
        n = n,
        k = k,
        hc = hardened.machine.comb().cost().total,
        bc = bare.machine.comb().cost().total,
        sb = hardened.machine.n_state(),
        bs = ms(bare_solo.min),
        rows = rows.join(",\n"),
    )
}

fn main() {
    let mut out_path = String::from("BENCH_clocked.json");
    let mut quick = false;
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            "--reps" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r >= 1 => reps = r,
                _ => {
                    eprintln!("error: --reps requires an integer >= 1");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: bench_clocked [--quick] [--reps N] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let sizes: &[usize] = if quick { &[16] } else { &[16, 64, 256] };
    let rows: Vec<String> = sizes.iter().map(|&n| size_row(n, reps)).collect();

    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"absort-bench-clocked/v1\",\n",
            "  \"network\": \"fish-clocked\",\n",
            "  \"reps\": {reps},\n",
            "  \"workload_schedules\": {workload},\n",
            "  \"sizes\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        reps = reps,
        workload = WORKLOAD,
        rows = rows.join(",\n"),
    );

    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
