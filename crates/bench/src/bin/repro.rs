//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!   cargo run --release -p absort-bench --bin repro -- <experiment|all>
//!
//! Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!              table1 table2 columnsort concentrators crossover
//!
//! With `--metrics` (or `--metrics-out <path>`), every phase runs inside
//! a telemetry span; a profiler-style report goes to stderr and a JSON
//! run manifest is written under `results/metrics/` (or to the given
//! path). See README "Observability".

use absort_analysis::{ablations, concentrators, crossover, sweeps, table, table2, traces};
use absort_baselines::columnsort::{ColumnsortModel, Geometry};
use absort_core::fish::schedule;
use absort_core::sorter::SorterKind;
use absort_core::{muxmerge, prefix, table1, FishSorter};
use absort_networks::{benes, permuter::RadixPermuter};

fn heading(s: &str) {
    println!("\n================================================================");
    println!("{s}");
    println!("================================================================");
}

fn fig1() {
    heading("E1 / Fig. 1 — four-input sorting network");
    let net = absort_cmpnet::catalog::fig1();
    println!("{}", absort_cmpnet::draw::draw(&net));
    println!("cost = {} comparators (paper: 5)", net.cost());
    println!("depth = {} (paper: 3)", net.depth());
    println!(
        "exhaustive 0-1 verification over all 16 inputs: {}",
        if absort_cmpnet::verify::is_sorting_network(&net) {
            "sorts"
        } else {
            "FAILS"
        }
    );
}

fn fig2() {
    heading("E2 / Fig. 2 — two-way and four-way swappers");
    use absort_blocks::swap;
    use absort_circuit::Builder;
    for n in [16usize, 64, 256] {
        let mut b = Builder::new();
        let ctrl = b.input();
        let ins = b.input_bus(n);
        let outs = swap::two_way_swapper(&mut b, ctrl, &ins);
        b.outputs(&outs);
        let c2 = b.finish();

        let mut b = Builder::new();
        let s1 = b.input();
        let s0 = b.input();
        let ins = b.input_bus(n);
        let outs = swap::four_way_swapper(&mut b, s1, s0, &ins, [[0, 1, 2, 3]; 4]);
        b.outputs(&outs);
        let c4 = b.finish();
        println!(
            "n={n:>4}: two-way cost {:>4} depth {} (paper n/2={}, 1) | four-way cost {:>4} depth {} (paper n={n}, 1)",
            c2.cost().total,
            c2.depth(),
            n / 2,
            c4.cost().total,
            c4.depth()
        );
    }
}

fn fig3() {
    heading("E3 / Fig. 3 — (16,4)-multiplexer and (4,16)-demultiplexer");
    use absort_blocks::{demux::group_demultiplexer, mux::group_multiplexer};
    use absort_circuit::Builder;
    let mut b = Builder::new();
    let sel = b.input_bus(2);
    let ins = b.input_bus(16);
    let outs = group_multiplexer(&mut b, &sel, &ins, 4);
    b.outputs(&outs);
    let c = b.finish();
    println!(
        "(16,4)-multiplexer:   cost {} depth {} (paper: ~16 [exact n−k=12], lg(n/k)=2)",
        c.cost().total,
        c.depth()
    );
    let mut b = Builder::new();
    let sel = b.input_bus(2);
    let ins = b.input_bus(4);
    let outs = group_demultiplexer(&mut b, &sel, &ins, 16);
    b.outputs(&outs);
    let c = b.finish();
    println!(
        "(4,16)-demultiplexer: cost {} depth {} (paper: ~16 [exact n−k=12], lg(n/k)=2)",
        c.cost().total,
        c.depth()
    );
}

fn fig4() {
    heading("E4 / Fig. 4 — Batcher OEM vs alternative OEM (balanced merge)");
    use absort_cmpnet::{batcher, fig4, verify};
    println!("Fig. 4(a): Batcher odd-even merge sort, n = 8:");
    println!(
        "{}",
        absort_cmpnet::draw::draw(&batcher::odd_even_merge_sort(8))
    );
    println!("Fig. 4(b): the alternative (balanced merge) construction, n = 8:");
    println!("{}", absort_cmpnet::draw::draw(&fig4::fig4b_sort(8)));
    let mut t = table::Table::new([
        "n",
        "Batcher cost",
        "Batcher depth",
        "Fig4(b) cost",
        "Fig4(b) depth",
        "both sort (0-1)",
    ]);
    for k in 2..=10u32 {
        let n = 1usize << k;
        let a = batcher::odd_even_merge_sort(n);
        let b = fig4::fig4b_sort(n);
        let verified = if n <= 16 {
            let ok = verify::is_sorting_network(&a) && verify::is_sorting_network(&b);
            if ok {
                "yes (exhaustive)"
            } else {
                "NO"
            }
        } else {
            "(n>16: see tests)"
        };
        t.row([
            n.to_string(),
            a.cost().to_string(),
            a.depth().to_string(),
            b.cost().to_string(),
            b.depth().to_string(),
            verified.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn fig5() {
    heading("E5 / Fig. 5 — prefix binary sorter (Network 1)");
    println!(
        "{}",
        sweeps::render_sorter_sweep(&sweeps::prefix_sweep(16, 12), "3n lg n")
    );
    println!("(formula column is the paper's dominant term 3n lg n; the built");
    println!(" circuit adds a Θ(n) adder-tree term and stays within ±12n of it.)\n");
    println!("{}", traces::fig5_trace());
    println!("scope profile of the built 256-input instance:");
    println!("{}", prefix::build(256).scope_report(2));
}

fn fig6() {
    heading("E6 / Fig. 6 — mux-merger binary sorter (Network 2)");
    println!(
        "{}",
        sweeps::render_sorter_sweep(&sweeps::muxmerge_sweep(16, 12), "4n lg n - Θ(n) exact")
    );
    println!("(built circuit matches the exact recurrence bit-for-bit.)");
}

fn charts() {
    heading("ASCII figures — cost, depth, and sorting-time shapes");
    println!(
        "{}",
        absort_analysis::figures::sorter_cost_figure(&[10, 12, 14, 16, 18, 20, 22])
    );
    println!(
        "{}",
        absort_analysis::figures::sorter_depth_figure(&[8, 10, 12, 14, 16, 18, 20])
    );
    println!(
        "{}",
        absort_analysis::figures::sorting_time_figure(&[12, 14, 16, 18, 20, 22, 24])
    );
}

fn fig7() {
    heading("E8 / Fig. 7 — fish binary sorter (Network 3, Model B)");
    println!("sweep over n at k = lg n:");
    println!(
        "{}",
        sweeps::render_fish_sweep(&sweeps::fish_sweep(&[10, 12, 14, 16, 18, 20, 22]))
    );
    println!("sweep over k at n = 2^16 (paper's minimisation, eqs. 19-21):");
    println!(
        "{}",
        sweeps::render_fish_sweep(&sweeps::fish_k_sweep(1 << 16))
    );
    println!("headline comparison (bit-level cost):");
    println!(
        "{}",
        sweeps::cost_comparison(&[10, 12, 14, 16, 18, 20]).render()
    );
}

fn fig8() {
    heading("E9 / Fig. 8 — 16-input 4-way mux-merger trace");
    println!("{}", traces::fig8_trace());
}

fn fig9() {
    heading("E10 / Fig. 9 — 8-input 4-way clean sorter trace");
    println!("{}", traces::fig9_trace());
}

fn fig10() {
    heading("E11 / Fig. 10 — radix permuter from binary sorters");
    let mut t = table::Table::new([
        "n",
        "sorter",
        "bit cost",
        "perm time",
        "switched",
        "verified",
    ]);
    for a in [8u32, 10, 12, 14] {
        let n = 1usize << a;
        for kind in [
            SorterKind::Fish { k: None },
            SorterKind::MuxMerger,
            SorterKind::Prefix,
        ] {
            let rp = RadixPermuter::new(kind, n);
            let perm = absort_bench::bench_perm(n, 11);
            let packets: Vec<(usize, usize)> =
                perm.iter().enumerate().map(|(i, &d)| (d, i)).collect();
            let out = rp.route(&packets).expect("route");
            let ok = out.iter().enumerate().all(|(slot, &src)| perm[src] == slot);
            t.row([
                format!("2^{a}"),
                kind.name().to_string(),
                rp.cost().to_string(),
                rp.time().to_string(),
                if rp.is_packet_switched() {
                    "packet"
                } else {
                    "circuit"
                }
                .to_string(),
                if ok { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    println!("{}", t.render());
    println!("gate-level instance (addresses carried in-band as wire bundles):");
    use absort_networks::permuter_circuit::PermuterCircuit;
    let mut t = table::Table::new(["n", "payload bits", "built cost", "built depth", "verified"]);
    for (n, p) in [(16usize, 8usize), (32, 8), (64, 8)] {
        let pc = PermuterCircuit::build(n, p);
        let perm = absort_bench::bench_perm(n, 31);
        let packets: Vec<(usize, u64)> = perm
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u64))
            .collect();
        let out = pc.route(&packets);
        let ok = perm.iter().enumerate().all(|(i, &d)| out[d] == i as u64);
        t.row([
            n.to_string(),
            p.to_string(),
            pc.cost().to_string(),
            pc.depth().to_string(),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn table1_report() {
    heading("E7 / Table I — behaviour of the mux-merger");
    println!("{}", table1::render());
    for n in [8usize, 16, 32] {
        let v = table1::verify(n);
        println!(
            "exhaustive verification over all {} bisorted sequences at n={n}: {}",
            (n / 2 + 1) * (n / 2 + 1),
            if v.is_empty() {
                "all rows hold"
            } else {
                "VIOLATIONS"
            }
        );
    }
}

fn table2_report() {
    heading("E12 / Table II — permutation network complexities (bit level)");
    for a in [12u32, 16, 20] {
        println!("{}", table2::render(1usize << a));
        match table2::verify_claims(1usize << a) {
            Ok(()) => println!(
                "paper claim holds at n=2^{a}: fish-based permuter has the smallest cost\n"
            ),
            Err(e) => println!("CLAIM VIOLATION at n=2^{a}: {e}\n"),
        }
    }
}

fn columnsort_report() {
    heading("E13 / Section III.C — fish sorter vs time-multiplexed columnsort");
    let mut t = table::Table::new([
        "n",
        "fish cost",
        "colsort cost",
        "fish T",
        "colsort T",
        "fish Tpip",
        "colsort Tpip",
        "pipelines (fish/colsort)",
    ]);
    for a in [12u32, 16, 20, 24] {
        let n = 1usize << a;
        let f = FishSorter::with_default_k(n);
        let cs = ColumnsortModel {
            g: Geometry::paper_params(n),
        };
        t.row([
            format!("2^{a}"),
            absort_core::fish::formulas::total_cost_exact(n, f.k).to_string(),
            cs.cost().to_string(),
            schedule::sorting_time(n, f.k, false).to_string(),
            cs.time(false).to_string(),
            schedule::sorting_time(n, f.k, true).to_string(),
            cs.time(true).to_string(),
            format!("1 / {}", cs.pipelines_required()),
        ]);
    }
    println!("{}", t.render());
    println!("shape check: both O(n) cost; unpipelined fish O(lg^3) beats colsort O(lg^4);");
    println!("pipelined both O(lg^2), but colsort needs 4 separately pipelined sorters.");
}

fn concentrators_report() {
    heading("E14 / Section IV — concentrator comparison");
    for a in [12u32, 16] {
        println!("{}", concentrators::render(1usize << a));
    }
}

fn wordsort_report() {
    heading("Extension — stable word sorting from binary passes (Section I's decomposition)");
    use absort_networks::word_sorter::WordSorter;
    let mut t = table::Table::new(["n", "key bits", "sorter", "bit cost", "time", "verified"]);
    for (n, w) in [(256usize, 16u32), (1024, 32)] {
        for kind in [SorterKind::Fish { k: None }, SorterKind::MuxMerger] {
            let ws = WordSorter::new(kind, n, w);
            let items: Vec<(u64, usize)> = (0..n)
                .map(|i| {
                    let z = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> (64 - w);
                    (z, i)
                })
                .collect();
            let out = ws.sort(&items).expect("sortable");
            let ok = out.windows(2).all(|p| p[0].0 <= p[1].0);
            t.row([
                n.to_string(),
                w.to_string(),
                kind.name().to_string(),
                ws.cost().to_string(),
                ws.time().to_string(),
                if ok { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    println!("{}", t.render());
    println!("w stable binary-split passes + the Fig. 10 permuter sort w-bit words;");
    println!("cost Θ(w·n lg n) with the fish-based permuter.");
}

fn ablations_report() {
    heading("E16-E18 — design-choice ablations (measured on built circuits)");
    println!("{}", ablations::render_all());
}

fn checklist_report() {
    heading("Master checklist — every quantitative claim, re-derived now");
    let (table, all) = absort_analysis::checklist::render();
    println!("{table}");
    println!(
        "{}",
        if all {
            "ALL CLAIMS HOLD."
        } else {
            "SOME CLAIMS FAILED — see rows marked ✗."
        }
    );
    if !all {
        std::process::exit(1);
    }
}

fn dot_report() {
    heading("DOT export — the 16-input instances of Figs. 5 and 6");
    let pre = prefix::build(16);
    let mux = muxmerge::build(16);
    println!(
        "// prefix sorter: {} components; mux-merger sorter: {} components",
        pre.n_components(),
        mux.n_components()
    );
    println!("// pipe either graph into `dot -Tsvg` to render the figure");
    println!("{}", absort_circuit::dot::to_dot(&mux, "fig6-muxmerge-16"));
    println!("// scope profile of the 256-input prefix sorter (Fig. 5 structure):");
    println!("{}", prefix::build(256).scope_report(3));
}

fn crossover_report() {
    heading("E15 — AKS crossover and the constants audit");
    println!("{}", crossover::render(20_000));
    println!("constants audit (paper Section V: all constants <= 17):");
    for (name, v) in crossover::constants_audit() {
        println!("  {name} = {v:.2}");
    }
}

/// Writes the main experiment series as CSV files into `dir` (for
/// downstream plotting): sweeps, the headline comparison, Table II, the
/// concentrator comparison, and the ablations.
fn write_csvs(dir: &str) -> std::io::Result<()> {
    use std::fs;
    fs::create_dir_all(dir)?;
    let write = |name: &str, contents: String| -> std::io::Result<()> {
        let path = format!("{dir}/{name}");
        fs::write(&path, contents)?;
        println!("wrote {path}");
        Ok(())
    };

    let sweep_table = |pts: &[sweeps::SorterPoint]| {
        let mut t = table::Table::new([
            "n",
            "measured_cost",
            "formula_cost",
            "measured_depth",
            "formula_depth",
        ]);
        for p in pts {
            t.row([
                p.n.to_string(),
                p.measured_cost.map_or(String::new(), |v| v.to_string()),
                p.formula_cost.to_string(),
                p.measured_depth.map_or(String::new(), |v| v.to_string()),
                p.formula_depth.to_string(),
            ]);
        }
        t.to_csv()
    };
    let (pre, mux, na) = sweeps::all_sorter_sweeps_parallel(16, 12);
    write("e5_prefix_sweep.csv", sweep_table(&pre))?;
    write("e6_muxmerge_sweep.csv", sweep_table(&mux))?;
    write("e17_nonadaptive_sweep.csv", sweep_table(&na))?;

    let mut fish = table::Table::new([
        "n",
        "k",
        "cost_exact",
        "cost_paper",
        "cost_per_input",
        "t_serial",
        "t_pipelined",
    ]);
    for p in sweeps::fish_sweep(&[10, 12, 14, 16, 18, 20, 22]) {
        fish.row([
            p.n.to_string(),
            p.k.to_string(),
            p.cost_exact.to_string(),
            p.cost_paper.to_string(),
            format!("{:.2}", p.cost_per_input),
            p.time_serial.to_string(),
            p.time_pipelined.to_string(),
        ]);
    }
    write("e8_fish_sweep.csv", fish.to_csv())?;
    write(
        "headline_cost_comparison.csv",
        sweeps::cost_comparison(&[10, 12, 14, 16, 18, 20, 22]).to_csv(),
    )?;

    for a in [12u32, 16, 20] {
        let mut t = table::Table::new(["construction", "cost", "time", "provenance"]);
        for r in table2::rows(1usize << a) {
            t.row([
                r.name.to_string(),
                r.cost.to_string(),
                r.time.to_string(),
                format!("{:?}", r.provenance),
            ]);
        }
        write(&format!("e12_table2_n2e{a}.csv"), t.to_csv())?;
    }

    let mut conc = table::Table::new(["construction", "cost", "time", "measured"]);
    for r in concentrators::rows(1 << 16) {
        conc.row([
            r.name.to_string(),
            r.cost.to_string(),
            r.time.map_or(String::new(), |v| v.to_string()),
            r.measured.to_string(),
        ]);
    }
    write("e14_concentrators_n2e16.csv", conc.to_csv())?;

    write(
        "e16_adder_ablation.csv",
        ablations::adder_ablation(&[6, 8, 10, 12]).to_csv(),
    )?;
    write(
        "e17_adaptivity_ablation.csv",
        ablations::adaptivity_ablation(&[6, 10, 14, 18, 22]).to_csv(),
    )?;
    write(
        "e18_dispatch_ablation.csv",
        ablations::dispatch_ablation_table(&[(64, 4), (256, 8), (1024, 16)]).to_csv(),
    )?;
    Ok(())
}

fn sanity() {
    // quick global cross-check before printing anything
    let bits = absort_bench::bench_bits(1 << 10, 5);
    let oracle = absort_core::lang::sorted_oracle(&bits);
    assert_eq!(prefix::sort(&bits), oracle);
    assert_eq!(muxmerge::sort(&bits), oracle);
    assert_eq!(FishSorter::with_default_k(bits.len()).sort(&bits), oracle);
    let perm = absort_bench::bench_perm(64, 2);
    let payload: Vec<u32> = (0..64).collect();
    let out = benes::permute(&perm, &payload).unwrap();
    for (i, &d) in perm.iter().enumerate() {
        assert_eq!(out[d], payload[i]);
    }
    // Circuit-level cross-check: exercises every evaluation engine once
    // (scalar, packed, batch), so a metrics run always carries build and
    // eval counters regardless of which experiment is selected.
    let c = muxmerge::build(16);
    let vectors: Vec<Vec<bool>> = (0..200u32)
        .map(|s| absort_bench::bench_bits(16, u64::from(s)))
        .collect();
    let batch = c.eval_batch_parallel(&vectors, 2);
    for (v, got) in vectors.iter().zip(&batch) {
        assert_eq!(got, &c.eval(v));
        assert_eq!(got, &absort_core::lang::sorted_oracle(v));
    }
}

/// Runs one experiment phase inside a telemetry span named after it.
fn run_phase(name: &str, f: fn()) {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span(name);
    f();
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics = false;
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                metrics = true;
                args.remove(i);
            }
            "--metrics-out" => {
                metrics = true;
                args.remove(i);
                if i >= args.len() {
                    eprintln!("error: --metrics-out requires a path");
                    std::process::exit(2);
                }
                metrics_out = Some(args.remove(i));
            }
            _ => i += 1,
        }
    }
    #[cfg(feature = "telemetry")]
    {
        absort_telemetry::init_from_env();
        if metrics {
            absort_telemetry::set_enabled(true);
        }
    }
    #[cfg(not(feature = "telemetry"))]
    if metrics {
        eprintln!("note: repro was built without the `telemetry` feature; --metrics is ignored");
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    run_phase("sanity", sanity);
    let all: Vec<(&str, fn())> = vec![
        ("fig1", fig1),
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("table1", table1_report),
        ("table2", table2_report),
        ("columnsort", columnsort_report),
        ("concentrators", concentrators_report),
        ("crossover", crossover_report),
        ("ablations", ablations_report),
        ("wordsort", wordsort_report),
        ("charts", charts),
        ("checklist", checklist_report),
        ("dot", dot_report),
    ];
    match what {
        "all" => {
            // everything except the (verbose) DOT dump
            for (name, f) in &all {
                if *name != "dot" {
                    run_phase(name, *f);
                }
            }
        }
        "--help" | "-h" | "help" => {
            println!(
                "usage: repro [--metrics] [--metrics-out <path>] [all | csv <dir> | {}]",
                all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" | ")
            );
        }
        "csv" => {
            let dir = args
                .get(1)
                .map(String::as_str)
                .unwrap_or("results")
                .to_string();
            #[cfg(feature = "telemetry")]
            let _span = absort_telemetry::span("csv");
            write_csvs(&dir).expect("writing CSVs");
        }
        other => match all.iter().find(|(n, _)| *n == other) {
            Some((name, f)) => run_phase(name, *f),
            None => {
                eprintln!("unknown experiment {other:?}; try --help");
                std::process::exit(2);
            }
        },
    }
    #[cfg(feature = "telemetry")]
    if absort_telemetry::enabled() {
        eprint!("{}", absort_telemetry::render_report());
        let path = metrics_out
            .as_ref()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| absort_telemetry::default_manifest_path(&format!("repro-{what}")));
        match absort_telemetry::write_manifest(&path) {
            Ok(()) => eprintln!("telemetry manifest: {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write manifest {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    // Silence the unused-variable lint when telemetry is compiled out.
    #[cfg(not(feature = "telemetry"))]
    let _ = metrics_out;
}
