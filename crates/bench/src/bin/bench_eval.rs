//! `bench_eval` — engine-comparison numbers for the evaluation backends.
//!
//! Times the enum-dispatch interpreter against the compiled micro-op
//! tape on the mux-based merge sorter (scalar, 64-lane, and 4-thread
//! batch paths over a fixed 256-vector workload), the one-time lowering
//! pass, and the full `--network all` fault campaign, and writes the
//! results as JSON. Each headline `*_ms` figure is the minimum over
//! `--reps` wall-clock samples; a per-size `spread` object carries the
//! min/median/max of the key measurements so downstream comparisons
//! (`bench_compare`) can tell a regression from run-to-run noise. A
//! separate untimed telemetry pass records per-vector latency
//! histograms and emits their p50/p99 alongside the wall-clock columns
//! (zero when the `telemetry` feature is compiled out).
//!
//! Usage:
//!   cargo run --release -p absort-bench --bin bench_eval -- \
//!       [--quick] [--reps N] [--out BENCH_eval.json]
//!
//! `--quick` restricts to n = 64 and a n = 4 fault campaign (CI smoke);
//! the default sweep is n ∈ {64, 256, 1024} with a n = 8 campaign.

use std::hint::black_box;
use std::time::Instant;

use absort_analysis::faults::{run_campaign, CampaignConfig, NetworkSel};
use absort_bench::bench_bits;
use absort_circuit::eval::{pack_lanes, pack_lanes_wide};
#[cfg(feature = "telemetry")]
use absort_circuit::{Circuit, CompiledCircuit};
use absort_circuit::{CompileOptions, CompiledEvaluator, Engine, Evaluator, OptLevel, PassName};
use absort_core::muxmerge;
use absort_parwalk::ParEvaluator;

const WORKLOAD: usize = 256;
/// Pool-width cap for the level-parallel walker rows; the actual width
/// is clamped to the cores the box exposes (a spinning pool wider than
/// the machine only measures scheduler convoy).
const PARWALK_THREADS: usize = 4;

fn parwalk_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(PARWALK_THREADS)
}

/// The committed ahead-of-time emitted source for the benchmark network
/// at n = 64 (see `tests/emitted_golden.rs` for the pin) — the
/// `emitted_scalar_ms` column times rustc's own code for the same tape.
mod emitted {
    include!("../../emitted/sort_mux_merger_64.rs");
}

/// Min/median/max wall-clock seconds per call over `--reps` samples.
#[derive(Clone, Copy)]
struct Sample {
    min: f64,
    median: f64,
    max: f64,
}

impl Sample {
    fn spread_json(&self) -> String {
        format!(
            "{{ \"min\": {}, \"median\": {}, \"max\": {} }}",
            ms(self.min),
            ms(self.median),
            ms(self.max)
        )
    }
}

/// Times `reps` samples of `iters` back-to-back calls of `f` (batched
/// so that microsecond-scale routines still get a clean reading) and
/// returns the per-call min/median/max.
fn sample<R>(reps: usize, iters: u32, mut f: impl FnMut() -> R) -> Sample {
    let mut secs: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_secs_f64() / f64::from(iters)
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    Sample {
        min: secs[0],
        median: secs[secs.len() / 2],
        max: secs[secs.len() - 1],
    }
}

/// Minimum wall-clock seconds per call — the headline number.
fn min_of<R>(reps: usize, iters: u32, f: impl FnMut() -> R) -> f64 {
    sample(reps, iters, f).min
}

fn ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

fn ratio(slow: f64, fast: f64) -> String {
    format!("{:.2}", slow / fast)
}

/// Per-vector latency quantiles from an untimed telemetry-enabled pass:
/// `[interp_p50, interp_p99, compiled_p50, compiled_p99]` in ns. The
/// registry is reset before and after so the histogram pass never
/// contaminates the wall-clock numbers (telemetry stays off while
/// timing).
#[cfg(feature = "telemetry")]
fn vector_latency_quantiles(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    groups: &[Vec<u64>],
    n: usize,
) -> [u64; 4] {
    absort_telemetry::reset();
    absort_telemetry::set_enabled(true);
    {
        let mut interp: Evaluator<'_, u64> = Evaluator::new(circuit);
        let mut comp: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(compiled);
        let mut out = vec![0u64; n];
        for gp in groups {
            interp.run_into(gp, &mut out);
            black_box(out[0]);
            comp.run_into(gp, &mut out);
            black_box(out[0]);
        }
        // Evaluators drop here, flushing their local recorders.
    }
    absort_telemetry::set_enabled(false);
    let snap = absort_telemetry::global().snapshot();
    let q = |name: &str, q: f64| -> u64 {
        snap.hists
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, h)| h.quantile(q))
    };
    let out = [
        q("eval.interp.vector_ns", 0.50),
        q("eval.interp.vector_ns", 0.99),
        q("eval.compiled.vector_ns", 0.50),
        q("eval.compiled.vector_ns", 0.99),
    ];
    absort_telemetry::reset();
    out
}

fn size_row(n: usize, reps: usize) -> String {
    let circuit = muxmerge::build(n);
    let vectors: Vec<Vec<bool>> = (0..WORKLOAD).map(|s| bench_bits(n, s as u64)).collect();
    // Pre-packed 64-lane groups: the raw engine measurement, without the
    // bool<->lane conversion the batch API performs.
    let groups: Vec<Vec<u64>> = vectors.chunks(64).map(|ch| pack_lanes(ch, n)).collect();

    let compile_s = min_of(reps, 20, || circuit.compile());
    let compiled = circuit.compile();
    // The fused tapes: superinstruction dispatch for the headline
    // scalar/wide columns, plus the parallel-safe variant the
    // level-parallel walker requires.
    let fuse_opts = CompileOptions::default().with_fuse();
    let fused = circuit.compile_with(&fuse_opts);
    let fused_par = circuit.compile_with(&fuse_opts.with_par_safe());
    let fuse_stats = fused
        .pass_stats()
        .iter()
        .find(|s| s.name == "fuse")
        .expect("fuse pass ran");
    let (fuse_before, fuse_after) = (fuse_stats.ops_before, fuse_stats.ops_after);

    let interp_scalar = sample(reps, 1, || {
        let mut ev: Evaluator<'_, bool> = Evaluator::new(&circuit);
        let mut out = vec![false; n];
        let mut acc = 0usize;
        for v in &vectors {
            ev.run_into(v, &mut out);
            acc += out[0] as usize;
        }
        acc
    });
    fn scalar_workload<'a>(
        cc: &'a absort_circuit::CompiledCircuit,
        n: usize,
    ) -> impl FnMut(&[Vec<bool>]) -> usize + 'a {
        let mut ev: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(cc);
        let mut out = vec![false; n];
        move |vectors: &[Vec<bool>]| {
            let mut acc = 0usize;
            for v in vectors {
                ev.run_into(v, &mut out);
                acc += out[0] as usize;
            }
            acc
        }
    }
    // Headline scalar column: the fused tape (fewer dispatches, same
    // results); the unfused figure rides along for the record.
    let compiled_scalar = {
        let mut f = scalar_workload(&fused, n);
        sample(reps, 1, || f(&vectors))
    };
    let compiled_scalar_unfused = {
        let mut f = scalar_workload(&compiled, n);
        sample(reps, 1, || f(&vectors))
    };
    // Ahead-of-time emitted function (committed golden, n = 64 only):
    // what rustc -O makes of the very same tape as straight-line code.
    let emitted_scalar_s = (n == 64).then(|| {
        min_of(reps, 1, || {
            let mut acc = 0usize;
            let mut input = [false; 64];
            for v in &vectors {
                input.copy_from_slice(v);
                acc += emitted::sort_mux_merger_64(&input)[0] as usize;
            }
            acc
        })
    });

    let mut interp_u64: Evaluator<'_, u64> = Evaluator::new(&circuit);
    let mut compiled_u64: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&compiled);
    let mut out = vec![0u64; n];
    let interp_lanes = sample(reps, 100, || {
        let mut acc = 0u64;
        for gp in &groups {
            interp_u64.run_into(gp, &mut out);
            acc ^= out[0];
        }
        acc
    });
    let compiled_lanes_s = min_of(reps, 100, || {
        let mut acc = 0u64;
        for gp in &groups {
            compiled_u64.run_into(gp, &mut out);
            acc ^= out[0];
        }
        acc
    });

    // Wide-walk candidates: one [u64; 4] (256-lane) or [u64; 8]
    // (512-lane) call covers the whole workload, which the register-
    // allocated slot buffer keeps cache-resident. The headline
    // `compiled_wide_ms` takes the best configuration per size —
    // unfused/fused, both widths, and the level-parallel walker.
    let wide = pack_lanes_wide::<4>(&vectors, n);
    let wide8 = pack_lanes_wide::<8>(&vectors, n);
    let mut compiled_w4: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&compiled);
    let mut wout = vec![[0u64; 4]; n];
    let compiled_wide = sample(reps, 100, || {
        compiled_w4.run_into(&wide, &mut wout);
        wout[0][0]
    });
    let compiled_wide4_fused_s = {
        let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&fused);
        min_of(reps, 100, || {
            ev.run_into(&wide, &mut wout);
            wout[0][0]
        })
    };
    let mut wout8 = vec![[0u64; 8]; n];
    let compiled_wide8_fused_s = {
        let mut ev: CompiledEvaluator<'_, [u64; 8]> = CompiledEvaluator::new(&fused);
        min_of(reps, 100, || {
            ev.run_into(&wide8, &mut wout8);
            wout8[0][0]
        })
    };
    let parwalk_pool = parwalk_threads();
    let parwalk_wide4_s = {
        let mut ev: ParEvaluator<[u64; 4]> = ParEvaluator::new(&fused_par, parwalk_pool);
        min_of(reps, 100, || {
            ev.run_into(&wide, &mut wout);
            wout[0][0]
        })
    };
    let parwalk_wide8_s = {
        let mut ev: ParEvaluator<[u64; 8]> = ParEvaluator::new(&fused_par, parwalk_pool);
        min_of(reps, 100, || {
            ev.run_into(&wide8, &mut wout8);
            wout8[0][0]
        })
    };
    let parwalk_wide_s = parwalk_wide4_s.min(parwalk_wide8_s);
    let wide_candidates = [
        ("w4", compiled_wide.min),
        ("w4-fused", compiled_wide4_fused_s),
        ("w8-fused", compiled_wide8_fused_s),
        ("parwalk-w4-fused", parwalk_wide4_s),
        ("parwalk-w8-fused", parwalk_wide8_s),
    ];
    let (wide_config, best_wide_s) = wide_candidates
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty");

    // Rules on/off column pair (schema v4): the default tape above
    // already runs the declarative rewrite pass at O2; the off tape
    // keeps every other pass so the delta isolates the ruleset.
    let rules_off = {
        let mut opts = CompileOptions::default();
        opts.passes = opts.passes.without(PassName::Rewrite);
        circuit.compile_with(&opts)
    };
    let rules_off_wide_s = {
        let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&rules_off);
        min_of(reps, 100, || {
            ev.run_into(&wide, &mut wout);
            wout[0][0]
        })
    };
    eprintln!(
        "  rewrite rules: off {} ops -> on {} ops",
        rules_off.tape_len(),
        compiled.tape_len(),
    );

    let interp_par4_s = min_of(reps, 1, || circuit.eval_batch_parallel(&vectors, 4));
    let compiled_par4_s = min_of(reps, 1, || compiled.eval_batch_parallel(&vectors, 4));

    // Histogram-backed per-vector latency percentiles (untimed pass).
    #[cfg(feature = "telemetry")]
    let [ivp50, ivp99, cvp50, cvp99] = vector_latency_quantiles(&circuit, &compiled, &groups, n);
    #[cfg(not(feature = "telemetry"))]
    let [ivp50, ivp99, cvp50, cvp99] = [0u64; 4];

    // Per-opt-level rows: how much tape each pass tier actually buys,
    // and what it costs at compile time and in the wide walk.
    let opt_rows: Vec<String> = OptLevel::ALL
        .into_iter()
        .map(|level| {
            let opts = CompileOptions::for_level(level);
            let level_compile_s = min_of(reps, 20, || circuit.compile_with(&opts));
            let cc = circuit.compile_with(&opts);
            let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&cc);
            let mut lout = vec![[0u64; 4]; n];
            let level_wide_s = min_of(reps, 100, || {
                ev.run_into(&wide, &mut lout);
                lout[0][0]
            });
            eprintln!(
                "  O{level}: {} ops / {} slots, compile {} ms, wide {} ms (passes: {})",
                cc.tape_len(),
                cc.n_slots(),
                ms(level_compile_s),
                ms(level_wide_s),
                opts.passes.fingerprint(),
            );
            format!(
                concat!(
                    "        {{\n",
                    "          \"level\": {level},\n",
                    "          \"passes\": \"{passes}\",\n",
                    "          \"compile_ms\": {compile},\n",
                    "          \"tape_len\": {tape_len},\n",
                    "          \"n_slots\": {n_slots},\n",
                    "          \"compiled_wide_ms\": {cw}\n",
                    "        }}"
                ),
                level = level,
                passes = opts.passes.fingerprint(),
                compile = ms(level_compile_s),
                tape_len = cc.tape_len(),
                n_slots = cc.n_slots(),
                cw = ms(level_wide_s),
            )
        })
        .collect();

    eprintln!(
        "n={n}: lanes64 interp {} ms -> compiled wide {} ms [{}] ({}x; u64-for-u64 {}x); \
         scalar {}x (fused tape {} -> {} ops); compile {} ms, {} slots for {} wires; \
         vector p50 interp {ivp50} ns -> compiled {cvp50} ns",
        ms(interp_lanes.min),
        ms(best_wide_s),
        wide_config,
        ratio(interp_lanes.min, best_wide_s),
        ratio(interp_lanes.min, compiled_lanes_s),
        ratio(interp_scalar.min, compiled_scalar.min),
        fuse_before,
        fuse_after,
        ms(compile_s),
        compiled.n_slots(),
        circuit.n_wires(),
    );
    if let Some(es) = emitted_scalar_s {
        eprintln!(
            "  emitted scalar (rustc -O straight-line): {} ms vs fused tape {} ms",
            ms(es),
            ms(compiled_scalar.min)
        );
    }

    format!(
        concat!(
            "    {{\n",
            "      \"n\": {n},\n",
            "      \"compile_ms\": {compile},\n",
            "      \"tape_len\": {tape_len},\n",
            "      \"rules_on_tape_len\": {ron_t},\n",
            "      \"rules_off_tape_len\": {roff_t},\n",
            "      \"rules_on_wide_ms\": {ron_w},\n",
            "      \"rules_off_wide_ms\": {roff_w},\n",
            "      \"levels\": {levels},\n",
            "      \"n_slots\": {n_slots},\n",
            "      \"n_wires\": {n_wires},\n",
            "      \"slots_saved\": {slots_saved},\n",
            "      \"fuse_ops_before\": {fuse_before},\n",
            "      \"fuse_ops_after\": {fuse_after},\n",
            "      \"compile.pass.fuse.fused\": {fuse_delta},\n",
            "      \"interp_scalar_ms\": {is},\n",
            "      \"compiled_scalar_ms\": {cs},\n",
            "      \"compiled_scalar_unfused_ms\": {csu},\n",
            "{emitted_row}",
            "      \"scalar_speedup\": {ss},\n",
            "      \"interp_lanes_ms\": {il},\n",
            "      \"compiled_lanes_ms\": {cl},\n",
            "      \"compiled_wide_ms\": {cw},\n",
            "      \"wide_config\": \"{wide_config}\",\n",
            "      \"compiled_wide4_ms\": {cw4},\n",
            "      \"compiled_wide4_fused_ms\": {cw4f},\n",
            "      \"compiled_wide8_fused_ms\": {cw8f},\n",
            "      \"parwalk_wide_ms\": {pw},\n",
            "      \"parwalk_threads\": {pwt},\n",
            "      \"lanes_speedup\": {ls},\n",
            "      \"interp_par4_ms\": {ip},\n",
            "      \"compiled_par4_ms\": {cp},\n",
            "      \"interp_vector_p50_ns\": {ivp50},\n",
            "      \"interp_vector_p99_ns\": {ivp99},\n",
            "      \"compiled_vector_p50_ns\": {cvp50},\n",
            "      \"compiled_vector_p99_ns\": {cvp99},\n",
            "      \"spread\": {{\n",
            "        \"interp_scalar_ms\": {sp_is},\n",
            "        \"compiled_scalar_ms\": {sp_cs},\n",
            "        \"interp_lanes_ms\": {sp_il},\n",
            "        \"compiled_wide_ms\": {sp_cw}\n",
            "      }},\n",
            "      \"opt_levels\": [\n{opt_rows}\n      ]\n",
            "    }}"
        ),
        n = n,
        compile = ms(compile_s),
        tape_len = compiled.tape_len(),
        ron_t = compiled.tape_len(),
        roff_t = rules_off.tape_len(),
        ron_w = ms(compiled_wide.min),
        roff_w = ms(rules_off_wide_s),
        levels = compiled.n_levels(),
        n_slots = compiled.n_slots(),
        n_wires = circuit.n_wires(),
        slots_saved = compiled.slots_saved(),
        fuse_before = fuse_before,
        fuse_after = fuse_after,
        fuse_delta = fuse_before - fuse_after,
        is = ms(interp_scalar.min),
        cs = ms(compiled_scalar.min),
        csu = ms(compiled_scalar_unfused.min),
        emitted_row = emitted_scalar_s
            .map(|es| format!("      \"emitted_scalar_ms\": {},\n", ms(es)))
            .unwrap_or_default(),
        ss = ratio(interp_scalar.min, compiled_scalar.min),
        il = ms(interp_lanes.min),
        cl = ms(compiled_lanes_s),
        cw = ms(best_wide_s),
        wide_config = wide_config,
        cw4 = ms(compiled_wide.min),
        cw4f = ms(compiled_wide4_fused_s),
        cw8f = ms(compiled_wide8_fused_s),
        pw = ms(parwalk_wide_s),
        pwt = parwalk_pool,
        ls = ratio(interp_lanes.min, best_wide_s),
        ip = ms(interp_par4_s),
        cp = ms(compiled_par4_s),
        ivp50 = ivp50,
        ivp99 = ivp99,
        cvp50 = cvp50,
        cvp99 = cvp99,
        sp_is = interp_scalar.spread_json(),
        sp_cs = compiled_scalar.spread_json(),
        sp_il = interp_lanes.spread_json(),
        sp_cw = compiled_wide.spread_json(),
        opt_rows = opt_rows.join(",\n"),
    )
}

fn campaign_section(n: usize, reps: usize) -> String {
    let time_engine = |engine: Engine| {
        let cfg = CampaignConfig {
            n,
            engine,
            ..CampaignConfig::default()
        };
        sample(reps, 1, || run_campaign(&NetworkSel::ALL, &cfg))
    };
    let interp = time_engine(Engine::Interp);
    let compiled = time_engine(Engine::Compiled);
    eprintln!(
        "fault campaign n={n} --network all: interp {} ms -> compiled {} ms ({}x)",
        ms(interp.min),
        ms(compiled.min),
        ratio(interp.min, compiled.min),
    );
    format!(
        concat!(
            "  \"fault_campaign\": {{\n",
            "    \"n\": {n},\n",
            "    \"networks\": \"all\",\n",
            "    \"interp_ms\": {i},\n",
            "    \"compiled_ms\": {c},\n",
            "    \"speedup\": {s},\n",
            "    \"spread\": {{\n",
            "      \"interp_ms\": {sp_i},\n",
            "      \"compiled_ms\": {sp_c}\n",
            "    }}\n",
            "  }}"
        ),
        n = n,
        i = ms(interp.min),
        c = ms(compiled.min),
        s = ratio(interp.min, compiled.min),
        sp_i = interp.spread_json(),
        sp_c = compiled.spread_json(),
    )
}

fn main() {
    let mut out_path = String::from("BENCH_eval.json");
    let mut quick = false;
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            "--reps" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r >= 1 => reps = r,
                _ => {
                    eprintln!("error: --reps requires an integer >= 1");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: bench_eval [--quick] [--reps N] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let (sizes, campaign_n): (&[usize], usize) = if quick {
        (&[64], 4)
    } else {
        (&[64, 256, 1024], 8)
    };

    let rows: Vec<String> = sizes.iter().map(|&n| size_row(n, reps)).collect();
    let campaign = campaign_section(campaign_n, reps);

    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"absort-bench-eval/v4\",\n",
            "  \"network\": \"mux-merger\",\n",
            "  \"reps\": {reps},\n",
            "  \"workload_vectors\": {workload},\n",
            "  \"sizes\": [\n{rows}\n  ],\n",
            "{campaign}\n",
            "}}\n"
        ),
        reps = reps,
        workload = WORKLOAD,
        rows = rows.join(",\n"),
        campaign = campaign,
    );

    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
