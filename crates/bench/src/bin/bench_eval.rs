//! `bench_eval` — engine-comparison numbers for the evaluation backends.
//!
//! Times the enum-dispatch interpreter against the compiled micro-op
//! tape on the mux-based merge sorter (scalar, 64-lane, and 4-thread
//! batch paths over a fixed 256-vector workload), the one-time lowering
//! pass, and the full `--network all` fault campaign, and writes the
//! results as JSON (min-of-3 wall clock per measurement).
//!
//! Usage:
//!   cargo run --release -p absort-bench --bin bench_eval -- \
//!       [--quick] [--out BENCH_eval.json]
//!
//! `--quick` restricts to n = 64 and a n = 4 fault campaign (CI smoke);
//! the default sweep is n ∈ {64, 256, 1024} with a n = 8 campaign.

use std::hint::black_box;
use std::time::Instant;

use absort_analysis::faults::{run_campaign, CampaignConfig, NetworkSel};
use absort_bench::bench_bits;
use absort_circuit::eval::{pack_lanes, pack_lanes_wide};
use absort_circuit::{CompileOptions, CompiledEvaluator, Engine, Evaluator, OptLevel};
use absort_core::muxmerge;

const REPS: usize = 3;
const WORKLOAD: usize = 256;

/// Minimum wall-clock seconds per call over [`REPS`] samples, each
/// timing `iters` back-to-back calls of `f` (batched so that
/// microsecond-scale routines still get a clean reading).
fn min_of<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / f64::from(iters));
    }
    best
}

fn ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

fn ratio(slow: f64, fast: f64) -> String {
    format!("{:.2}", slow / fast)
}

fn size_row(n: usize) -> String {
    let circuit = muxmerge::build(n);
    let vectors: Vec<Vec<bool>> = (0..WORKLOAD).map(|s| bench_bits(n, s as u64)).collect();
    // Pre-packed 64-lane groups: the raw engine measurement, without the
    // bool<->lane conversion the batch API performs.
    let groups: Vec<Vec<u64>> = vectors.chunks(64).map(|ch| pack_lanes(ch, n)).collect();

    let compile_s = min_of(20, || circuit.compile());
    let compiled = circuit.compile();

    let interp_scalar_s = min_of(1, || {
        let mut ev: Evaluator<'_, bool> = Evaluator::new(&circuit);
        let mut out = vec![false; n];
        let mut acc = 0usize;
        for v in &vectors {
            ev.run_into(v, &mut out);
            acc += out[0] as usize;
        }
        acc
    });
    let compiled_scalar_s = min_of(1, || {
        let mut ev: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(&compiled);
        let mut out = vec![false; n];
        let mut acc = 0usize;
        for v in &vectors {
            ev.run_into(v, &mut out);
            acc += out[0] as usize;
        }
        acc
    });

    let mut interp_u64: Evaluator<'_, u64> = Evaluator::new(&circuit);
    let mut compiled_u64: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&compiled);
    let mut out = vec![0u64; n];
    let interp_lanes_s = min_of(100, || {
        let mut acc = 0u64;
        for gp in &groups {
            interp_u64.run_into(gp, &mut out);
            acc ^= out[0];
        }
        acc
    });
    let compiled_lanes_s = min_of(100, || {
        let mut acc = 0u64;
        for gp in &groups {
            compiled_u64.run_into(gp, &mut out);
            acc ^= out[0];
        }
        acc
    });

    // The compiled engine's preferred batch configuration: one [u64; 4]
    // wide walk covers the whole 256-vector workload, which the
    // register-allocated slot buffer keeps cache-resident.
    let wide = pack_lanes_wide::<4>(&vectors, n);
    let mut compiled_w4: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&compiled);
    let mut wout = vec![[0u64; 4]; n];
    let compiled_wide_s = min_of(100, || {
        compiled_w4.run_into(&wide, &mut wout);
        wout[0][0]
    });

    let interp_par4_s = min_of(1, || circuit.eval_batch_parallel(&vectors, 4));
    let compiled_par4_s = min_of(1, || compiled.eval_batch_parallel(&vectors, 4));

    // Per-opt-level rows: how much tape each pass tier actually buys,
    // and what it costs at compile time and in the wide walk.
    let opt_rows: Vec<String> = OptLevel::ALL
        .into_iter()
        .map(|level| {
            let opts = CompileOptions::for_level(level);
            let level_compile_s = min_of(20, || circuit.compile_with(&opts));
            let cc = circuit.compile_with(&opts);
            let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&cc);
            let mut lout = vec![[0u64; 4]; n];
            let level_wide_s = min_of(100, || {
                ev.run_into(&wide, &mut lout);
                lout[0][0]
            });
            eprintln!(
                "  O{level}: {} ops / {} slots, compile {} ms, wide {} ms (passes: {})",
                cc.tape_len(),
                cc.n_slots(),
                ms(level_compile_s),
                ms(level_wide_s),
                opts.passes.fingerprint(),
            );
            format!(
                concat!(
                    "        {{\n",
                    "          \"level\": {level},\n",
                    "          \"passes\": \"{passes}\",\n",
                    "          \"compile_ms\": {compile},\n",
                    "          \"tape_len\": {tape_len},\n",
                    "          \"n_slots\": {n_slots},\n",
                    "          \"compiled_wide_ms\": {cw}\n",
                    "        }}"
                ),
                level = level,
                passes = opts.passes.fingerprint(),
                compile = ms(level_compile_s),
                tape_len = cc.tape_len(),
                n_slots = cc.n_slots(),
                cw = ms(level_wide_s),
            )
        })
        .collect();

    eprintln!(
        "n={n}: lanes64 interp {} ms -> compiled wide {} ms ({}x; u64-for-u64 {}x); \
         scalar {}x; compile {} ms, {} slots for {} wires",
        ms(interp_lanes_s),
        ms(compiled_wide_s),
        ratio(interp_lanes_s, compiled_wide_s),
        ratio(interp_lanes_s, compiled_lanes_s),
        ratio(interp_scalar_s, compiled_scalar_s),
        ms(compile_s),
        compiled.n_slots(),
        circuit.n_wires(),
    );

    format!(
        concat!(
            "    {{\n",
            "      \"n\": {n},\n",
            "      \"compile_ms\": {compile},\n",
            "      \"tape_len\": {tape_len},\n",
            "      \"levels\": {levels},\n",
            "      \"n_slots\": {n_slots},\n",
            "      \"n_wires\": {n_wires},\n",
            "      \"slots_saved\": {slots_saved},\n",
            "      \"interp_scalar_ms\": {is},\n",
            "      \"compiled_scalar_ms\": {cs},\n",
            "      \"scalar_speedup\": {ss},\n",
            "      \"interp_lanes_ms\": {il},\n",
            "      \"compiled_lanes_ms\": {cl},\n",
            "      \"compiled_wide_ms\": {cw},\n",
            "      \"lanes_speedup\": {ls},\n",
            "      \"interp_par4_ms\": {ip},\n",
            "      \"compiled_par4_ms\": {cp},\n",
            "      \"opt_levels\": [\n{opt_rows}\n      ]\n",
            "    }}"
        ),
        n = n,
        compile = ms(compile_s),
        tape_len = compiled.tape_len(),
        levels = compiled.n_levels(),
        n_slots = compiled.n_slots(),
        n_wires = circuit.n_wires(),
        slots_saved = compiled.slots_saved(),
        is = ms(interp_scalar_s),
        cs = ms(compiled_scalar_s),
        ss = ratio(interp_scalar_s, compiled_scalar_s),
        il = ms(interp_lanes_s),
        cl = ms(compiled_lanes_s),
        cw = ms(compiled_wide_s),
        ls = ratio(interp_lanes_s, compiled_wide_s),
        ip = ms(interp_par4_s),
        cp = ms(compiled_par4_s),
        opt_rows = opt_rows.join(",\n"),
    )
}

fn campaign_section(n: usize) -> String {
    let time_engine = |engine: Engine| {
        let cfg = CampaignConfig {
            n,
            engine,
            ..CampaignConfig::default()
        };
        min_of(1, || run_campaign(&NetworkSel::ALL, &cfg))
    };
    let interp_s = time_engine(Engine::Interp);
    let compiled_s = time_engine(Engine::Compiled);
    eprintln!(
        "fault campaign n={n} --network all: interp {} ms -> compiled {} ms ({}x)",
        ms(interp_s),
        ms(compiled_s),
        ratio(interp_s, compiled_s),
    );
    format!(
        concat!(
            "  \"fault_campaign\": {{\n",
            "    \"n\": {n},\n",
            "    \"networks\": \"all\",\n",
            "    \"interp_ms\": {i},\n",
            "    \"compiled_ms\": {c},\n",
            "    \"speedup\": {s}\n",
            "  }}"
        ),
        n = n,
        i = ms(interp_s),
        c = ms(compiled_s),
        s = ratio(interp_s, compiled_s),
    )
}

fn main() {
    let mut out_path = String::from("BENCH_eval.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: bench_eval [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let (sizes, campaign_n): (&[usize], usize) = if quick {
        (&[64], 4)
    } else {
        (&[64, 256, 1024], 8)
    };

    let rows: Vec<String> = sizes.iter().map(|&n| size_row(n)).collect();
    let campaign = campaign_section(campaign_n);

    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"absort-bench-eval/v1\",\n",
            "  \"network\": \"mux-merger\",\n",
            "  \"reps\": {reps},\n",
            "  \"workload_vectors\": {workload},\n",
            "  \"sizes\": [\n{rows}\n  ],\n",
            "{campaign}\n",
            "}}\n"
        ),
        reps = REPS,
        workload = WORKLOAD,
        rows = rows.join(",\n"),
        campaign = campaign,
    );

    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
