//! `bench_compare` — the perf regression gate over committed bench JSON.
//!
//! Diffs a freshly generated document against a committed baseline and
//! classifies every difference as either a hard failure or a warning.
//! Two schema families are understood, dispatched on the `schema`
//! field: `absort-bench-eval/*` (the `bench_eval` engine comparison)
//! and `absort-bench-serve/*` (the `bench_serve` load-test report).
//!
//! - **FAIL** (exit 1): unreadable/unparseable input, schema loss (the
//!   fresh document's schema is missing, foreign, from a different
//!   family than the baseline, or *older* than the baseline's),
//!   coverage loss (a baseline size row, headline metric, or the
//!   fault-campaign section missing from the fresh document; a serve
//!   report missing a required column or completing zero requests).
//!   Missing size rows alone can be waived with `--allow-missing-sizes`
//!   (for `--quick` CI runs diffed against a full baseline). A v4 row
//!   whose `rules_on_tape_len` exceeds its `rules_off_tape_len` also
//!   fails hard: the declarative rewrite pass must never grow the tape.
//! - **WARN** (exit 0, or exit 3 with `--strict`): `lanes_speedup`
//!   dropping more than 10% below the baseline on any common size, the
//!   fault-campaign `speedup` doing the same, or a serve report's
//!   `throughput_rps` doing the same on a comparable workload.
//!
//! Usage:
//!   bench_compare <fresh.json> <baseline.json> [--strict] [--allow-missing-sizes]
//!
//! Exit codes: 0 ok, 1 fail, 2 usage, 3 warnings under `--strict`.

use absort_telemetry::json::{parse, Value};

/// Fractional speedup drop below baseline that triggers a warning.
const SPEEDUP_DROP_THRESHOLD: f64 = 0.10;

/// Headline metrics every common size row must carry (coverage check).
const REQUIRED_SIZE_METRICS: &[&str] = &[
    "compile_ms",
    "interp_lanes_ms",
    "compiled_wide_ms",
    "lanes_speedup",
    "scalar_speedup",
];

/// Metrics the v3 schema added; required on every fresh size row once
/// the fresh document declares v3 or newer (the fuse pass must actually
/// report through the tape it benchmarked).
const V3_REQUIRED_SIZE_METRICS: &[&str] = &["compile.pass.fuse.fused"];

/// Metrics the v4 schema added: the rules-on/off column pair isolating
/// the declarative rewrite pass. Required on every fresh size row once
/// the fresh document declares v4 or newer; additionally, rules-on
/// must never carry a longer tape than rules-off (hard failure).
const V4_REQUIRED_SIZE_METRICS: &[&str] = &[
    "rules_on_tape_len",
    "rules_off_tape_len",
    "rules_on_wide_ms",
    "rules_off_wide_ms",
];

/// Metrics that are only present on some rows (e.g. `emitted_scalar_ms`
/// exists only where a committed golden exists): required on a fresh row
/// exactly when the baseline row carries them — dropping one is a
/// coverage loss, never having had it is fine.
const CARRY_FORWARD_SIZE_METRICS: &[&str] = &["emitted_scalar_ms"];

const SCHEMA_PREFIX: &str = "absort-bench-eval/";
const SCHEMA_V3: &str = "absort-bench-eval/v3";
const SCHEMA_V4: &str = "absort-bench-eval/v4";
const SERVE_SCHEMA_PREFIX: &str = "absort-bench-serve/";

/// Columns every serve report must carry; dropping one is coverage loss.
const SERVE_REQUIRED_METRICS: &[&str] = &[
    "throughput_rps",
    "p50_us",
    "p99_us",
    "p999_us",
    "requests",
    "completed",
    "shed",
    "retried",
    "deadline_missed",
    "errors",
];

#[derive(Default)]
struct Options {
    strict: bool,
    allow_missing_sizes: bool,
}

#[derive(Default)]
struct Outcome {
    failures: Vec<String>,
    warnings: Vec<String>,
    notes: Vec<String>,
}

fn schema_of<'a>(doc: &'a Value, which: &str, prefix: &str, out: &mut Outcome) -> Option<&'a str> {
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s.starts_with(prefix) => Some(s),
        Some(s) => {
            out.failures
                .push(format!("{which}: foreign schema `{s}` (want {prefix}*)"));
            None
        }
        None => {
            out.failures
                .push(format!("{which}: missing `schema` field"));
            None
        }
    }
}

/// Versions are `v1`, `v2`, ...: lexicographic order is version order,
/// so a fresh document must never be older than its baseline.
fn check_schema_order(fresh: &str, base: &str, out: &mut Outcome) {
    if fresh < base {
        out.failures.push(format!(
            "schema regression: fresh `{fresh}` is older than baseline `{base}`"
        ));
    } else if fresh > base {
        out.notes.push(format!(
            "schema upgraded: baseline `{base}` -> fresh `{fresh}`"
        ));
    }
}

/// `(n, row)` pairs from the document's `sizes` array.
fn size_rows(doc: &Value) -> Vec<(i64, Value)> {
    doc.get("sizes")
        .and_then(Value::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| r.get("n").and_then(Value::as_i64).map(|n| (n, r.clone())))
                .collect()
        })
        .unwrap_or_default()
}

/// Warns when `fresh` fell more than [`SPEEDUP_DROP_THRESHOLD`] below
/// `base`; otherwise records the delta as a note.
fn check_speedup(label: &str, fresh: f64, base: f64, out: &mut Outcome) {
    if base <= 0.0 {
        return;
    }
    let drop = (base - fresh) / base;
    if drop > SPEEDUP_DROP_THRESHOLD {
        out.warnings.push(format!(
            "{label}: speedup {fresh:.2}x is {:.0}% below baseline {base:.2}x",
            drop * 100.0
        ));
    } else {
        out.notes.push(format!(
            "{label}: speedup {fresh:.2}x vs baseline {base:.2}x (ok)"
        ));
    }
}

fn compare_docs(fresh: &Value, baseline: &Value, opts: &Options) -> Outcome {
    let mut out = Outcome::default();

    let fresh_schema = schema_of(fresh, "fresh", SCHEMA_PREFIX, &mut out);
    let base_schema = schema_of(baseline, "baseline", SCHEMA_PREFIX, &mut out);
    if let (Some(f), Some(b)) = (fresh_schema, base_schema) {
        check_schema_order(f, b, &mut out);
    }

    let fresh_sizes = size_rows(fresh);
    let base_sizes = size_rows(baseline);
    if base_sizes.is_empty() {
        out.failures
            .push("baseline: no size rows (empty or missing `sizes` array)".into());
    }
    if fresh_sizes.is_empty() {
        out.failures
            .push("fresh: no size rows (empty or missing `sizes` array)".into());
    }

    for (n, base_row) in &base_sizes {
        let Some((_, fresh_row)) = fresh_sizes.iter().find(|(fresh_n, _)| fresh_n == n) else {
            if opts.allow_missing_sizes {
                out.notes
                    .push(format!("n={n}: missing from fresh run (waived)"));
            } else {
                out.failures.push(format!(
                    "coverage loss: baseline size n={n} missing from fresh run"
                ));
            }
            continue;
        };
        for &metric in REQUIRED_SIZE_METRICS {
            if fresh_row.get(metric).and_then(Value::as_f64).is_none() {
                out.failures
                    .push(format!("coverage loss: n={n} lacks metric `{metric}`"));
            }
        }
        if fresh_schema.is_some_and(|s| s >= SCHEMA_V3) {
            for &metric in V3_REQUIRED_SIZE_METRICS {
                if fresh_row.get(metric).and_then(Value::as_f64).is_none() {
                    out.failures
                        .push(format!("coverage loss: n={n} lacks v3 metric `{metric}`"));
                }
            }
        }
        if fresh_schema.is_some_and(|s| s >= SCHEMA_V4) {
            for &metric in V4_REQUIRED_SIZE_METRICS {
                if fresh_row.get(metric).and_then(Value::as_f64).is_none() {
                    out.failures
                        .push(format!("coverage loss: n={n} lacks v4 metric `{metric}`"));
                }
            }
            // The rewrite pass is gated on monotonicity, not noise: a
            // rules-on tape longer than rules-off is a hard failure.
            if let (Some(on), Some(off)) = (
                fresh_row.get("rules_on_tape_len").and_then(Value::as_f64),
                fresh_row.get("rules_off_tape_len").and_then(Value::as_f64),
            ) {
                if on > off {
                    out.failures.push(format!(
                        "rewrite regression: n={n} rules-on tape ({on} ops) is larger \
                         than rules-off ({off} ops)"
                    ));
                } else {
                    out.notes
                        .push(format!("n={n} rewrite rules: {off} -> {on} ops (ok)"));
                }
            }
            // Wall-clock is noisy, so the latency side only warns.
            if let (Some(on_ms), Some(off_ms)) = (
                fresh_row.get("rules_on_wide_ms").and_then(Value::as_f64),
                fresh_row.get("rules_off_wide_ms").and_then(Value::as_f64),
            ) {
                if off_ms > 0.0 && (on_ms - off_ms) / off_ms > SPEEDUP_DROP_THRESHOLD {
                    out.warnings.push(format!(
                        "n={n}: rules-on wide walk {on_ms:.3} ms is more than {:.0}% \
                         above rules-off {off_ms:.3} ms",
                        SPEEDUP_DROP_THRESHOLD * 100.0
                    ));
                }
            }
        }
        for &metric in CARRY_FORWARD_SIZE_METRICS {
            if base_row.get(metric).and_then(Value::as_f64).is_some()
                && fresh_row.get(metric).and_then(Value::as_f64).is_none()
            {
                out.failures.push(format!(
                    "coverage loss: n={n} dropped metric `{metric}` the baseline carries"
                ));
            }
        }
        for speedup in ["lanes_speedup", "scalar_speedup"] {
            if let (Some(f), Some(b)) = (
                fresh_row.get(speedup).and_then(Value::as_f64),
                base_row.get(speedup).and_then(Value::as_f64),
            ) {
                check_speedup(&format!("n={n} {speedup}"), f, b, &mut out);
            }
        }
    }

    match (fresh.get("fault_campaign"), baseline.get("fault_campaign")) {
        (None, Some(_)) => out
            .failures
            .push("coverage loss: `fault_campaign` section missing from fresh run".into()),
        (Some(fc), Some(bc)) => {
            // A `--quick` campaign (n=4) is not comparable to a full
            // baseline's n=8 campaign; only diff speedups at equal n.
            let same_n = fc.get("n").and_then(Value::as_i64) == bc.get("n").and_then(Value::as_i64);
            if !same_n {
                out.notes.push(
                    "fault_campaign: size differs from baseline, speedup not compared".into(),
                );
            } else if let (Some(f), Some(b)) = (
                fc.get("speedup").and_then(Value::as_f64),
                bc.get("speedup").and_then(Value::as_f64),
            ) {
                check_speedup("fault_campaign", f, b, &mut out);
            }
        }
        _ => {}
    }

    out
}

/// Gate over `absort-bench-serve/*` load-test reports. Coverage loss
/// (a missing required column, or a run that completed nothing) fails;
/// a >10% `throughput_rps` drop on a comparable workload warns.
fn compare_serve_docs(fresh: &Value, baseline: &Value, _opts: &Options) -> Outcome {
    let mut out = Outcome::default();

    let fresh_schema = schema_of(fresh, "fresh", SERVE_SCHEMA_PREFIX, &mut out);
    let base_schema = schema_of(baseline, "baseline", SERVE_SCHEMA_PREFIX, &mut out);
    if let (Some(f), Some(b)) = (fresh_schema, base_schema) {
        check_schema_order(f, b, &mut out);
    }

    for &metric in SERVE_REQUIRED_METRICS {
        if fresh.get(metric).and_then(Value::as_f64).is_none() {
            out.failures.push(format!(
                "coverage loss: fresh serve report lacks `{metric}`"
            ));
        }
        if baseline.get(metric).and_then(Value::as_f64).is_none() {
            out.failures
                .push(format!("baseline serve report lacks `{metric}`"));
        }
    }
    if !out.failures.is_empty() {
        return out;
    }

    let completed = fresh
        .get("completed")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    if completed <= 0.0 {
        out.failures
            .push("fresh serve run completed zero requests".into());
        return out;
    }

    // Throughput is only comparable on the same workload shape: mode,
    // network, and input width must all match the baseline's.
    let same_workload = ["mode", "network"]
        .iter()
        .all(|k| fresh.get(k).and_then(Value::as_str) == baseline.get(k).and_then(Value::as_str))
        && fresh.get("n").and_then(Value::as_i64) == baseline.get("n").and_then(Value::as_i64);
    if !same_workload {
        out.notes.push(
            "serve workload differs from baseline (mode/network/n), throughput not compared".into(),
        );
        return out;
    }

    let (f_rps, b_rps) = (
        fresh
            .get("throughput_rps")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        baseline
            .get("throughput_rps")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
    );
    if b_rps > 0.0 {
        let drop = (b_rps - f_rps) / b_rps;
        if drop > SPEEDUP_DROP_THRESHOLD {
            out.warnings.push(format!(
                "serve throughput {f_rps:.0} rps is {:.0}% below baseline {b_rps:.0} rps",
                drop * 100.0
            ));
        } else {
            out.notes.push(format!(
                "serve throughput {f_rps:.0} rps vs baseline {b_rps:.0} rps (ok)"
            ));
        }
    }
    for pct in ["p50_us", "p99_us", "p999_us"] {
        if let (Some(f), Some(b)) = (
            fresh.get(pct).and_then(Value::as_f64),
            baseline.get(pct).and_then(Value::as_f64),
        ) {
            out.notes
                .push(format!("serve {pct}: {f:.0} vs baseline {b:.0}"));
        }
    }
    out
}

/// Which gate a document belongs to, by schema prefix.
fn family(doc: &Value) -> &'static str {
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s.starts_with(SERVE_SCHEMA_PREFIX) => "serve",
        _ => "eval",
    }
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare <fresh.json> <baseline.json> [--strict] [--allow-missing-sizes]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = Options::default();
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--strict" => opts.strict = true,
            "--allow-missing-sizes" => opts.allow_missing_sizes = true,
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag `{flag}`");
                usage();
            }
            _ => paths.push(a),
        }
    }
    let [fresh_path, base_path] = paths.as_slice() else {
        usage();
    };

    let (fresh, baseline) = match (load(fresh_path), load(base_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for e in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("FAIL: {e}");
            }
            std::process::exit(1);
        }
    };

    let out = if family(&fresh) == "serve" || family(&baseline) == "serve" {
        compare_serve_docs(&fresh, &baseline, &opts)
    } else {
        compare_docs(&fresh, &baseline, &opts)
    };
    for n in &out.notes {
        println!("  ok: {n}");
    }
    for w in &out.warnings {
        println!("WARN: {w}");
    }
    for f in &out.failures {
        println!("FAIL: {f}");
    }
    if !out.failures.is_empty() {
        println!("bench_compare: FAIL ({} failure(s))", out.failures.len());
        std::process::exit(1);
    }
    if !out.warnings.is_empty() {
        println!(
            "bench_compare: {} warning(s){}",
            out.warnings.len(),
            if opts.strict {
                " (strict: failing)"
            } else {
                ""
            }
        );
        if opts.strict {
            std::process::exit(3);
        }
    } else {
        println!("bench_compare: OK ({fresh_path} vs {base_path})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(schema: &str, rows: &[(i64, f64)], campaign_speedup: Option<f64>) -> Value {
        let sizes: Vec<String> = rows
            .iter()
            .map(|(n, ls)| {
                format!(
                    "{{\"n\": {n}, \"compile_ms\": 1.0, \"interp_lanes_ms\": 2.0, \
                     \"compiled_wide_ms\": 1.0, \"lanes_speedup\": {ls}, \
                     \"scalar_speedup\": 1.1}}"
                )
            })
            .collect();
        let campaign = campaign_speedup
            .map(|s| format!(", \"fault_campaign\": {{\"n\": 8, \"speedup\": {s}}}"))
            .unwrap_or_default();
        parse(&format!(
            "{{\"schema\": \"{schema}\", \"sizes\": [{}]{campaign}}}",
            sizes.join(", ")
        ))
        .unwrap()
    }

    #[test]
    fn identical_docs_pass_clean() {
        let d = doc("absort-bench-eval/v2", &[(64, 2.6), (256, 2.5)], Some(5.0));
        let out = compare_docs(&d, &d, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
    }

    #[test]
    fn small_speedup_drop_is_tolerated() {
        let base = doc("absort-bench-eval/v2", &[(64, 2.60)], None);
        let fresh = doc("absort-bench-eval/v2", &[(64, 2.40)], None);
        let out = compare_docs(&fresh, &base, &Options::default());
        assert!(out.failures.is_empty());
        assert!(out.warnings.is_empty(), "7.7% drop must not warn");
    }

    #[test]
    fn large_speedup_drop_warns_but_does_not_fail() {
        let base = doc(
            "absort-bench-eval/v2",
            &[(64, 2.60), (256, 2.50)],
            Some(5.0),
        );
        let fresh = doc(
            "absort-bench-eval/v2",
            &[(64, 1.30), (256, 2.50)],
            Some(2.0),
        );
        let out = compare_docs(&fresh, &base, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.warnings.len(), 2, "{:?}", out.warnings);
        assert!(out.warnings[0].contains("n=64"));
        assert!(out.warnings[1].contains("fault_campaign"));
    }

    #[test]
    fn missing_size_fails_unless_waived() {
        let base = doc("absort-bench-eval/v2", &[(64, 2.6), (1024, 2.7)], None);
        let fresh = doc("absort-bench-eval/v2", &[(64, 2.6)], None);
        let out = compare_docs(&fresh, &base, &Options::default());
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("n=1024"));

        let waived = Options {
            allow_missing_sizes: true,
            ..Options::default()
        };
        let out = compare_docs(&fresh, &base, &waived);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn missing_metric_and_campaign_fail() {
        let base = doc("absort-bench-eval/v2", &[(64, 2.6)], Some(5.0));
        let fresh = parse(
            "{\"schema\": \"absort-bench-eval/v2\", \"sizes\": [{\"n\": 64, \
             \"compile_ms\": 1.0}]}",
        )
        .unwrap();
        let out = compare_docs(&fresh, &base, &Options::default());
        let text = out.failures.join("\n");
        assert!(text.contains("lanes_speedup"), "{text}");
        assert!(text.contains("fault_campaign"), "{text}");
    }

    #[test]
    fn schema_ordering_old_fresh_fails_new_fresh_notes() {
        let v1 = doc("absort-bench-eval/v1", &[(64, 2.6)], None);
        let v2 = doc("absort-bench-eval/v2", &[(64, 2.6)], None);
        let out = compare_docs(&v1, &v2, &Options::default());
        assert!(out.failures.iter().any(|f| f.contains("schema regression")));
        let out = compare_docs(&v2, &v1, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.notes.iter().any(|n| n.contains("schema upgraded")));
    }

    /// A v3 row with opt-in extras: fuse pass stats and (optionally) the
    /// emitted-golden scalar column.
    fn doc_v3(rows: &[(i64, f64, bool, bool)]) -> Value {
        let sizes: Vec<String> = rows
            .iter()
            .map(|(n, ss, fused, emitted)| {
                let fused = if *fused {
                    ", \"compile.pass.fuse.fused\": 175"
                } else {
                    ""
                };
                let emitted = if *emitted {
                    ", \"emitted_scalar_ms\": 0.116"
                } else {
                    ""
                };
                format!(
                    "{{\"n\": {n}, \"compile_ms\": 1.0, \"interp_lanes_ms\": 2.0, \
                     \"compiled_wide_ms\": 1.0, \"lanes_speedup\": 2.6, \
                     \"scalar_speedup\": {ss}{fused}{emitted}}}"
                )
            })
            .collect();
        parse(&format!(
            "{{\"schema\": \"absort-bench-eval/v3\", \"sizes\": [{}]}}",
            sizes.join(", ")
        ))
        .unwrap()
    }

    #[test]
    fn v3_fresh_must_carry_fuse_stats() {
        let base = doc("absort-bench-eval/v2", &[(64, 2.6)], None);
        let missing = doc_v3(&[(64, 1.1, false, false)]);
        let out = compare_docs(&missing, &base, &Options::default());
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("compile.pass.fuse.fused")),
            "{:?}",
            out.failures
        );
        let present = doc_v3(&[(64, 1.1, true, false)]);
        let out = compare_docs(&present, &base, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn dropping_the_emitted_column_fails() {
        let base = doc_v3(&[(64, 1.1, true, true), (256, 1.1, true, false)]);
        let fresh = doc_v3(&[(64, 1.1, true, false), (256, 1.1, true, false)]);
        let out = compare_docs(&fresh, &base, &Options::default());
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
        assert!(out.failures[0].contains("emitted_scalar_ms"));
        assert!(out.failures[0].contains("n=64"));
        let out = compare_docs(&base, &base, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn scalar_speedup_regression_warns() {
        let base = doc_v3(&[(64, 2.2, true, false)]);
        let fresh = doc_v3(&[(64, 1.5, true, false)]);
        let out = compare_docs(&fresh, &base, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(
            out.warnings.iter().any(|w| w.contains("scalar_speedup")),
            "{:?}",
            out.warnings
        );
    }

    /// A v4 row: the v3 extras plus the rules-on/off column pair.
    /// `(n, rules_on_ops, rules_off_ops, rules_on_ms)`; rules-off wall
    /// clock is pinned at 1.0 ms so `rules_on_ms` sets the ratio.
    fn doc_v4(rows: &[(i64, i64, i64, f64)]) -> Value {
        let sizes: Vec<String> = rows
            .iter()
            .map(|(n, on, off, on_ms)| {
                format!(
                    "{{\"n\": {n}, \"compile_ms\": 1.0, \"interp_lanes_ms\": 2.0, \
                     \"compiled_wide_ms\": 1.0, \"lanes_speedup\": 2.6, \
                     \"scalar_speedup\": 1.1, \"compile.pass.fuse.fused\": 175, \
                     \"rules_on_tape_len\": {on}, \"rules_off_tape_len\": {off}, \
                     \"rules_on_wide_ms\": {on_ms}, \"rules_off_wide_ms\": 1.0}}"
                )
            })
            .collect();
        parse(&format!(
            "{{\"schema\": \"absort-bench-eval/v4\", \"sizes\": [{}]}}",
            sizes.join(", ")
        ))
        .unwrap()
    }

    #[test]
    fn v4_fresh_must_carry_rules_columns() {
        let base = doc_v3(&[(64, 1.1, true, false)]);
        // A document that claims v4 but lacks the rules columns.
        let missing = parse(
            "{\"schema\": \"absort-bench-eval/v4\", \"sizes\": [{\"n\": 64, \
             \"compile_ms\": 1.0, \"interp_lanes_ms\": 2.0, \"compiled_wide_ms\": 1.0, \
             \"lanes_speedup\": 2.6, \"scalar_speedup\": 1.1, \
             \"compile.pass.fuse.fused\": 175}]}",
        )
        .unwrap();
        let out = compare_docs(&missing, &base, &Options::default());
        let text = out.failures.join("\n");
        assert!(text.contains("rules_on_tape_len"), "{text}");
        assert!(text.contains("rules_off_wide_ms"), "{text}");

        let present = doc_v4(&[(64, 700, 800, 1.0)]);
        let out = compare_docs(&present, &base, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.notes.iter().any(|n| n.contains("schema upgraded")));
    }

    #[test]
    fn v4_rules_on_tape_growth_fails() {
        // The injected-regression bite: rules-on growing past rules-off
        // must fail hard even when every column is present.
        let base = doc_v4(&[(64, 700, 800, 1.0)]);
        let grown = doc_v4(&[(64, 810, 800, 1.0)]);
        let out = compare_docs(&grown, &base, &Options::default());
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("rewrite regression")),
            "{:?}",
            out.failures
        );
        // Equality is fine: a network the ruleset cannot improve.
        let equal = doc_v4(&[(64, 800, 800, 1.0)]);
        let out = compare_docs(&equal, &base, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn v4_rules_latency_blowup_warns_but_does_not_fail() {
        let base = doc_v4(&[(64, 700, 800, 1.0)]);
        let slow = doc_v4(&[(64, 700, 800, 1.5)]);
        let out = compare_docs(&slow, &base, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(
            out.warnings
                .iter()
                .any(|w| w.contains("rules-on wide walk")),
            "{:?}",
            out.warnings
        );

        let close = doc_v4(&[(64, 700, 800, 1.05)]);
        let out = compare_docs(&close, &base, &Options::default());
        assert!(out.warnings.is_empty(), "5% above rules-off must not warn");
    }

    fn serve_doc(schema: &str, mode: &str, n: i64, rps: f64, completed: i64) -> Value {
        parse(&format!(
            "{{\"schema\": \"{schema}\", \"mode\": \"{mode}\", \"connections\": 4, \
             \"network\": \"mux-merger\", \"n\": {n}, \"requests\": 8000, \
             \"completed\": {completed}, \"duration_s\": 2.0, \
             \"throughput_rps\": {rps}, \"p50_us\": 110, \"p99_us\": 900, \
             \"p999_us\": 2100, \"mean_us\": 150, \"max_us\": 4000, \
             \"shed\": 12, \"retried\": 12, \"deadline_missed\": 0, \"errors\": 0}}"
        ))
        .unwrap()
    }

    #[test]
    fn serve_identical_docs_pass_clean() {
        let d = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 4000.0, 8000);
        let out = compare_serve_docs(&d, &d, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
    }

    #[test]
    fn serve_throughput_drop_warns_but_does_not_fail() {
        let base = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 4000.0, 8000);
        let slow = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 3000.0, 8000);
        let out = compare_serve_docs(&slow, &base, &Options::default());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(
            out.warnings.iter().any(|w| w.contains("throughput")),
            "{:?}",
            out.warnings
        );

        let close = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 3700.0, 8000);
        let out = compare_serve_docs(&close, &base, &Options::default());
        assert!(out.warnings.is_empty(), "7.5% drop must not warn");
    }

    #[test]
    fn serve_missing_column_is_coverage_loss() {
        let base = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 4000.0, 8000);
        let fresh = parse(
            "{\"schema\": \"absort-bench-serve/v1\", \"mode\": \"closed-loop\", \
             \"network\": \"mux-merger\", \"n\": 64, \"throughput_rps\": 4000.0}",
        )
        .unwrap();
        let out = compare_serve_docs(&fresh, &base, &Options::default());
        let text = out.failures.join("\n");
        assert!(text.contains("p99_us"), "{text}");
        assert!(text.contains("shed"), "{text}");
        assert!(text.contains("deadline_missed"), "{text}");
    }

    #[test]
    fn serve_zero_completed_fails() {
        let base = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 4000.0, 8000);
        let dead = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 0.0, 0);
        let out = compare_serve_docs(&dead, &base, &Options::default());
        assert!(
            out.failures.iter().any(|f| f.contains("zero requests")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn serve_workload_shape_change_skips_throughput_compare() {
        let base = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 4000.0, 8000);
        let fixed = serve_doc("absort-bench-serve/v1", "fixed-rate", 64, 900.0, 8000);
        let wider = serve_doc("absort-bench-serve/v1", "closed-loop", 256, 900.0, 8000);
        for fresh in [fixed, wider] {
            let out = compare_serve_docs(&fresh, &base, &Options::default());
            assert!(out.failures.is_empty(), "{:?}", out.failures);
            assert!(out.warnings.is_empty(), "{:?}", out.warnings);
            assert!(
                out.notes.iter().any(|n| n.contains("not compared")),
                "{:?}",
                out.notes
            );
        }
    }

    #[test]
    fn serve_family_dispatch_and_cross_family_fails() {
        let serve = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 4000.0, 8000);
        let eval = doc("absort-bench-eval/v2", &[(64, 2.6)], None);
        assert_eq!(family(&serve), "serve");
        assert_eq!(family(&eval), "eval");
        // A serve report diffed against an eval baseline is a schema
        // failure, not a silent pass.
        let out = compare_serve_docs(&serve, &eval, &Options::default());
        assert!(
            out.failures.iter().any(|f| f.contains("foreign schema")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn serve_schema_regression_fails() {
        let v1 = serve_doc("absort-bench-serve/v1", "closed-loop", 64, 4000.0, 8000);
        let v2 = serve_doc("absort-bench-serve/v2", "closed-loop", 64, 4000.0, 8000);
        let out = compare_serve_docs(&v1, &v2, &Options::default());
        assert!(out.failures.iter().any(|f| f.contains("schema regression")));
    }

    #[test]
    fn foreign_schema_fails() {
        let good = doc("absort-bench-eval/v2", &[(64, 2.6)], None);
        let bad = doc("someone-elses-bench/v9", &[(64, 2.6)], None);
        let out = compare_docs(&bad, &good, &Options::default());
        assert!(out.failures.iter().any(|f| f.contains("foreign schema")));
    }
}
