//! Load generator and chaos probe for the `absort serve` daemon.
//!
//! Two workload modes write `BENCH_serve.json` (schema
//! `absort-bench-serve/v1`):
//!
//! * **closed-loop** (default): `--conns` client threads each issue
//!   `--requests` sort requests back to back; offered load tracks
//!   service rate, so throughput is the daemon's sustained capacity.
//! * **fixed-rate** (`--rate R`): the same threads pace their sends to
//!   an aggregate target of `R` requests/second, which keeps offered
//!   load constant and makes shedding visible under overload.
//!
//! Every `Ok` sort reply is differentially checked against the popcount
//! oracle — a single cross-request corruption fails the whole run.
//! `Overloaded` replies are retried with capped exponential backoff
//! (base 1 ms, cap 100 ms) and counted, so the report separates shed
//! load from lost load.
//!
//! `--chaos-probe` replaces the load test with a liveness audit:
//! corrupt frames, a bad protocol version, an oversized length prefix,
//! and a forced worker panic are thrown at the daemon, which must
//! answer each with a typed rejection (or a correct result, for the
//! panic's solo retry) and keep serving.
//!
//! With no `--addr`, an in-process server is spawned on a free port
//! (with chaos hooks armed when probing); `--addr` targets an external
//! daemon, which is how CI exercises the real binary.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use absort_bench::bench_bits;
use absort_serve::{
    sorted_oracle, Client, NetKind, ReplyPayload, Request, ServeConfig, Server, Status,
};

const BACKOFF_BASE_MS: u64 = 1;
const BACKOFF_CAP_MS: u64 = 100;
const MAX_RETRIES: u32 = 64;

#[derive(Clone)]
struct Opts {
    addr: Option<String>,
    conns: usize,
    requests: usize,
    network: NetKind,
    n: usize,
    deadline_ms: u32,
    rate: Option<f64>,
    out: String,
    chaos_probe: bool,
}

/// Shared tallies across client threads.
#[derive(Default)]
struct Tally {
    completed: AtomicU64,
    shed: AtomicU64,
    retried: AtomicU64,
    deadline_missed: AtomicU64,
    errors: AtomicU64,
    corrupt: AtomicU64,
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn backoff(attempt: u32) -> Duration {
    let ms = BACKOFF_BASE_MS
        .saturating_mul(1u64 << attempt.min(16))
        .min(BACKOFF_CAP_MS);
    Duration::from_millis(ms)
}

/// One client thread: issues `requests` sorts, retrying shed load with
/// capped exponential backoff, and returns per-request latencies in
/// microseconds (successful requests only).
fn client_loop(opts: &Opts, addr: &str, conn_idx: usize, tally: &Tally) -> Vec<u64> {
    let mut client = match Client::connect_retry(addr, Duration::from_secs(5)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("conn {conn_idx}: connect failed: {e}");
            tally
                .errors
                .fetch_add(opts.requests as u64, Ordering::Relaxed);
            return Vec::new();
        }
    };
    let mut latencies = Vec::with_capacity(opts.requests);
    // Fixed-rate pacing: each of the `conns` threads carries rate/conns.
    let pace = opts
        .rate
        .map(|r| Duration::from_secs_f64(opts.conns as f64 / r));
    let start = Instant::now();

    for i in 0..opts.requests {
        if let Some(period) = pace {
            let due = start + period * i as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let seed = (conn_idx as u64) << 32 | i as u64;
        let bits = bench_bits(opts.n, seed);
        let req_id = seed;
        let mut req = Request::sort(opts.network, req_id, &bits);
        if opts.deadline_ms > 0 {
            req = req.with_deadline_ms(opts.deadline_ms);
        }

        let mut attempt = 0u32;
        loop {
            let t0 = Instant::now();
            let reply = match client.call(&req) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("conn {conn_idx}: request {i} failed: {e}");
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    return latencies;
                }
            };
            match reply.status {
                Status::Ok => {
                    if reply.req_id != req_id {
                        tally.corrupt.fetch_add(1, Ordering::Relaxed);
                    } else {
                        match &reply.payload {
                            ReplyPayload::Bits(out) if *out == sorted_oracle(&bits) => {
                                tally.completed.fetch_add(1, Ordering::Relaxed);
                                latencies.push(t0.elapsed().as_micros() as u64);
                            }
                            _ => {
                                tally.corrupt.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    break;
                }
                Status::Overloaded => {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    if attempt >= MAX_RETRIES {
                        tally.errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    std::thread::sleep(backoff(attempt));
                    attempt += 1;
                    tally.retried.fetch_add(1, Ordering::Relaxed);
                }
                Status::DeadlineExceeded => {
                    tally.deadline_missed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                _ => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
    latencies
}

fn run_load(opts: &Opts, addr: &str) -> Result<String, String> {
    let tally = Arc::new(Tally::default());
    let start = Instant::now();
    let handles: Vec<_> = (0..opts.conns)
        .map(|c| {
            let opts = opts.clone();
            let addr = addr.to_string();
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || client_loop(&opts, &addr, c, &tally))
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().unwrap_or_default());
    }
    let duration_s = start.elapsed().as_secs_f64();

    let corrupt = tally.corrupt.load(Ordering::Relaxed);
    if corrupt > 0 {
        return Err(format!(
            "{corrupt} replies failed the popcount-oracle differential check"
        ));
    }

    latencies.sort_unstable();
    let completed = tally.completed.load(Ordering::Relaxed);
    let mean_us = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    let mode = if opts.rate.is_some() {
        "fixed-rate"
    } else {
        "closed-loop"
    };
    Ok(format!(
        concat!(
            "{{\n",
            "  \"schema\": \"absort-bench-serve/v1\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"connections\": {conns},\n",
            "  \"network\": \"{network}\",\n",
            "  \"n\": {n},\n",
            "  \"requests\": {requests},\n",
            "  \"completed\": {completed},\n",
            "  \"duration_s\": {duration_s:.3},\n",
            "  \"throughput_rps\": {rps:.1},\n",
            "  \"p50_us\": {p50},\n",
            "  \"p99_us\": {p99},\n",
            "  \"p999_us\": {p999},\n",
            "  \"mean_us\": {mean},\n",
            "  \"max_us\": {max},\n",
            "  \"shed\": {shed},\n",
            "  \"retried\": {retried},\n",
            "  \"deadline_missed\": {deadline_missed},\n",
            "  \"errors\": {errors}\n",
            "}}\n"
        ),
        mode = mode,
        conns = opts.conns,
        network = opts.network.name(),
        n = opts.n,
        requests = opts.conns * opts.requests,
        completed = completed,
        duration_s = duration_s,
        rps = completed as f64 / duration_s.max(1e-9),
        p50 = percentile(&latencies, 0.50),
        p99 = percentile(&latencies, 0.99),
        p999 = percentile(&latencies, 0.999),
        mean = mean_us,
        max = latencies.last().copied().unwrap_or(0),
        shed = tally.shed.load(Ordering::Relaxed),
        retried = tally.retried.load(Ordering::Relaxed),
        deadline_missed = tally.deadline_missed.load(Ordering::Relaxed),
        errors = tally.errors.load(Ordering::Relaxed),
    ))
}

/// Chaos liveness audit. Each probe damages the protocol in a specific
/// way and checks the daemon's typed response; every probe ends with a
/// proof-of-life request.
fn run_chaos_probe(opts: &Opts, addr: &str) -> Result<(), String> {
    let n = opts.n;
    let alive = |c: &mut Client, probe: &str| -> Result<(), String> {
        let bits = bench_bits(n, 0xC0FFEE);
        let reply = c
            .call(&Request::sort(opts.network, 7, &bits))
            .map_err(|e| format!("{probe}: liveness request failed: {e}"))?;
        match (&reply.status, &reply.payload) {
            (Status::Ok, ReplyPayload::Bits(out)) if *out == sorted_oracle(&bits) => Ok(()),
            _ => Err(format!(
                "{probe}: liveness reply was {} instead of a correct sort",
                reply.status.name()
            )),
        }
    };

    // Probe 1: garbage body behind a valid length prefix -> typed
    // Malformed, connection stays usable.
    let mut c =
        Client::connect_retry(addr, Duration::from_secs(5)).map_err(|e| format!("connect: {e}"))?;
    let garbage = [12u32.to_le_bytes().to_vec(), vec![0xEE; 12]].concat();
    c.send_raw(&garbage).map_err(|e| format!("garbage: {e}"))?;
    let reply = c.recv().map_err(|e| format!("garbage: no reply: {e}"))?;
    if reply.status != Status::Malformed {
        return Err(format!(
            "garbage frame: expected malformed, got {}",
            reply.status.name()
        ));
    }
    alive(&mut c, "garbage frame")?;
    eprintln!("probe ok: garbage frame -> typed malformed, connection live");

    // Probe 2: wrong protocol version -> typed Malformed, connection
    // stays usable.
    let bits = bench_bits(n, 1);
    let mut frame = {
        let mut f = Vec::new();
        let body_start = 4;
        let req = Request::sort(opts.network, 9, &bits);
        f.extend_from_slice(&absort_serve::proto::encode_request(&req));
        f[body_start + 1] = 0xFF; // version byte
        f
    };
    c.send_raw(&frame)
        .map_err(|e| format!("bad version: {e}"))?;
    let reply = c
        .recv()
        .map_err(|e| format!("bad version: no reply: {e}"))?;
    if reply.status != Status::Malformed {
        return Err(format!(
            "bad version: expected malformed, got {}",
            reply.status.name()
        ));
    }
    alive(&mut c, "bad version")?;
    eprintln!("probe ok: bad version -> typed malformed, connection live");

    // Probe 3: oversized length prefix -> the connection is poisoned
    // and closed, but the daemon accepts fresh connections.
    frame = (u32::MAX).to_le_bytes().to_vec();
    c.send_raw(&frame).map_err(|e| format!("oversized: {e}"))?;
    let mut fresh = Client::connect_retry(addr, Duration::from_secs(5))
        .map_err(|e| format!("oversized: daemon dead: {e}"))?;
    alive(&mut fresh, "oversized prefix")?;
    eprintln!("probe ok: oversized prefix -> connection cut, daemon live");

    // Probe 4: forced worker panic. The batched path dies; the solo
    // scalar retry must still produce the correct sorted output. A
    // daemon without --chaos answers with a typed Unsupported instead.
    let bits = bench_bits(n, 2);
    let mut req = Request::sort(opts.network, 11, &bits);
    req.kind = absort_serve::RequestKind::ChaosPanic;
    let reply = fresh.call(&req).map_err(|e| format!("chaos panic: {e}"))?;
    match (&reply.status, &reply.payload) {
        (Status::Ok, ReplyPayload::Bits(out)) if *out == sorted_oracle(&bits) => {
            eprintln!("probe ok: forced panic -> isolated, solo retry returned correct sort");
        }
        (Status::Unsupported, _) => {
            eprintln!("probe ok: chaos hooks disarmed -> typed unsupported (run daemon with --chaos to exercise panic isolation)");
        }
        _ => {
            return Err(format!(
                "chaos panic: expected ok-with-correct-sort or unsupported, got {}",
                reply.status.name()
            ));
        }
    }
    alive(&mut fresh, "after panic")?;
    eprintln!("probe ok: daemon serving normally after all probes");
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_serve [--addr HOST:PORT] [--conns N] [--requests N]\n\
         \u{20}                  [--network prefix|mux-merger|nonadaptive] [--n N]\n\
         \u{20}                  [--deadline-ms N] [--rate RPS] [--quick]\n\
         \u{20}                  [--out <path>] [--chaos-probe]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = Opts {
        addr: None,
        conns: 4,
        requests: 2000,
        network: NetKind::MuxMerger,
        n: 64,
        deadline_ms: 0,
        rate: None,
        out: String::from("BENCH_serve.json"),
        chaos_probe: false,
    };
    let mut requests_set = false;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => opts.addr = Some(args.next().unwrap_or_else(|| usage())),
            "--conns" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => opts.conns = v,
                _ => usage(),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => {
                    opts.requests = v;
                    requests_set = true;
                }
                _ => usage(),
            },
            "--network" => match args.next().as_deref().and_then(NetKind::parse) {
                Some(k) => opts.network = k,
                None => usage(),
            },
            "--n" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 2 && v.is_power_of_two() => opts.n = v,
                _ => {
                    eprintln!("error: --n must be a power of two >= 2");
                    std::process::exit(2);
                }
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.deadline_ms = v,
                None => usage(),
            },
            "--rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => opts.rate = Some(v),
                _ => usage(),
            },
            "--quick" => quick = true,
            "--out" => opts.out = args.next().unwrap_or_else(|| usage()),
            "--chaos-probe" => opts.chaos_probe = true,
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }
    if quick && !requests_set {
        opts.requests = 200;
    }

    // No --addr: spawn an in-process server (chaos hooks armed when
    // probing so the forced-panic probe exercises the real ladder).
    let local = if opts.addr.is_none() {
        let cfg = ServeConfig {
            addr: String::from("127.0.0.1:0"),
            chaos: opts.chaos_probe,
            ..ServeConfig::default()
        };
        let server = match Server::start(cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot start in-process server: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("in-process server on {}", server.local_addr());
        Some(server)
    } else {
        None
    };
    let addr = match &opts.addr {
        Some(a) => a.clone(),
        None => local.as_ref().unwrap().local_addr().to_string(),
    };

    if opts.chaos_probe {
        match run_chaos_probe(&opts, &addr) {
            Ok(()) => {
                eprintln!("chaos probe passed: daemon survived every fault");
                if let Some(server) = local {
                    server.join();
                }
            }
            Err(e) => {
                eprintln!("chaos probe FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    eprintln!(
        "load: {} conns x {} requests, network={}, n={}, mode={}",
        opts.conns,
        opts.requests,
        opts.network.name(),
        opts.n,
        if opts.rate.is_some() {
            "fixed-rate"
        } else {
            "closed-loop"
        },
    );
    let doc = match run_load(&opts, &addr) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if let Some(server) = local {
        let stats = server.join();
        eprintln!(
            "server stats: {} requests, {} ok, {} shed, {} deadline-missed, {} panics isolated",
            stats.requests,
            stats.replies_ok,
            stats.shed,
            stats.deadline_missed,
            stats.panics_isolated,
        );
    }

    let mut f = match std::fs::File::create(&opts.out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", opts.out);
            std::process::exit(1);
        }
    };
    if let Err(e) = f.write_all(doc.as_bytes()) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!("wrote {}", opts.out);
}
