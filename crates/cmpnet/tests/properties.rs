//! Property-based tests of the comparator-network substrate: random
//! networks, random data, differential checks between the word-level and
//! bit-parallel evaluators, and structural invariants.

use absort_cmpnet::{batcher, verify, Network, Stage};
use proptest::prelude::*;
use rand::prelude::*;

/// Builds a random comparator network over `n` lines.
fn random_network(seed: u64, n: usize, n_stages: usize) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(n);
    for _ in 0..n_stages {
        if rng.gen_bool(0.2) {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            net.push_permute(perm);
        } else {
            let mut lines: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                lines.swap(i, rng.gen_range(0..=i));
            }
            let pairs: Vec<(u32, u32)> = lines
                .chunks(2)
                .filter(|c| c.len() == 2)
                .filter(|_| rng.gen_bool(0.7))
                .map(|c| (c[0].min(c[1]), c[0].max(c[1])))
                .collect();
            if !pairs.is_empty() {
                net.push_compare(pairs);
            }
        }
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Word-level application on 0/1 data agrees with the 64-lane binary
    /// evaluator on random networks.
    #[test]
    fn binary_lanes_match_word_apply(seed in any::<u64>(), n in 2usize..24, stages in 1usize..20) {
        let net = random_network(seed, n, stages);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let vectors: Vec<Vec<u8>> = (0..64)
            .map(|_| (0..n).map(|_| u8::from(rng.gen::<bool>())).collect())
            .collect();
        // pack into lanes
        let mut lanes = vec![0u64; n];
        for (v, vec) in vectors.iter().enumerate() {
            for (i, &bit) in vec.iter().enumerate() {
                if bit == 1 {
                    lanes[i] |= 1 << v;
                }
            }
        }
        net.apply_binary_lanes(&mut lanes);
        for (v, vec) in vectors.iter().enumerate() {
            let mut scalar = vec.clone();
            net.apply(&mut scalar);
            let got: Vec<u8> = (0..n).map(|i| (lanes[i] >> v & 1) as u8).collect();
            prop_assert_eq!(&got, &scalar, "vector {}", v);
        }
    }

    /// Comparator networks never change the multiset of values.
    #[test]
    fn networks_permute_their_input(seed in any::<u64>(), n in 2usize..16, stages in 1usize..16) {
        let net = random_network(seed, n, stages);
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let data: Vec<i32> = (0..n).map(|_| rng.gen_range(-20..20)).collect();
        let mut out = data.clone();
        net.apply(&mut out);
        let mut a = data;
        let mut b = out;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Comparator networks are monotone: applying to pointwise-≤ inputs
    /// yields pointwise-≤ outputs. (The classical lemma behind the
    /// zero-one principle.)
    #[test]
    fn networks_are_monotone(seed in any::<u64>(), n in 2usize..12, stages in 1usize..12) {
        let net = random_network(seed, n, stages);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let x: Vec<i32> = (0..n).map(|_| rng.gen_range(0..50)).collect();
        let y: Vec<i32> = x.iter().map(|&v| v + rng.gen_range(0..10)).collect();
        let mut ox = x;
        let mut oy = y;
        net.apply(&mut ox);
        net.apply(&mut oy);
        for (a, b) in ox.iter().zip(&oy) {
            prop_assert!(a <= b, "monotonicity violated");
        }
    }

    /// Cost is additive over concatenation and depth is subadditive.
    #[test]
    fn cost_additive_depth_subadditive(s1 in any::<u64>(), s2 in any::<u64>(), n in 2usize..12) {
        let a = random_network(s1, n, 6);
        let b = random_network(s2, n, 6);
        let mut cat = Network::new(n);
        cat.extend(&a);
        cat.extend(&b);
        prop_assert_eq!(cat.cost(), a.cost() + b.cost());
        prop_assert!(cat.depth() <= a.depth() + b.depth());
    }

    /// Sorting a sorted input through Batcher is the identity
    /// (idempotence at the network level).
    #[test]
    fn batcher_idempotent(k in 1u32..=6, ones in any::<u64>()) {
        let n = 1usize << k;
        let net = batcher::odd_even_merge_sort(n);
        let ones = (ones as usize) % (n + 1);
        let mut v: Vec<u8> = vec![0; n - ones];
        v.extend(std::iter::repeat_n(1, ones));
        let orig = v.clone();
        net.apply(&mut v);
        prop_assert_eq!(v, orig);
    }
}

#[test]
fn zero_one_principle_forward_direction() {
    // A network that sorts all binary inputs sorts arbitrary words: spot
    // check the implication on Batcher-8 with random word data.
    let net = batcher::odd_even_merge_sort(8);
    assert!(verify::is_sorting_network(&net));
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..500 {
        let mut v: Vec<i64> = (0..8).map(|_| rng.gen_range(-1000..1000)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        net.apply(&mut v);
        assert_eq!(v, expect);
    }
}

#[test]
fn stage_structure_is_preserved() {
    let net = batcher::odd_even_merge_sort(16);
    let mut comparators = 0u64;
    for s in net.stages() {
        if let Stage::Compare(p) = s {
            comparators += p.len() as u64;
            // disjointness within each stage
            let mut seen = [false; 16];
            for &(i, j) in p {
                assert!(!seen[i as usize] && !seen[j as usize]);
                seen[i as usize] = true;
                seen[j as usize] = true;
            }
        }
    }
    assert_eq!(comparators, net.cost());
}
