//! Batcher's sorting networks (odd-even merge and bitonic).
//!
//! These are the classical nonadaptive baselines the paper measures
//! against: Batcher's n-input networks have `lg n (lg n + 1)/2` depth and
//! `O(n lg² n)` comparators, and their *binary* versions are exactly what
//! the paper's adaptive constructions beat by a `lg` to `lg²` factor in
//! cost while matching sorting time.

use crate::network::Network;

/// ASAP-levels a flat comparator list into maximal parallel stages and
/// returns the resulting network. Comparators are placed at
/// `1 + max(level(i), level(j))`, preserving the dependency order of the
/// input list.
pub fn from_pairs(n: usize, pairs: &[(u32, u32)]) -> Network {
    let mut level = vec![0usize; n];
    let mut stages: Vec<Vec<(u32, u32)>> = Vec::new();
    for &(i, j) in pairs {
        let l = level[i as usize].max(level[j as usize]);
        if l == stages.len() {
            stages.push(Vec::new());
        }
        stages[l].push((i, j));
        level[i as usize] = l + 1;
        level[j as usize] = l + 1;
    }
    let mut net = Network::new(n);
    for st in stages {
        net.push_compare(st);
    }
    net
}

fn oem_merge(pairs: &mut Vec<(u32, u32)>, lo: usize, n: usize, r: usize) {
    let m = r * 2;
    if m < n {
        oem_merge(pairs, lo, n, m);
        oem_merge(pairs, lo + r, n, m);
        let mut i = lo + r;
        while i + r < lo + n {
            pairs.push((i as u32, (i + r) as u32));
            i += m;
        }
    } else {
        pairs.push((lo as u32, (lo + r) as u32));
    }
}

fn oem_sort_rec(pairs: &mut Vec<(u32, u32)>, lo: usize, n: usize) {
    if n > 1 {
        let m = n / 2;
        oem_sort_rec(pairs, lo, m);
        oem_sort_rec(pairs, lo + m, m);
        oem_merge(pairs, lo, n, 1);
    }
}

/// Batcher's odd-even merge sorting network on `n = 2^k` inputs
/// (Fig. 4(a) shows the 16-input instance).
pub fn odd_even_merge_sort(n: usize) -> Network {
    assert!(n.is_power_of_two(), "Batcher OEM needs a power-of-two size");
    let mut pairs = Vec::new();
    oem_sort_rec(&mut pairs, 0, n);
    from_pairs(n, &pairs)
}

/// Batcher's odd-even *merging* network: merges the sorted halves
/// `0..n/2` and `n/2..n` into one sorted sequence.
pub fn odd_even_merge(n: usize) -> Network {
    assert!(n.is_power_of_two() && n >= 2);
    let mut pairs = Vec::new();
    oem_merge(&mut pairs, 0, n, 1);
    from_pairs(n, &pairs)
}

fn bitonic_merge(pairs: &mut Vec<(u32, u32)>, lo: usize, n: usize) {
    if n > 1 {
        let m = n / 2;
        for i in lo..lo + m {
            pairs.push((i as u32, (i + m) as u32));
        }
        bitonic_merge(pairs, lo, m);
        bitonic_merge(pairs, lo + m, m);
    }
}

fn bitonic_sort_rec(pairs: &mut Vec<(u32, u32)>, lo: usize, n: usize, asc: bool) {
    if n > 1 {
        let m = n / 2;
        bitonic_sort_rec(pairs, lo, m, true);
        bitonic_sort_rec(pairs, lo + m, m, false);
        if asc {
            bitonic_merge(pairs, lo, n);
        } else {
            // Descending merge: emit with swapped ends. We express the whole
            // network with ascending comparators by flipping pair order.
            let mut sub = Vec::new();
            bitonic_merge(&mut sub, lo, n);
            pairs.extend(sub.into_iter().map(|(i, j)| (j, i)));
        }
    }
}

/// Batcher's bitonic sorting network on `n = 2^k` inputs.
///
/// Note: descending sub-merges are expressed by reversed comparator pairs
/// `(j, i)` (min still goes to the first line of the pair), so the network
/// uses only standard min/max comparators.
pub fn bitonic_sort(n: usize) -> Network {
    assert!(
        n.is_power_of_two(),
        "bitonic sort needs a power-of-two size"
    );
    let mut pairs = Vec::new();
    bitonic_sort_rec(&mut pairs, 0, n, true);
    from_pairs(n, &pairs)
}

/// Exact comparator count of Batcher's odd-even merge sort on `n = 2^k`
/// inputs: `(lg²n − lg n + 4)·n/4 − 1` (Knuth, Vol. 3, §5.3.4).
pub fn oem_sort_cost(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    if n == 1 {
        return 0;
    }
    let p = n.trailing_zeros() as u64;
    (p * p - p + 4) * (n as u64) / 4 - 1
}

/// Depth of Batcher's networks on `n = 2^k` inputs:
/// `lg n (lg n + 1)/2`.
pub fn batcher_depth(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    let p = n.trailing_zeros() as u64;
    p * (p + 1) / 2
}

/// Exact comparator count of the bitonic sorting network on `n = 2^k`
/// inputs: `n lg n (lg n + 1)/4`.
pub fn bitonic_sort_cost(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    let p = n.trailing_zeros() as u64;
    (n as u64) * p * (p + 1) / 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorting_network;
    use rand::prelude::*;

    #[test]
    fn oem_sorts_exhaustively_up_to_16() {
        for k in 1..=4 {
            let n = 1 << k;
            let net = odd_even_merge_sort(n);
            assert!(is_sorting_network(&net), "OEM n={n} failed 0-1 check");
        }
    }

    #[test]
    fn bitonic_sorts_exhaustively_up_to_16() {
        for k in 1..=4 {
            let n = 1 << k;
            let net = bitonic_sort(n);
            assert!(is_sorting_network(&net), "bitonic n={n} failed 0-1 check");
        }
    }

    #[test]
    fn oem_cost_matches_knuth_formula() {
        for k in 1..=10 {
            let n = 1 << k;
            let net = odd_even_merge_sort(n);
            assert_eq!(net.cost(), oem_sort_cost(n), "n={n}");
        }
    }

    #[test]
    fn oem_depth_matches_formula() {
        for k in 1..=10 {
            let n = 1 << k;
            let net = odd_even_merge_sort(n);
            assert_eq!(net.depth() as u64, batcher_depth(n), "n={n}");
        }
    }

    #[test]
    fn bitonic_cost_and_depth_match_formulas() {
        for k in 1..=10 {
            let n = 1 << k;
            let net = bitonic_sort(n);
            assert_eq!(net.cost(), bitonic_sort_cost(n), "cost n={n}");
            assert_eq!(net.depth() as u64, batcher_depth(n), "depth n={n}");
        }
    }

    #[test]
    fn oem_merge_merges_sorted_halves() {
        let net = odd_even_merge(16);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut v: Vec<i32> = (0..16).map(|_| rng.gen_range(0..100)).collect();
            v[..8].sort_unstable();
            v[8..].sort_unstable();
            let mut expect = v.clone();
            expect.sort_unstable();
            net.apply(&mut v);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn oem_sorts_random_words() {
        let net = odd_even_merge_sort(64);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let mut v: Vec<u64> = (0..64).map(|_| rng.gen()).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            net.apply(&mut v);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn from_pairs_levels_greedily() {
        // (0,1) and (2,3) can share a stage; (1,2) must follow.
        let net = from_pairs(4, &[(0, 1), (2, 3), (1, 2)]);
        assert_eq!(net.n_compare_stages(), 2);
        assert_eq!(net.depth(), 2);
    }
}
