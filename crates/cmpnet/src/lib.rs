//! # absort-cmpnet — word-level comparator networks
//!
//! The classical *nonadaptive* sorting-network substrate the paper builds
//! on and compares against: networks of two-input comparators (Fig. 1)
//! with fixed interconnection wiring. A [`Network`] is a sequence of
//! stages, each either a set of disjoint comparators or a free rewiring
//! permutation (the paper treats shuffle connections as cost-free wiring).
//!
//! Provides:
//!
//! * application to arbitrary `Ord` data ([`Network::apply`]) and a
//!   64-lane bit-parallel binary evaluator ([`Network::apply_binary_lanes`])
//!   used for exhaustive zero-one-principle verification;
//! * generators for the networks the paper uses or cites:
//!   Batcher's odd-even merge sort and bitonic sort ([`batcher`]),
//!   the balanced merging block of Dowd–Perl–Rudolph–Saks ([`balanced`]),
//!   the alternative odd-even merge network of Fig. 4(b) ([`fig4`]),
//!   and the 4-input example of Fig. 1 ([`catalog`]);
//! * the zero-one-principle verifier ([`verify`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balanced;
pub mod batcher;
pub mod catalog;
pub mod draw;
pub mod fig4;
pub mod network;
pub mod periodic;
pub mod verify;

pub use network::{Network, Stage};
pub use verify::{first_unsorted_input, is_sorting_network};
