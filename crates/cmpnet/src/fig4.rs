//! The alternative odd-even merge sorting network of Fig. 4(b).
//!
//! Batcher's odd-even merge sorter (Fig. 4(a)) sorts two halves and merges
//! them with even/odd mergers. The paper's variant replaces the two
//! half-size sorters with `n/2` two-input sorters, the even and odd
//! mergers with `n/2`-way mergers (which, merging single elements, are
//! just `n/2`-input sorters), and performs the final combination with a
//! *balanced merging block* fed by the shuffled concatenation of the two
//! sorted halves (Theorem 1).
//!
//! As the figure caption notes, the leading comparator stage and shuffle
//! connection in Fig. 4(b) are redundant (they are subsumed by the
//! `n/2`-way mergers being full sorters); [`fig4b_sort`] builds the
//! essential structure, and [`fig4b_sort_literal`] the literal figure
//! including the redundant stage, so both can be verified.

use crate::balanced::balanced_merging_block;
use crate::network::{shuffle_perm, unshuffle_perm, Network};

/// The essential Fig. 4(b) network: recursively sort the two halves, then
/// shuffle and run the balanced merging block.
///
/// Cost recurrence `C(n) = 2·C(n/2) + (n/2)·lg n` gives `O(n lg² n)`
/// comparators — matching the paper's remark that recursively replacing
/// the n/2-way mergers with half-size odd-even merge sorters yields an
/// `O(n lg² n)`-cost, `O(lg² n)`-depth binary sorting network.
pub fn fig4b_sort(n: usize) -> Network {
    assert!(n.is_power_of_two(), "Fig. 4(b) sorter needs 2^k inputs");
    let mut net = Network::new(n);
    if n == 1 {
        return net;
    }
    if n == 2 {
        net.push_compare(vec![(0, 1)]);
        return net;
    }
    let half = fig4b_sort(n / 2);
    net.extend_embedded(&half, 0);
    net.extend_embedded(&half, n / 2);
    net.push_permute(shuffle_perm(n));
    net.extend(&balanced_merging_block(n));
    net
}

/// The literal Fig. 4(b) drawing: a leading stage of `n/2` comparators on
/// adjacent pairs and a shuffle connection (both redundant), then the
/// unshuffle into two `n/2`-way mergers (realised as half-size sorters),
/// the re-shuffle, and the balanced merging block.
pub fn fig4b_sort_literal(n: usize) -> Network {
    assert!(
        n.is_power_of_two() && n >= 4,
        "literal Fig. 4(b) needs n >= 4"
    );
    let mut net = Network::new(n);
    // Redundant pair-sorter stage on (2i, 2i+1).
    net.push_compare((0..n as u32 / 2).map(|i| (2 * i, 2 * i + 1)).collect());
    // Redundant shuffle, then the unshuffle that routes evens to the upper
    // merger and odds to the lower one. (The figure draws the shuffle to
    // exhibit the relation to Batcher's construction.)
    net.push_permute(shuffle_perm(n));
    net.push_permute(unshuffle_perm(n));
    net.push_permute(unshuffle_perm(n));
    // Two n/2-way mergers == two n/2-input sorters.
    let half = fig4b_sort(n / 2);
    net.extend_embedded(&half, 0);
    net.extend_embedded(&half, n / 2);
    // Shuffled concatenation into the balanced merging block (Theorem 1).
    net.push_permute(shuffle_perm(n));
    net.extend(&balanced_merging_block(n));
    net
}

/// Closed-form comparator count of [`fig4b_sort`]:
/// `C(n) = 2 C(n/2) + (n/2) lg n`, `C(2) = 1`.
pub fn fig4b_cost(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    match n {
        1 => 0,
        2 => 1,
        _ => 2 * fig4b_cost(n / 2) + (n as u64 / 2) * n.trailing_zeros() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorting_network;

    #[test]
    fn fig4b_sorts_exhaustively() {
        for k in 1..=4 {
            let n = 1 << k;
            assert!(is_sorting_network(&fig4b_sort(n)), "n={n}");
        }
    }

    #[test]
    fn fig4b_16_input_instance_sorts() {
        // The exact instance drawn in the paper.
        assert!(is_sorting_network(&fig4b_sort(16)));
    }

    #[test]
    fn literal_figure_also_sorts() {
        for n in [4, 8, 16] {
            assert!(is_sorting_network(&fig4b_sort_literal(n)), "n={n}");
        }
    }

    #[test]
    fn cost_matches_closed_form() {
        for k in 1..=10 {
            let n = 1 << k;
            assert_eq!(fig4b_sort(n).cost(), fig4b_cost(n), "n={n}");
        }
    }

    #[test]
    fn cost_closed_form_is_n_lgn_lgn_plus_1_over_4() {
        // Solving C(n) = 2 C(n/2) + (n/2) lg n with C(2) = 1 gives exactly
        // n·lg n·(lg n + 1)/4 — the same count as Batcher's bitonic sorter.
        for k in 1..=14u64 {
            let n = 1usize << k;
            assert_eq!(fig4b_cost(n), (n as u64) * k * (k + 1) / 4, "n={n}");
        }
    }

    #[test]
    fn depth_is_theta_lg2n() {
        for k in 2..=8 {
            let n = 1usize << k;
            let d = fig4b_sort(n).depth();
            // depth = sum_{i=1..k} i = k(k+1)/2
            assert_eq!(d, k * (k + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn literal_costs_n_half_more() {
        let n = 16;
        assert_eq!(fig4b_sort_literal(n).cost(), fig4b_cost(n) + n as u64 / 2);
    }
}
