//! Knuth-style ASCII diagrams of comparator networks.
//!
//! The paper's Figs. 1 and 4 are drawn in the classic style: one
//! horizontal line per input, vertical connectors for comparators. This
//! module regenerates those drawings from the executable networks, so
//! `repro fig1` can show the actual figure next to its verified numbers.
//!
//! ```text
//! x0 ─●──●─────
//!     │  │
//! x1 ─●──┼──●──
//!        │  │
//! x2 ─●──●──●──
//!     │
//! x3 ─●────────
//! ```
//! (Comparators in the same stage that don't overlap share a column.)

use crate::network::{Network, Stage};

/// Renders the network as an ASCII wiring diagram. Permute stages are
/// shown as labelled crossing columns. Intended for small networks
/// (width ≤ 32, a few hundred comparators).
#[allow(clippy::needless_range_loop, clippy::type_complexity)] // canvas painting indexes rows/cols directly
pub fn draw(net: &Network) -> String {
    let n = net.n();
    assert!(n <= 32, "ASCII drawing limited to 32 lines, got {n}");
    if n == 0 {
        // An empty network draws as an empty picture; without this the
        // `2 * n - 1` row count below underflows.
        return String::new();
    }
    // Each line of the picture is 2 rows: the wire row and the gap row.
    // Build columns: each comparator stage may need several columns if
    // comparators overlap vertically.
    #[derive(Clone, Copy)]
    enum Col {
        Compare(u32, u32),
        Permute,
    }
    let mut columns: Vec<Vec<Col>> = Vec::new();
    for stage in net.stages() {
        match stage {
            Stage::Compare(pairs) => {
                // greedy column packing: comparators whose (min..max)
                // ranges overlap go to different columns
                let mut cols: Vec<(Vec<Col>, Vec<(u32, u32)>)> = Vec::new();
                for &(i, j) in pairs {
                    let (lo, hi) = (i.min(j), i.max(j));
                    let slot = cols
                        .iter_mut()
                        .find(|(_, ranges)| ranges.iter().all(|&(a, b)| hi < a || lo > b));
                    match slot {
                        Some((col, ranges)) => {
                            col.push(Col::Compare(i, j));
                            ranges.push((lo, hi));
                        }
                        None => cols.push((vec![Col::Compare(i, j)], vec![(lo, hi)])),
                    }
                }
                for (col, _) in cols {
                    columns.push(col);
                }
            }
            Stage::Permute(_) => columns.push(vec![Col::Permute]),
        }
    }

    let rows = 2 * n - 1;
    let width = 4 + 3 * columns.len() + 1;
    let mut canvas = vec![vec![' '; width]; rows];
    // wires
    for line in 0..n {
        let r = 2 * line;
        let label = format!("x{line:<2}");
        for (c, ch) in label.chars().enumerate() {
            canvas[r][c] = ch;
        }
        for c in 4..width {
            canvas[r][c] = '─';
        }
    }
    for (ci, col) in columns.iter().enumerate() {
        let x = 5 + 3 * ci;
        for item in col {
            match *item {
                Col::Compare(i, j) => {
                    let (lo, hi) = (i.min(j) as usize, i.max(j) as usize);
                    canvas[2 * lo][x] = '●';
                    canvas[2 * hi][x] = '●';
                    for r in 2 * lo + 1..2 * hi {
                        canvas[r][x] = if canvas[r][x] == '─' { '┼' } else { '│' };
                    }
                }
                Col::Permute => {
                    for line in 0..n {
                        canvas[2 * line][x] = '»';
                    }
                }
            }
        }
    }
    let mut out = String::with_capacity(rows * (width + 1));
    for row in canvas {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::fig1;

    /// Widest line of a picture; 0 for an empty picture (so width
    /// assertions never panic on degenerate networks).
    fn max_line_width(pic: &str) -> usize {
        pic.lines().map(|l| l.chars().count()).max().unwrap_or(0)
    }

    #[test]
    fn fig1_drawing_shape() {
        let pic = draw(&fig1());
        // 4 wires → 7 rows
        assert_eq!(pic.lines().count(), 7);
        assert!(pic.contains("x0"));
        assert!(pic.contains("x3"));
        // 5 comparators → 10 endpoints
        assert_eq!(pic.matches('●').count(), 10, "{pic}");
    }

    #[test]
    fn nonoverlapping_comparators_share_a_column() {
        let mut net = Network::new(4);
        net.push_compare(vec![(0, 1), (2, 3)]);
        let pic = draw(&net);
        // both comparators fit one column: the picture is narrow
        assert!(max_line_width(&pic) <= 10, "{pic}");
    }

    #[test]
    fn overlapping_comparators_split_columns() {
        let mut net = Network::new(4);
        net.push_compare(vec![(0, 2), (1, 3)]);
        let pic = draw(&net);
        assert!(max_line_width(&pic) > 8, "overlap needs two columns\n{pic}");
        // the crossing wire is marked
        assert!(pic.contains('┼'), "{pic}");
    }

    #[test]
    fn empty_network_draws_without_panicking() {
        // Regression: n=0 used to underflow the row count, and the
        // width checks above used to unwrap an empty iterator.
        let pic = draw(&Network::new(0));
        assert!(pic.is_empty(), "{pic:?}");
        assert_eq!(max_line_width(&pic), 0);

        // A network with wires but no stages is also a valid picture.
        let pic = draw(&Network::new(2));
        assert_eq!(pic.lines().count(), 3, "{pic:?}");
        assert!(pic.contains("x0"));
    }

    #[test]
    fn permute_stage_marked() {
        let mut net = Network::new(2);
        net.push_permute(vec![1, 0]);
        let pic = draw(&net);
        assert_eq!(pic.matches('»').count(), 2);
    }
}
