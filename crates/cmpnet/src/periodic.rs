//! The periodic balanced sorting network (Dowd–Perl–Rudolph–Saks, paper
//! refs [8], [9]).
//!
//! Cascading `lg n` *identical* copies of the balanced merging block
//! sorts any input — the "periodic" property that makes the block
//! attractive for VLSI (one block, recirculated `lg n` times). This is
//! the construction the paper's balanced merging block comes from, so it
//! belongs in the baseline suite: cost `(n/2)·lg² n`, depth `lg² n`.
//!
//! The periodic property also yields a time-multiplexed variant: one
//! block of cost `(n/2)·lg n` reused `lg n` times — an `O(n lg n)`-cost
//! nonadaptive binary sorter to set against the paper's `O(n)` fish
//! sorter.

use crate::balanced::balanced_merging_block;
use crate::network::Network;

/// The full periodic balanced sorting network: `lg n` cascaded balanced
/// merging blocks. Cost `(n/2)·lg² n`, depth `lg² n`.
pub fn periodic_balanced_sort(n: usize) -> Network {
    assert!(
        n.is_power_of_two(),
        "periodic balanced sort needs 2^k inputs"
    );
    let block = balanced_merging_block(n);
    let mut net = Network::new(n);
    for _ in 0..n.trailing_zeros() {
        net.extend(&block);
    }
    net
}

/// Cost of the full cascade: `(n/2)·lg² n`.
pub fn periodic_cost(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    let k = n.trailing_zeros() as u64;
    (n as u64 / 2) * k * k
}

/// Cost of the recirculating (time-multiplexed) variant: one block,
/// `(n/2)·lg n`, reused `lg n` rounds.
pub fn recirculating_cost(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    (n as u64 / 2) * n.trailing_zeros() as u64
}

/// Sorting time of the recirculating variant in unit-depth stages:
/// `lg n` rounds × `lg n` stages.
pub fn recirculating_time(n: usize) -> u64 {
    let k = n.trailing_zeros() as u64;
    k * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorting_network;
    use rand::prelude::*;

    #[test]
    fn sorts_exhaustively_to_16() {
        for k in 1..=4 {
            let n = 1usize << k;
            assert!(
                is_sorting_network(&periodic_balanced_sort(n)),
                "periodic n={n}"
            );
        }
    }

    #[test]
    fn sorts_random_words_at_64() {
        let net = periodic_balanced_sort(64);
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..50 {
            let mut v: Vec<i32> = (0..64).map(|_| rng.gen_range(-99..99)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            net.apply(&mut v);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn one_block_fewer_fails() {
        // lg n blocks are necessary: lg n − 1 cascades must miss inputs.
        let n = 16usize;
        let block = balanced_merging_block(n);
        let mut net = Network::new(n);
        for _ in 0..n.trailing_zeros() - 1 {
            net.extend(&block);
        }
        assert!(!is_sorting_network(&net), "lg n − 1 blocks must not sort");
    }

    #[test]
    fn cost_and_depth_formulas() {
        for k in 1..=8u32 {
            let n = 1usize << k;
            let net = periodic_balanced_sort(n);
            assert_eq!(net.cost(), periodic_cost(n), "n={n}");
            assert_eq!(net.depth() as u64, (k * k) as u64, "n={n}");
            assert_eq!(recirculating_cost(n) * k as u64, periodic_cost(n));
        }
    }

    // (the comparison against the fish sorter's O(n) cost lives in the
    // cross-crate integration suite: tests/cross_validation.rs)
}
