//! The balanced merging block (Dowd–Perl–Rudolph–Saks), paper refs
//! [8], [9], [24].
//!
//! The n-input balanced merging block has `lg n` stages. Stage 1 compares
//! line `i` with line `n−1−i` (min to the top), and the remaining stages
//! recursively apply the same pattern to each half. It has `(n/2)·lg n`
//! comparators and depth `lg n`.
//!
//! In Fig. 4(b) it merges the *shuffled concatenation* of two sorted
//! sequences; on binary inputs that shuffled concatenation lies in the
//! language `A_n` of Definition 1, and Theorem 2 shows the first balanced
//! stage splits an `A_n` sequence into one clean-sorted half and one
//! `A_{n/2}` half — the structural fact the paper's prefix sorter
//! (Network 1) exploits to cut the block's cost from `O(n lg n)` to
//! `O(n)`.

use crate::network::Network;

fn balanced_rec(net: &mut Network, lo: usize, m: usize) {
    if m < 2 {
        return;
    }
    let stage: Vec<(u32, u32)> = (0..m / 2)
        .map(|i| ((lo + i) as u32, (lo + m - 1 - i) as u32))
        .collect();
    net.push_compare(stage);
    balanced_rec(net, lo, m / 2);
    balanced_rec(net, lo + m / 2, m / 2);
}

/// The `n`-input balanced merging block (`n = 2^k`).
pub fn balanced_merging_block(n: usize) -> Network {
    assert!(
        n.is_power_of_two(),
        "balanced merging block needs 2^k inputs"
    );
    let mut net = Network::new(n);
    balanced_rec(&mut net, 0, n);
    net
}

/// Comparator count of the balanced merging block: `(n/2)·lg n`.
pub fn balanced_block_cost(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    (n as u64 / 2) * n.trailing_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::shuffle_perm;
    use rand::prelude::*;

    #[test]
    fn cost_and_depth_formulas() {
        for k in 1..=10 {
            let n = 1 << k;
            let b = balanced_merging_block(n);
            assert_eq!(b.cost(), balanced_block_cost(n), "cost n={n}");
            assert_eq!(b.depth(), k, "depth n={n}");
        }
    }

    /// Theorem 1 + balanced block: shuffling two sorted halves and running
    /// the block sorts, for arbitrary values (verified randomly here; the
    /// binary/exhaustive version lives with the A_n machinery in
    /// absort-core).
    #[test]
    fn merges_shuffled_sorted_halves() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in 1..=6 {
            let n = 1usize << k;
            let block = balanced_merging_block(n);
            let mut net = Network::new(n);
            net.push_permute(shuffle_perm(n));
            net.extend(&block);
            for _ in 0..100 {
                let mut v: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
                v[..n / 2].sort_unstable();
                v[n / 2..].sort_unstable();
                let mut expect = v.clone();
                expect.sort_unstable();
                net.apply(&mut v);
                assert_eq!(v, expect, "n={n}");
            }
        }
    }

    /// Example 2 of the paper: Z = 10101011 (A_8) through the first
    /// balanced stage yields Y_U = 1000, Y_L = 1111.
    #[test]
    fn paper_example_2_first_stage() {
        let mut net = Network::new(8);
        net.push_compare((0..4).map(|i| (i as u32, (7 - i) as u32)).collect());
        let mut z: Vec<u8> = vec![1, 0, 1, 0, 1, 0, 1, 1];
        net.apply(&mut z);
        assert_eq!(&z[..4], &[1, 0, 0, 0], "Y_U");
        assert_eq!(&z[4..], &[1, 1, 1, 1], "Y_L");
    }

    #[test]
    fn block_alone_does_not_sort_everything() {
        // The balanced block is a merger, not a sorter: some binary input
        // must defeat it for n >= 4.
        let b = balanced_merging_block(8);
        assert!(!crate::verify::is_sorting_network(&b));
    }
}
