//! Small catalogued networks from the paper and classical references.

use crate::network::Network;

/// The four-input sorting network of Fig. 1: cost 5, depth 3.
pub fn fig1() -> Network {
    let mut net = Network::new(4);
    net.push_compare(vec![(0, 1), (2, 3)]);
    net.push_compare(vec![(0, 2), (1, 3)]);
    net.push_compare(vec![(1, 2)]);
    net
}

/// The odd-even transposition ("brick wall") sorting network on `n`
/// inputs: `n` stages alternating odd/even adjacent comparators. Cost
/// `n(n−1)/2`, depth `n`. A useful worst-case baseline in tests.
pub fn odd_even_transposition(n: usize) -> Network {
    let mut net = Network::new(n);
    for s in 0..n {
        let start = s % 2;
        let stage: Vec<(u32, u32)> = (start..n.saturating_sub(1))
            .step_by(2)
            .map(|i| (i as u32, (i + 1) as u32))
            .collect();
        if !stage.is_empty() {
            net.push_compare(stage);
        }
    }
    net
}

/// The straight insertion sorting network on `n` inputs (Knuth §5.3.4):
/// cost `n(n−1)/2`.
pub fn insertion(n: usize) -> Network {
    let mut pairs = Vec::new();
    for i in 1..n {
        for j in (1..=i).rev() {
            pairs.push(((j - 1) as u32, j as u32));
        }
    }
    crate::batcher::from_pairs(n, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorting_network;

    #[test]
    fn fig1_cost_depth_match_paper() {
        let net = fig1();
        assert_eq!(net.cost(), 5, "paper: cost of Fig. 1 network is 5");
        assert_eq!(net.depth(), 3, "paper: depth of Fig. 1 network is 3");
        assert!(is_sorting_network(&net));
    }

    #[test]
    fn odd_even_transposition_sorts() {
        for n in [1, 2, 3, 5, 8, 9, 16] {
            assert!(is_sorting_network(&odd_even_transposition(n)), "n={n}");
        }
    }

    #[test]
    fn oet_cost_formula() {
        for n in [2usize, 5, 8, 13] {
            assert_eq!(
                odd_even_transposition(n).cost() as usize,
                n * (n - 1) / 2,
                "n={n}"
            );
        }
    }

    #[test]
    fn insertion_sorts_and_costs_quadratically() {
        for n in [2usize, 4, 7, 10] {
            let net = insertion(n);
            assert!(is_sorting_network(&net), "n={n}");
            assert_eq!(net.cost() as usize, n * (n - 1) / 2, "n={n}");
        }
    }
}
