//! Zero-one-principle verification.
//!
//! Knuth's zero-one principle: a nonadaptive comparator network sorts all
//! inputs iff it sorts all 2^n binary inputs. The checker runs the
//! network's 64-lane binary evaluator over all 2^n vectors in packed
//! groups, so exhaustively verifying a 16-input network costs 1024 lane
//! passes.

use crate::network::Network;

/// Checks whether each lane of `lanes` (64 output vectors packed across
/// `n` lines) is ascending-sorted; returns the index of the first
/// unsorted vector among `count`, if any.
fn first_unsorted_lane(lanes: &[u64], count: u32) -> Option<u64> {
    // A binary vector is ascending-sorted iff no 1 is followed by a 0,
    // i.e. for every adjacent pair (i, i+1): NOT(line_i AND NOT line_{i+1}).
    let mut bad = 0u64;
    for w in lanes.windows(2) {
        bad |= w[0] & !w[1];
    }
    if count < 64 {
        bad &= (1u64 << count) - 1;
    }
    if bad == 0 {
        None
    } else {
        Some(bad.trailing_zeros() as u64)
    }
}

/// Exhaustively verifies `net` over all `2^n` binary inputs and returns
/// the first input (as an n-bit little-endian integer: bit `i` = line `i`)
/// that the network fails to sort, or `None` if the network sorts
/// everything — which by the zero-one principle proves it sorts arbitrary
/// totally ordered data.
///
/// Practical up to n ≈ 26 (2^26 vectors ≈ one million lane passes).
pub fn first_unsorted_input(net: &Network) -> Option<u64> {
    let n = net.n();
    assert!(n <= 26, "exhaustive 0-1 check limited to n <= 26, got {n}");
    let total: u64 = 1u64 << n;
    let mut lanes = vec![0u64; n];
    let mut base = 0u64;
    while base < total {
        let count = (total - base).min(64) as u32;
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = 0;
            for v in 0..count as u64 {
                if (base + v) >> i & 1 == 1 {
                    *lane |= 1 << v;
                }
            }
        }
        net.apply_binary_lanes(&mut lanes);
        if let Some(v) = first_unsorted_lane(&lanes, count) {
            return Some(base + v);
        }
        base += count as u64;
    }
    None
}

/// True iff `net` sorts every binary input (hence, by the zero-one
/// principle, every input).
///
/// ```
/// use absort_cmpnet::{batcher, verify};
///
/// assert!(verify::is_sorting_network(&batcher::odd_even_merge_sort(16)));
/// assert!(!verify::is_sorting_network(&batcher::odd_even_merge(16))); // a merger alone
/// ```
pub fn is_sorting_network(net: &Network) -> bool {
    first_unsorted_input(net).is_none()
}

/// Verifies that the network sorts a particular binary input, returning
/// the output. Helper for diagnosing failures found by
/// [`first_unsorted_input`].
pub fn sorts_binary_input(net: &Network, input: u64) -> (bool, Vec<u8>) {
    let n = net.n();
    let mut data: Vec<u8> = (0..n).map(|i| (input >> i & 1) as u8).collect();
    net.apply(&mut data);
    let sorted = data.windows(2).all(|w| w[0] <= w[1]);
    (sorted, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn fig1() -> Network {
        let mut net = Network::new(4);
        net.push_compare(vec![(0, 1), (2, 3)]);
        net.push_compare(vec![(0, 2), (1, 3)]);
        net.push_compare(vec![(1, 2)]);
        net
    }

    #[test]
    fn fig1_is_a_sorting_network() {
        assert!(is_sorting_network(&fig1()));
    }

    #[test]
    fn missing_comparator_is_caught() {
        let mut net = Network::new(4);
        net.push_compare(vec![(0, 1), (2, 3)]);
        net.push_compare(vec![(0, 2), (1, 3)]);
        // final (1,2) comparator omitted: 0110-style inputs stay unsorted
        let bad = first_unsorted_input(&net);
        assert!(bad.is_some());
        let (sorted, _) = sorts_binary_input(&net, bad.unwrap());
        assert!(!sorted);
    }

    #[test]
    fn empty_network_on_one_line_sorts() {
        let net = Network::new(1);
        assert!(is_sorting_network(&net));
    }

    #[test]
    fn identity_on_two_lines_fails() {
        let net = Network::new(2);
        assert_eq!(first_unsorted_input(&net), Some(0b01)); // line0=1, line1=0
    }

    #[test]
    fn unsorted_lane_detector() {
        // lines: 2 lines, vector 0 = (0,1) sorted; vector 1 = (1,0) unsorted
        let lanes = vec![0b10u64, 0b01u64];
        assert_eq!(first_unsorted_lane(&lanes, 2), Some(1));
        assert_eq!(first_unsorted_lane(&lanes, 1), None);
    }
}
