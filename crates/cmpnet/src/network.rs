//! The comparator-network representation.

/// One stage of a comparator network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stage {
    /// A set of comparators applied in parallel. Each pair `(i, j)` with
    /// `i != j` places `min` on line `i` and `max` on line `j`. Lines
    /// within one stage must be disjoint.
    Compare(Vec<(u32, u32)>),
    /// A free rewiring: output line `k` is driven by input line `perm[k]`.
    /// Wiring has no cost and no depth (the paper's shuffle connections).
    Permute(Vec<u32>),
}

/// A comparator network over `n` lines: a sequence of comparator stages
/// and wiring permutations.
///
/// Cost is the total number of comparators; depth is the longest chain of
/// comparators through any line (computed on the dataflow, so wiring never
/// contributes and sparse stages don't over-count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    n: usize,
    stages: Vec<Stage>,
}

impl Network {
    /// Creates an empty network over `n` lines.
    pub fn new(n: usize) -> Self {
        Network {
            n,
            stages: Vec::new(),
        }
    }

    /// Number of lines.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The stages, in application order.
    #[inline]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Appends a comparator stage, validating that the lines are in range
    /// and pairwise disjoint.
    pub fn push_compare(&mut self, pairs: Vec<(u32, u32)>) {
        let mut used = vec![false; self.n];
        for &(i, j) in &pairs {
            assert!(i != j, "comparator ({i},{i}) compares a line with itself");
            for k in [i, j] {
                let k = k as usize;
                assert!(
                    k < self.n,
                    "comparator line {k} out of range (n={})",
                    self.n
                );
                assert!(!used[k], "line {k} used twice in one stage");
                used[k] = true;
            }
        }
        self.stages.push(Stage::Compare(pairs));
    }

    /// Appends a wiring permutation, validating it is a permutation of
    /// `0..n`.
    pub fn push_permute(&mut self, perm: Vec<u32>) {
        assert_eq!(perm.len(), self.n, "permutation length != n");
        let mut seen = vec![false; self.n];
        for &p in &perm {
            let p = p as usize;
            assert!(p < self.n, "permutation value {p} out of range");
            assert!(!seen[p], "permutation repeats value {p}");
            seen[p] = true;
        }
        self.stages.push(Stage::Permute(perm));
    }

    /// Appends all stages of `other` (which must have the same width).
    pub fn extend(&mut self, other: &Network) {
        assert_eq!(
            self.n, other.n,
            "cannot concatenate networks of different widths"
        );
        self.stages.extend(other.stages.iter().cloned());
    }

    /// Appends `other` (of width `m <= n`) acting on the contiguous line
    /// block starting at `offset`.
    pub fn extend_embedded(&mut self, other: &Network, offset: usize) {
        assert!(offset + other.n <= self.n, "embedded network out of range");
        for st in &other.stages {
            match st {
                Stage::Compare(pairs) => {
                    let shifted = pairs
                        .iter()
                        .map(|&(i, j)| (i + offset as u32, j + offset as u32))
                        .collect();
                    self.push_compare(shifted);
                }
                Stage::Permute(perm) => {
                    let mut full: Vec<u32> = (0..self.n as u32).collect();
                    for (k, &p) in perm.iter().enumerate() {
                        full[offset + k] = p + offset as u32;
                    }
                    self.push_permute(full);
                }
            }
        }
    }

    /// Total number of comparators (the network's *cost* in the paper's
    /// word-level accounting).
    pub fn cost(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Compare(p) => p.len() as u64,
                Stage::Permute(_) => 0,
            })
            .sum()
    }

    /// Depth: the longest chain of comparators on any input-to-output path.
    pub fn depth(&self) -> usize {
        let mut d = vec![0u32; self.n];
        for s in &self.stages {
            match s {
                Stage::Compare(pairs) => {
                    for &(i, j) in pairs {
                        let nd = d[i as usize].max(d[j as usize]) + 1;
                        d[i as usize] = nd;
                        d[j as usize] = nd;
                    }
                }
                Stage::Permute(perm) => {
                    let old = d.clone();
                    for (k, &p) in perm.iter().enumerate() {
                        d[k] = old[p as usize];
                    }
                }
            }
        }
        d.into_iter().max().unwrap_or(0) as usize
    }

    /// Number of comparator stages (the "step count" some papers quote
    /// instead of true depth).
    pub fn n_compare_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, Stage::Compare(p) if !p.is_empty()))
            .count()
    }

    /// Applies the network to `data` in place (`data.len() == n`).
    pub fn apply<T: Ord + Clone>(&self, data: &mut [T]) {
        assert_eq!(data.len(), self.n, "data length != network width");
        let mut scratch: Vec<T> = data.to_vec();
        for s in &self.stages {
            match s {
                Stage::Compare(pairs) => {
                    for &(i, j) in pairs {
                        let (i, j) = (i as usize, j as usize);
                        if data[i] > data[j] {
                            data.swap(i, j);
                        }
                    }
                }
                Stage::Permute(perm) => {
                    scratch.clone_from_slice(data);
                    for (k, &p) in perm.iter().enumerate() {
                        data[k] = scratch[p as usize].clone();
                    }
                }
            }
        }
    }

    /// Applies the network to 64 binary vectors at once: `lanes[i]` holds
    /// line `i` across 64 test vectors (vector `v` in bit `v`). A binary
    /// comparator is `(min, max) = (AND, OR)`.
    pub fn apply_binary_lanes(&self, lanes: &mut [u64]) {
        assert_eq!(lanes.len(), self.n, "lane count != network width");
        let mut scratch = lanes.to_vec();
        for s in &self.stages {
            match s {
                Stage::Compare(pairs) => {
                    for &(i, j) in pairs {
                        let (i, j) = (i as usize, j as usize);
                        let (a, b) = (lanes[i], lanes[j]);
                        lanes[i] = a & b;
                        lanes[j] = a | b;
                    }
                }
                Stage::Permute(perm) => {
                    scratch.copy_from_slice(lanes);
                    for (k, &p) in perm.iter().enumerate() {
                        lanes[k] = scratch[p as usize];
                    }
                }
            }
        }
    }
}

/// The perfect (two-way) shuffle permutation on `n` lines as an
/// output-from-input map: output `2i` ← input `i`, output `2i+1` ← input
/// `n/2 + i`. This interleaves the two halves, as in Fig. 4(b).
pub fn shuffle_perm(n: usize) -> Vec<u32> {
    assert!(n % 2 == 0, "shuffle needs an even number of lines");
    let mut perm = vec![0u32; n];
    for i in 0..n / 2 {
        perm[2 * i] = i as u32;
        perm[2 * i + 1] = (n / 2 + i) as u32;
    }
    perm
}

/// The inverse of [`shuffle_perm`] (the unshuffle): output `i` ← input
/// `2i` for the first half, output `n/2 + i` ← input `2i+1` for the second.
pub fn unshuffle_perm(n: usize) -> Vec<u32> {
    assert!(n % 2 == 0, "unshuffle needs an even number of lines");
    let mut perm = vec![0u32; n];
    for i in 0..n / 2 {
        perm[i] = (2 * i) as u32;
        perm[n / 2 + i] = (2 * i + 1) as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_and_depth_of_fig1_shape() {
        // Fig. 1: stages {(0,1),(2,3)}, {(0,2),(1,3)}, {(1,2)}.
        let mut net = Network::new(4);
        net.push_compare(vec![(0, 1), (2, 3)]);
        net.push_compare(vec![(0, 2), (1, 3)]);
        net.push_compare(vec![(1, 2)]);
        assert_eq!(net.cost(), 5);
        assert_eq!(net.depth(), 3);
        let mut v = vec![3, 1, 4, 2];
        net.apply(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn permute_stage_moves_lines_for_free() {
        let mut net = Network::new(4);
        net.push_permute(vec![3, 2, 1, 0]);
        assert_eq!(net.cost(), 0);
        assert_eq!(net.depth(), 0);
        let mut v = vec![10, 20, 30, 40];
        net.apply(&mut v);
        assert_eq!(v, vec![40, 30, 20, 10]);
    }

    #[test]
    fn shuffle_interleaves_halves() {
        let perm = shuffle_perm(8);
        let mut net = Network::new(8);
        net.push_permute(perm);
        let mut v = vec![0, 1, 2, 3, 4, 5, 6, 7];
        net.apply(&mut v);
        assert_eq!(v, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        let mut net = Network::new(8);
        net.push_permute(shuffle_perm(8));
        net.push_permute(unshuffle_perm(8));
        let mut v: Vec<u32> = (0..8).rev().collect();
        let orig = v.clone();
        net.apply(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn lanes_match_scalar_on_binary() {
        let mut net = Network::new(4);
        net.push_compare(vec![(0, 1), (2, 3)]);
        net.push_compare(vec![(0, 2), (1, 3)]);
        net.push_compare(vec![(1, 2)]);
        // all 16 binary inputs in one 64-lane pass
        let mut lanes = vec![0u64; 4];
        for v in 0..16u64 {
            for (i, lane) in lanes.iter_mut().enumerate() {
                if v >> i & 1 == 1 {
                    *lane |= 1 << v;
                }
            }
        }
        net.apply_binary_lanes(&mut lanes);
        for v in 0..16u64 {
            let mut scalar: Vec<u8> = (0..4).map(|i| (v >> i & 1) as u8).collect();
            net.apply(&mut scalar);
            let got: Vec<u8> = (0..4).map(|i| (lanes[i] >> v & 1) as u8).collect();
            assert_eq!(got, scalar, "input {v:04b}");
        }
    }

    #[test]
    fn embedded_network_offsets_lines() {
        let mut inner = Network::new(2);
        inner.push_compare(vec![(0, 1)]);
        let mut outer = Network::new(4);
        outer.extend_embedded(&inner, 2);
        let mut v = vec![9, 8, 7, 6];
        outer.apply(&mut v);
        assert_eq!(v, vec![9, 8, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn overlapping_stage_rejected() {
        let mut net = Network::new(4);
        net.push_compare(vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "repeats value")]
    fn bad_permutation_rejected() {
        let mut net = Network::new(3);
        net.push_permute(vec![0, 0, 1]);
    }
}
