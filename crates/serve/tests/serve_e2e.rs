//! End-to-end robustness suite: a real daemon on a loopback port,
//! exercised by well-behaved clients, overload floods, malformed frames,
//! slow-loris stalls, dropped connections, and forced worker panics.
//!
//! Every `Ok` sort reply in this file is differentially checked against
//! the zero-one oracle, so any cross-request corruption (a reply carrying
//! another request's lanes) fails loudly.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use absort_serve::proto::{self, NetKind, ReplyPayload, Request, Status};
use absort_serve::{sorted_oracle, Client, ServeConfig, Server};
use rand::prelude::*;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        read_poll: Duration::from_millis(5),
        midframe_stall: Duration::from_millis(250),
        write_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    }
}

fn connect(server: &Server) -> Client {
    Client::connect_retry(server.local_addr(), Duration::from_secs(5)).expect("connect")
}

fn random_bits(rng: &mut StdRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

/// Asserts an `Ok` sort reply against the oracle for its input.
fn assert_sorted(input: &[bool], reply: &absort_serve::Reply) {
    assert_eq!(reply.status, Status::Ok, "reply: {reply:?}");
    match &reply.payload {
        ReplyPayload::Bits(out) => assert_eq!(out, &sorted_oracle(input)),
        other => panic!("expected bits payload, got {other:?}"),
    }
}

#[test]
fn sorts_pings_and_permutes() {
    let server = Server::start(test_config()).unwrap();
    let mut client = connect(&server);
    let mut rng = StdRng::seed_from_u64(1);

    // Ping.
    let rep = client.call(&Request::ping(1)).unwrap();
    assert_eq!(rep.status, Status::Ok);
    assert_eq!(rep.req_id, 1);

    // Sorts across all three networks and several widths.
    let mut id = 10;
    for network in NetKind::ALL {
        for n in [2usize, 16, 64, 256] {
            let bits = random_bits(&mut rng, n);
            let rep = client.call(&Request::sort(network, id, &bits)).unwrap();
            assert_eq!(rep.req_id, id);
            assert_sorted(&bits, &rep);
            id += 1;
        }
    }

    // Permute: a reversal through both adaptive sorters.
    for network in [NetKind::Prefix, NetKind::MuxMerger] {
        let n = 16u16;
        let perm: Vec<u16> = (0..n).rev().collect();
        let rep = client.call(&Request::permute(network, id, &perm)).unwrap();
        assert_eq!(rep.status, Status::Ok);
        match &rep.payload {
            // Output d carries the source whose destination was d.
            ReplyPayload::Perm(out) => {
                let expect: Vec<u16> = (0..n).rev().collect();
                assert_eq!(out, &expect);
            }
            other => panic!("expected perm payload, got {other:?}"),
        }
        id += 1;
    }

    // Permute on the nonadaptive network is a typed Unsupported.
    let rep = client
        .call(&Request::permute(NetKind::Nonadaptive, id, &[1, 0]))
        .unwrap();
    assert_eq!(rep.status, Status::Unsupported);

    // Duplicate destinations pass decode (each in range) but fail
    // routing with a typed Malformed, not a panic.
    let rep = client
        .call(&Request::permute(NetKind::MuxMerger, id + 1, &[1, 1, 0, 0]))
        .unwrap();
    assert_eq!(rep.status, Status::Malformed);

    let stats = server.join();
    assert_eq!(stats.internal_errors, 0);
    assert_eq!(stats.panics_isolated, 0);
}

#[test]
fn pipelined_batches_have_no_cross_request_corruption() {
    let mut cfg = test_config();
    cfg.workers = 1; // maximize coalescing into wide batches
    let server = Server::start(cfg).unwrap();
    let mut client = connect(&server);
    let mut rng = StdRng::seed_from_u64(7);

    let n = 64;
    let inputs: Vec<Vec<bool>> = (0..300).map(|_| random_bits(&mut rng, n)).collect();
    for (i, bits) in inputs.iter().enumerate() {
        client
            .send(&Request::sort(NetKind::MuxMerger, i as u64, bits))
            .unwrap();
    }
    for (i, bits) in inputs.iter().enumerate() {
        let rep = client.recv().unwrap();
        // Replies on one connection come back in request order; the
        // req_id echo plus the oracle check rules out lane swaps.
        assert_eq!(rep.req_id, i as u64);
        assert_sorted(bits, &rep);
    }
    let stats = server.join();
    assert_eq!(stats.replies_ok, 300);
    assert!(stats.batches > 0);
}

#[test]
fn overload_sheds_with_typed_replies_and_answers_everything() {
    let mut cfg = test_config();
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    cfg.batch_max = 1;
    let server = Server::start(cfg).unwrap();
    let mut client = connect(&server);
    let mut rng = StdRng::seed_from_u64(13);

    // Flood well past 2× of what a single batch=1 worker can absorb.
    let n = 256;
    let total = 400;
    let inputs: Vec<Vec<bool>> = (0..total).map(|_| random_bits(&mut rng, n)).collect();
    for (i, bits) in inputs.iter().enumerate() {
        client
            .send(&Request::sort(NetKind::MuxMerger, i as u64, bits))
            .unwrap();
    }
    let mut ok = 0u64;
    let mut overloaded = 0u64;
    for _ in 0..total {
        let rep = client.recv().unwrap();
        match rep.status {
            Status::Ok => {
                let bits = &inputs[rep.req_id as usize];
                assert_sorted(bits, &rep);
                ok += 1;
            }
            Status::Overloaded => {
                // Typed shed: empty payload, id echoed.
                assert_eq!(rep.payload, ReplyPayload::Empty);
                overloaded += 1;
            }
            other => panic!("unexpected status under overload: {other:?}"),
        }
    }
    assert_eq!(
        ok + overloaded,
        total as u64,
        "every request answered exactly once"
    );
    assert!(
        overloaded > 0,
        "a queue of 2 must shed under a 400-request flood"
    );
    let stats = server.join();
    assert_eq!(stats.shed, overloaded);
    assert_eq!(stats.replies_ok, ok);
}

#[test]
fn malformed_frames_get_typed_rejection_and_connection_lives() {
    let server = Server::start(test_config()).unwrap();
    let mut client = connect(&server);

    let good = proto::encode_request(&Request::sort(NetKind::Prefix, 5, &[true; 8]));

    // Corpus of body-level damage: each gets a Malformed reply and the
    // SAME connection keeps working afterwards.
    let mut bad_version = good.clone();
    bad_version[5] = 0x42; // version byte (after the 4-byte prefix)

    let mut zero_n = good.clone();
    zero_n[20..24].copy_from_slice(&0u32.to_le_bytes());

    let mut big_n = good.clone();
    big_n[20..24].copy_from_slice(&(proto::DEFAULT_MAX_N * 4).to_le_bytes());

    // Truncated header: a frame whose body is shorter than the header.
    let mut short = proto::frame(vec![0u8; 5]);
    short[4] = proto::MAGIC_REQUEST;

    // Pure garbage with a valid length prefix.
    let garbage = proto::frame(vec![0xEE; 40]);

    for (name, frame) in [
        ("bad version", &bad_version),
        ("zero n", &zero_n),
        ("n too large", &big_n),
        ("truncated header", &short),
        ("garbage", &garbage),
    ] {
        client.send_raw(frame).unwrap();
        let rep = client.recv().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(rep.status, Status::Malformed, "{name}");
        match &rep.payload {
            ReplyPayload::Message(m) => assert!(!m.is_empty(), "{name}: empty diagnostic"),
            other => panic!("{name}: expected message payload, got {other:?}"),
        }
        // Still-live connection: a valid request round-trips after the
        // rejection.
        let bits = [true, false, false, true, true, false, true, false];
        let rep = client
            .call(&Request::sort(NetKind::Prefix, 99, &bits))
            .unwrap();
        assert_sorted(&bits, &rep);
    }

    // Length-prefix overflow is framing damage: this connection closes
    // (best-effort Malformed first), but the daemon keeps serving new
    // connections.
    client
        .send_raw(&(proto::MAX_FRAME as u32 + 1).to_le_bytes())
        .unwrap();
    let rep = client.recv().expect("best-effort malformed before close");
    assert_eq!(rep.status, Status::Malformed);
    assert!(client.recv().is_err(), "poisoned connection must close");

    let mut fresh = connect(&server);
    let bits = [false, true, true, false];
    let rep = fresh
        .call(&Request::sort(NetKind::MuxMerger, 1, &bits))
        .unwrap();
    assert_sorted(&bits, &rep);

    let stats = server.join();
    assert!(stats.malformed >= 6, "stats: {stats:?}");
}

#[test]
fn slow_loris_is_cut_and_daemon_survives() {
    let mut cfg = test_config();
    cfg.midframe_stall = Duration::from_millis(100);
    let server = Server::start(cfg).unwrap();

    // Open a connection, dribble half a length prefix, then stall.
    let mut loris = TcpStream::connect(server.local_addr()).unwrap();
    loris.write_all(&[0x10, 0x00]).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    // The server must cut us off rather than hold the reader forever.
    let closed = matches!(loris.read(&mut buf), Ok(0) | Err(_));
    assert!(closed, "slow-loris connection should be closed");

    // Well-behaved clients are unaffected.
    let mut client = connect(&server);
    let bits = [true, true, false, false, true, false, false, false];
    let rep = client
        .call(&Request::sort(NetKind::Prefix, 3, &bits))
        .unwrap();
    assert_sorted(&bits, &rep);

    let stats = server.join();
    assert!(stats.slow_loris_closed >= 1, "stats: {stats:?}");
}

#[test]
fn abrupt_connection_drops_do_not_hurt_others() {
    let server = Server::start(test_config()).unwrap();
    let mut rng = StdRng::seed_from_u64(23);

    // A wave of clients that send work and vanish without reading.
    for i in 0..10 {
        let mut c = connect(&server);
        let bits = random_bits(&mut rng, 64);
        c.send(&Request::sort(NetKind::MuxMerger, i, &bits))
            .unwrap();
        drop(c); // RST/close with the reply still in flight
    }

    // A polite client still gets correct service afterwards.
    let mut client = connect(&server);
    for i in 0..20 {
        let bits = random_bits(&mut rng, 64);
        let rep = client
            .call(&Request::sort(NetKind::MuxMerger, 100 + i, &bits))
            .unwrap();
        assert_sorted(&bits, &rep);
    }
    let stats = server.join();
    assert_eq!(stats.internal_errors, 0);
}

#[test]
fn chaos_panic_degrades_to_solo_retry_without_collateral() {
    let mut cfg = test_config();
    cfg.workers = 1; // force the chaos job to share a batch with others
    cfg.chaos = true;
    let server = Server::start(cfg).unwrap();
    let mut client = connect(&server);
    let mut rng = StdRng::seed_from_u64(31);

    let n = 64;
    // Pipeline normal sorts around a chaos request so they coalesce into
    // the same wide batch; the forced panic must not corrupt or fail any
    // batch-mate.
    let inputs: Vec<Vec<bool>> = (0..50).map(|_| random_bits(&mut rng, n)).collect();
    for (i, bits) in inputs.iter().enumerate() {
        let mut req = Request::sort(NetKind::MuxMerger, i as u64, bits);
        if i == 25 {
            req.kind = absort_serve::RequestKind::ChaosPanic;
        }
        client.send(&req).unwrap();
    }
    for (i, bits) in inputs.iter().enumerate() {
        let rep = client.recv().unwrap();
        assert_eq!(rep.req_id, i as u64);
        // Everyone — including the chaos request itself — still gets the
        // correct sorted answer via the scalar solo retry.
        assert_sorted(bits, &rep);
    }

    let stats = server.join();
    assert!(stats.panics_isolated >= 1, "stats: {stats:?}");
    assert!(stats.solo_retries >= 1, "stats: {stats:?}");
    assert_eq!(stats.internal_errors, 0);
}

#[test]
fn chaos_requests_without_chaos_mode_are_unsupported() {
    let server = Server::start(test_config()).unwrap();
    let mut client = connect(&server);
    let mut req = Request::sort(NetKind::Prefix, 8, &[true; 8]);
    req.kind = absort_serve::RequestKind::ChaosPanic;
    let rep = client.call(&req).unwrap();
    assert_eq!(rep.status, Status::Unsupported);
    let stats = server.join();
    assert_eq!(stats.panics_isolated, 0);
}

#[test]
fn deadlines_are_enforced_while_worker_is_busy() {
    let mut cfg = test_config();
    cfg.workers = 1;
    let server = Server::start(cfg).unwrap();
    let mut client = connect(&server);

    // Request A compiles a big circuit (no deadline); B and C carry a
    // 1 ms deadline and the same width, so whichever side of the compile
    // they land on (dequeue or mid-batch admission) they are expired by
    // the time the single worker can evaluate them.
    let n = 2048;
    let bits_a = vec![true; n];
    client
        .send(&Request::sort(NetKind::MuxMerger, 1, &bits_a))
        .unwrap();
    let bits_bc = vec![false; n];
    client
        .send(&Request::sort(NetKind::MuxMerger, 2, &bits_bc).with_deadline_ms(1))
        .unwrap();
    client
        .send(&Request::sort(NetKind::MuxMerger, 3, &bits_bc).with_deadline_ms(1))
        .unwrap();

    // Reply order depends on whether B/C shared A's batch (admission
    // check) or followed it (dequeue check) — match by id, not order.
    let mut by_id = std::collections::HashMap::new();
    for _ in 0..3 {
        let rep = client.recv().unwrap();
        by_id.insert(rep.req_id, rep);
    }
    assert_sorted(&bits_a, &by_id[&1]);
    assert_eq!(
        by_id[&2].status,
        Status::DeadlineExceeded,
        "reply: {:?}",
        by_id[&2]
    );
    assert_eq!(
        by_id[&3].status,
        Status::DeadlineExceeded,
        "reply: {:?}",
        by_id[&3]
    );

    // Generous deadlines are met.
    let bits = vec![true; 16];
    let rep = client
        .call(&Request::sort(NetKind::MuxMerger, 4, &[true; 16]).with_deadline_ms(60_000))
        .unwrap();
    assert_sorted(&bits, &rep);

    let stats = server.join();
    assert_eq!(stats.deadline_missed, 2);
}

#[test]
fn graceful_drain_answers_all_accepted_requests() {
    let mut cfg = test_config();
    cfg.workers = 1;
    let server = Server::start(cfg).unwrap();
    let mut client = connect(&server);
    let mut rng = StdRng::seed_from_u64(41);

    let total = 50;
    let inputs: Vec<Vec<bool>> = (0..total).map(|_| random_bits(&mut rng, 128)).collect();
    for (i, bits) in inputs.iter().enumerate() {
        client
            .send(&Request::sort(NetKind::MuxMerger, i as u64, bits))
            .unwrap();
    }
    // Drain while the flood is still queued.
    server.trigger_drain();

    let mut answered = 0usize;
    for _ in 0..total {
        match client.recv() {
            Ok(rep) => {
                match rep.status {
                    Status::Ok => assert_sorted(&inputs[rep.req_id as usize], &rep),
                    // A request can race the worker shutdown and be
                    // redirected — but it must still be *answered*.
                    Status::Overloaded => {}
                    other => panic!("unexpected drain status {other:?}"),
                }
                answered += 1;
            }
            Err(e) => panic!("connection died before all replies arrived: {e}"),
        }
    }
    assert_eq!(answered, total);

    let stats = server.join();
    assert_eq!(stats.answered(), total as u64, "stats: {stats:?}");
}

#[test]
fn many_connections_interleave_without_corruption() {
    let mut cfg = test_config();
    cfg.workers = 2;
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for i in 0..60 {
                    let n = [16usize, 64, 256][rng.gen_range(0..3)];
                    let bits: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
                    let id = t * 1000 + i;
                    let rep = client
                        .call(&Request::sort(NetKind::MuxMerger, id, &bits))
                        .unwrap();
                    assert_eq!(rep.req_id, id);
                    match &rep.payload {
                        ReplyPayload::Bits(out) => assert_eq!(out, &sorted_oracle(&bits)),
                        other => panic!("bad payload {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.join();
    assert_eq!(stats.replies_ok, 8 * 60);
    assert_eq!(stats.internal_errors, 0);
}
