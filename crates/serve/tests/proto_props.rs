//! Wire-protocol properties: encode → decode identity for arbitrary
//! valid requests and replies, plus the malformed-frame corpus asserting
//! typed rejection (the live-connection half of the corpus lives in
//! `tests/serve_e2e.rs`, where a real daemon is up).

use absort_serve::proto::{
    self, decode_reply, decode_request, encode_reply, encode_request, FrameError, NetKind, Reply,
    ReplyPayload, Request, Status, DEFAULT_MAX_N, MAX_FRAME,
};
use proptest::prelude::*;
use rand::prelude::*;

fn random_network(rng: &mut StdRng) -> NetKind {
    NetKind::ALL[rng.gen_range(0..NetKind::ALL.len())]
}

fn random_request(rng: &mut StdRng) -> Request {
    let n = 1usize << rng.gen_range(1..=8); // 2..=256
    let req_id = rng.gen::<u64>();
    let network = random_network(rng);
    let mut req = match rng.gen_range(0..3) {
        0 => {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
            Request::sort(network, req_id, &bits)
        }
        1 => {
            let mut perm: Vec<u16> = (0..n as u16).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            Request::permute(network, req_id, &perm)
        }
        _ => Request::ping(req_id),
    };
    if rng.gen_bool(0.5) {
        req = req.with_deadline_ms(rng.gen_range(1..10_000));
    }
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on arbitrary valid requests.
    #[test]
    fn request_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = random_request(&mut rng);
        let framed = encode_request(&req);
        // The length prefix describes the body exactly.
        let len = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
        prop_assert_eq!(len, framed.len() - 4);
        let decoded = decode_request(&framed[4..], DEFAULT_MAX_N);
        prop_assert_eq!(decoded.as_ref(), Ok(&req));
    }

    /// encode → decode is the identity on arbitrary replies.
    #[test]
    fn reply_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1usize << rng.gen_range(1..=8);
        let status = [
            Status::Ok,
            Status::Overloaded,
            Status::Malformed,
            Status::DeadlineExceeded,
            Status::Unsupported,
            Status::Internal,
        ][rng.gen_range(0..6)];
        let payload = match rng.gen_range(0..4) {
            0 => ReplyPayload::Empty,
            1 => ReplyPayload::Bits((0..n).map(|_| rng.gen::<bool>()).collect()),
            2 => ReplyPayload::Perm((0..n as u16).collect()),
            _ => ReplyPayload::Message(format!("diag {}", rng.gen::<u32>())),
        };
        let n_field = match &payload {
            ReplyPayload::Bits(_) | ReplyPayload::Perm(_) => n as u32,
            _ => 0,
        };
        let rep = Reply { status, req_id: rng.gen(), n: n_field, payload };
        let framed = encode_reply(&rep);
        prop_assert_eq!(decode_reply(&framed[4..]).as_ref(), Ok(&rep));
    }

    /// Truncating a valid request body anywhere yields a typed error,
    /// never a panic or a bogus success.
    #[test]
    fn truncation_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = random_request(&mut rng);
        let framed = encode_request(&req);
        let body = &framed[4..];
        let cut = rng.gen_range(0..body.len());
        let decoded = decode_request(&body[..cut], DEFAULT_MAX_N);
        prop_assert!(decoded.is_err(), "truncated body at {} decoded", cut);
    }

    /// Flipping one byte of a valid request body either still decodes
    /// (the flip hit payload bits / req_id / deadline) or fails with a
    /// typed error — it never panics.
    #[test]
    fn single_byte_corruption_is_typed(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = random_request(&mut rng);
        let framed = encode_request(&req);
        let mut body = framed[4..].to_vec();
        let at = rng.gen_range(0..body.len());
        body[at] ^= 1 << rng.gen_range(0..8);
        let _ = decode_request(&body, DEFAULT_MAX_N); // must not panic
    }
}

/// The explicit malformed-frame corpus from the issue: every entry must
/// produce the *named* typed error.
#[test]
fn malformed_corpus_is_typed() {
    let good = encode_request(&Request::sort(NetKind::MuxMerger, 77, &[true; 16]));
    let body = good[4..].to_vec();

    // Truncated header.
    assert!(matches!(
        decode_request(&body[..7], DEFAULT_MAX_N),
        Err(FrameError::Truncated { needed: 20, got: 7 })
    ));

    // n = 0.
    let mut zero_n = body.clone();
    zero_n[16..20].copy_from_slice(&0u32.to_le_bytes());
    zero_n.truncate(20);
    assert_eq!(
        decode_request(&zero_n, DEFAULT_MAX_N),
        Err(FrameError::ZeroN)
    );

    // n > max.
    let mut big_n = body.clone();
    big_n[16..20].copy_from_slice(&(DEFAULT_MAX_N + 1).to_le_bytes());
    assert!(matches!(
        decode_request(&big_n, DEFAULT_MAX_N),
        Err(FrameError::NTooLarge { n, max }) if n == DEFAULT_MAX_N + 1 && max == DEFAULT_MAX_N
    ));

    // Bad version.
    let mut bad_version = body.clone();
    bad_version[1] = 0xFF;
    assert_eq!(
        decode_request(&bad_version, DEFAULT_MAX_N),
        Err(FrameError::BadVersion { got: 0xFF })
    );

    // Non-power-of-two n.
    let mut odd_n = body.clone();
    odd_n[16..20].copy_from_slice(&12u32.to_le_bytes());
    assert_eq!(
        decode_request(&odd_n, DEFAULT_MAX_N),
        Err(FrameError::NNotPow2 { n: 12 })
    );

    // Payload length mismatch.
    let mut short_payload = body.clone();
    short_payload.pop();
    assert!(matches!(
        decode_request(&short_payload, DEFAULT_MAX_N),
        Err(FrameError::PayloadLen {
            expected: 2,
            got: 1
        })
    ));

    // Permute destination out of range.
    let mut perm_req =
        encode_request(&Request::permute(NetKind::Prefix, 5, &[3, 2, 1, 0]))[4..].to_vec();
    let payload_at = perm_req.len() - 8;
    perm_req[payload_at..payload_at + 2].copy_from_slice(&9u16.to_le_bytes());
    assert!(matches!(
        decode_request(&perm_req, DEFAULT_MAX_N),
        Err(FrameError::BadDestination {
            index: 0,
            dest: 9,
            n: 4
        })
    ));

    // Length-prefix overflow is caught at the framing layer.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
    let err = proto::read_frame(&mut &oversized[..]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

/// Every FrameError display names its offending field/value so the
/// Malformed reply is actionable.
#[test]
fn frame_errors_render_their_evidence() {
    let cases: Vec<(FrameError, &str)> = vec![
        (FrameError::Truncated { needed: 20, got: 3 }, "20"),
        (
            FrameError::Oversized {
                len: 1 << 30,
                max: MAX_FRAME,
            },
            "1073741824",
        ),
        (FrameError::BadVersion { got: 9 }, "9"),
        (FrameError::NTooLarge { n: 8192, max: 4096 }, "8192"),
        (FrameError::NNotPow2 { n: 12 }, "12"),
        (
            FrameError::BadDestination {
                index: 3,
                dest: 99,
                n: 16,
            },
            "99",
        ),
    ];
    for (err, needle) in cases {
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} should mention {needle}");
    }
}
