//! The wire protocol of `absort serve`: length-prefixed binary frames
//! with a versioned header and typed, recoverable parse errors.
//!
//! Every frame is `[u32 LE body length][body]`. A request body is a
//! fixed 20-byte header followed by a kind-specific payload:
//!
//! ```text
//! offset  size  field
//!      0     1  magic        (0xA5 requests, 0x5A replies)
//!      1     1  version      (currently 1)
//!      2     1  kind         (0 sort, 1 permute, 2 ping, 3 chaos-panic)
//!      3     1  network      (0 prefix, 1 mux-merger, 2 nonadaptive)
//!      4     8  req_id       (echoed verbatim in the reply)
//!     12     4  deadline_ms  (relative to server receipt; 0 = none)
//!     16     4  n            (input width; power of two)
//!     20     …  payload      (sort: ⌈n/8⌉ packed bits, LSB-first;
//!                             permute: n × u16 LE destinations)
//! ```
//!
//! A reply body is `magic version status req_id n payload-tag payload`.
//! Parsing never panics: every malformed byte sequence maps to a
//! [`FrameError`] variant that names what was wrong, so the server can
//! answer with a typed `Malformed` reply and **keep the connection**
//! whenever the frame boundary itself was intact (the length prefix was
//! readable and sane). Only framing-level damage — a length prefix
//! beyond [`MAX_FRAME`], or a stream truncated mid-frame — forces the
//! connection closed, because there is no boundary left to resync on.

use std::io::{self, Read};

/// First byte of every request body.
pub const MAGIC_REQUEST: u8 = 0xA5;
/// First byte of every reply body.
pub const MAGIC_REPLY: u8 = 0x5A;
/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;
/// Hard ceiling on a frame body; a length prefix beyond this is framing
/// damage (or a hostile client) and poisons its connection.
pub const MAX_FRAME: usize = 1 << 20;
/// Default ceiling on the request width `n` (servers may configure lower).
pub const DEFAULT_MAX_N: u32 = 4096;

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Sort `n` bits through the selected network (the batched path).
    Sort,
    /// Route a full destination permutation through the radix permuter.
    Permute,
    /// Liveness probe; answered immediately, bypassing the work queue.
    Ping,
    /// A sort request that additionally forces a worker panic on its
    /// first (batched) evaluation attempt. Honored only by servers
    /// started with chaos hooks enabled; otherwise answered
    /// `Unsupported`. Exists so the degradation ladder is testable end
    /// to end: the batch panics, every batch-mate is retried solo, and
    /// the chaos request itself still gets its correct sorted reply.
    ChaosPanic,
}

impl RequestKind {
    fn code(self) -> u8 {
        match self {
            RequestKind::Sort => 0,
            RequestKind::Permute => 1,
            RequestKind::Ping => 2,
            RequestKind::ChaosPanic => 3,
        }
    }

    fn parse(b: u8) -> Option<RequestKind> {
        match b {
            0 => Some(RequestKind::Sort),
            1 => Some(RequestKind::Permute),
            2 => Some(RequestKind::Ping),
            3 => Some(RequestKind::ChaosPanic),
            _ => None,
        }
    }
}

/// Which network evaluates a sort (and which sorter steers a permute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// The paper's adaptive prefix sorter.
    Prefix,
    /// The adaptive multiplexed merger.
    MuxMerger,
    /// The non-adaptive baseline network.
    Nonadaptive,
}

impl NetKind {
    /// All kinds, in wire-code order.
    pub const ALL: [NetKind; 3] = [NetKind::Prefix, NetKind::MuxMerger, NetKind::Nonadaptive];

    fn code(self) -> u8 {
        match self {
            NetKind::Prefix => 0,
            NetKind::MuxMerger => 1,
            NetKind::Nonadaptive => 2,
        }
    }

    fn from_code(b: u8) -> Option<NetKind> {
        match b {
            0 => Some(NetKind::Prefix),
            1 => Some(NetKind::MuxMerger),
            2 => Some(NetKind::Nonadaptive),
            _ => None,
        }
    }

    /// Stable name used by CLIs and reports.
    pub fn name(self) -> &'static str {
        match self {
            NetKind::Prefix => "prefix",
            NetKind::MuxMerger => "mux-merger",
            NetKind::Nonadaptive => "nonadaptive",
        }
    }

    /// Parses a CLI spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<NetKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "prefix" => Some(NetKind::Prefix),
            "mux-merger" | "muxmerge" | "mux" => Some(NetKind::MuxMerger),
            "nonadaptive" => Some(NetKind::Nonadaptive),
            _ => None,
        }
    }
}

impl std::fmt::Display for NetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub kind: RequestKind,
    /// Which network does it.
    pub network: NetKind,
    /// Client-chosen correlation id, echoed verbatim in the reply.
    pub req_id: u64,
    /// Relative deadline in milliseconds from server receipt (0 = none).
    pub deadline_ms: u32,
    /// Input width.
    pub n: u32,
    /// Sort / chaos-panic input bits (`n` entries); empty otherwise.
    pub bits: Vec<bool>,
    /// Permute destinations (`n` entries); empty otherwise.
    pub perm: Vec<u16>,
}

impl Request {
    /// A sort request (the batched fast path).
    pub fn sort(network: NetKind, req_id: u64, bits: &[bool]) -> Request {
        Request {
            kind: RequestKind::Sort,
            network,
            req_id,
            deadline_ms: 0,
            n: bits.len() as u32,
            bits: bits.to_vec(),
            perm: Vec::new(),
        }
    }

    /// A permute request: `perm[i]` is the destination of input `i`.
    pub fn permute(network: NetKind, req_id: u64, perm: &[u16]) -> Request {
        Request {
            kind: RequestKind::Permute,
            network,
            req_id,
            deadline_ms: 0,
            n: perm.len() as u32,
            bits: Vec::new(),
            perm: perm.to_vec(),
        }
    }

    /// A liveness probe.
    pub fn ping(req_id: u64) -> Request {
        Request {
            kind: RequestKind::Ping,
            network: NetKind::MuxMerger,
            req_id,
            deadline_ms: 0,
            n: 0,
            bits: Vec::new(),
            perm: Vec::new(),
        }
    }

    /// Sets the relative deadline.
    pub fn with_deadline_ms(mut self, ms: u32) -> Request {
        self.deadline_ms = ms;
        self
    }
}

/// Reply status codes. Everything except `Ok` is a *typed degradation*:
/// the server stayed alive and told the client exactly why this request
/// did not produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was served; the payload carries the result.
    Ok,
    /// The bounded work queue was full: load was shed instead of
    /// buffered. Retry with backoff.
    Overloaded,
    /// The request frame failed to parse; the payload message names the
    /// [`FrameError`].
    Malformed,
    /// The request's deadline expired before a worker admitted it.
    DeadlineExceeded,
    /// The request is valid but this server will not serve it (e.g. a
    /// chaos request on a server without chaos hooks).
    Unsupported,
    /// Evaluation failed even on the solo scalar retry.
    Internal,
}

impl Status {
    fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::Malformed => 2,
            Status::DeadlineExceeded => 3,
            Status::Unsupported => 4,
            Status::Internal => 5,
        }
    }

    fn from_code(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Overloaded),
            2 => Some(Status::Malformed),
            3 => Some(Status::DeadlineExceeded),
            4 => Some(Status::Unsupported),
            5 => Some(Status::Internal),
            _ => None,
        }
    }

    /// Stable name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::Malformed => "malformed",
            Status::DeadlineExceeded => "deadline_exceeded",
            Status::Unsupported => "unsupported",
            Status::Internal => "internal",
        }
    }
}

/// The result payload of a reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyPayload {
    /// No payload (ping replies, most error statuses).
    Empty,
    /// Sorted output bits.
    Bits(Vec<bool>),
    /// Routed payloads: entry `slot` holds the source index delivered to
    /// output `slot`.
    Perm(Vec<u16>),
    /// Human-readable diagnostic (Malformed / Internal details).
    Message(String),
}

/// A decoded reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Outcome.
    pub status: Status,
    /// Echo of the request's correlation id (0 when the id itself was
    /// unreadable).
    pub req_id: u64,
    /// Echo of the request width (0 when unknown).
    pub n: u32,
    /// Result or diagnostic.
    pub payload: ReplyPayload,
}

impl Reply {
    /// An error reply carrying a diagnostic message.
    pub fn error(status: Status, req_id: u64, n: u32, message: impl Into<String>) -> Reply {
        Reply {
            status,
            req_id,
            n,
            payload: ReplyPayload::Message(message.into()),
        }
    }
}

/// Why a frame failed to parse. Every variant names the offending field
/// and value, so a `Malformed` reply (and a test assertion) can say
/// exactly what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The body ended before the fixed header (or a declared payload).
    Truncated {
        /// Bytes the parser needed.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`]; the connection cannot
    /// resync and must close.
    Oversized {
        /// Declared body length.
        len: u64,
        /// The ceiling it violated.
        max: usize,
    },
    /// First body byte was not the expected magic.
    BadMagic {
        /// Byte found.
        got: u8,
        /// Byte expected ([`MAGIC_REQUEST`] or [`MAGIC_REPLY`]).
        expected: u8,
    },
    /// Unknown protocol version.
    BadVersion {
        /// Version byte found.
        got: u8,
    },
    /// Unknown request kind code.
    BadKind {
        /// Kind byte found.
        got: u8,
    },
    /// Unknown network code.
    BadNetwork {
        /// Network byte found.
        got: u8,
    },
    /// Unknown reply status code.
    BadStatus {
        /// Status byte found.
        got: u8,
    },
    /// Unknown reply payload tag.
    BadPayloadTag {
        /// Tag byte found.
        got: u8,
    },
    /// `n == 0` on a request kind that needs data.
    ZeroN,
    /// `n` exceeds the server's configured ceiling.
    NTooLarge {
        /// Requested width.
        n: u32,
        /// Server ceiling.
        max: u32,
    },
    /// `n` is not a power of two (every network in the paper assumes
    /// power-of-two widths).
    NNotPow2 {
        /// Requested width.
        n: u32,
    },
    /// The payload length does not match what the header promised.
    PayloadLen {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// A permute destination is out of range.
    BadDestination {
        /// Payload index of the bad entry.
        index: usize,
        /// The destination value.
        dest: u16,
        /// The width it must be below.
        n: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: length prefix {len} exceeds max {max}")
            }
            FrameError::BadMagic { got, expected } => {
                write!(f, "bad magic byte {got:#04x} (expected {expected:#04x})")
            }
            FrameError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks {VERSION})"
                )
            }
            FrameError::BadKind { got } => write!(f, "unknown request kind {got}"),
            FrameError::BadNetwork { got } => write!(f, "unknown network code {got}"),
            FrameError::BadStatus { got } => write!(f, "unknown reply status {got}"),
            FrameError::BadPayloadTag { got } => write!(f, "unknown reply payload tag {got}"),
            FrameError::ZeroN => write!(f, "n = 0: an empty request has nothing to sort"),
            FrameError::NTooLarge { n, max } => {
                write!(f, "n = {n} exceeds this server's maximum {max}")
            }
            FrameError::NNotPow2 { n } => write!(f, "n = {n} is not a power of two"),
            FrameError::PayloadLen { expected, got } => {
                write!(
                    f,
                    "payload length mismatch: header implies {expected} bytes, got {got}"
                )
            }
            FrameError::BadDestination { index, dest, n } => {
                write!(
                    f,
                    "permute destination {dest} at index {index} is out of range for n = {n}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Packs bits LSB-first into bytes (bit `i` lands in `byte[i/8]` bit
/// `i%8`).
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

/// Inverse of [`pack_bits`] for a known width.
pub fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect()
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn get_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

const REQUEST_HEADER: usize = 20;
const REPLY_HEADER: usize = 15;

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(REQUEST_HEADER + req.bits.len() / 8 + req.perm.len() * 2);
    body.push(MAGIC_REQUEST);
    body.push(VERSION);
    body.push(req.kind.code());
    body.push(req.network.code());
    put_u64(&mut body, req.req_id);
    put_u32(&mut body, req.deadline_ms);
    put_u32(&mut body, req.n);
    match req.kind {
        RequestKind::Sort | RequestKind::ChaosPanic => body.extend(pack_bits(&req.bits)),
        RequestKind::Permute => {
            for &d in &req.perm {
                body.extend_from_slice(&d.to_le_bytes());
            }
        }
        RequestKind::Ping => {}
    }
    frame(body)
}

/// Wraps a body in its length prefix.
pub fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend(body);
    out
}

/// Best-effort correlation id extraction from a request body that
/// failed to parse, so the `Malformed` reply can still name the request
/// it answers. Returns 0 when the id bytes are not all present.
pub fn salvage_req_id(body: &[u8]) -> u64 {
    if body.len() >= 12 {
        get_u64(body, 4)
    } else {
        0
    }
}

/// Decodes a request body. `max_n` is the server's configured width
/// ceiling (see [`DEFAULT_MAX_N`]).
pub fn decode_request(body: &[u8], max_n: u32) -> Result<Request, FrameError> {
    if body.len() < REQUEST_HEADER {
        return Err(FrameError::Truncated {
            needed: REQUEST_HEADER,
            got: body.len(),
        });
    }
    if body[0] != MAGIC_REQUEST {
        return Err(FrameError::BadMagic {
            got: body[0],
            expected: MAGIC_REQUEST,
        });
    }
    if body[1] != VERSION {
        return Err(FrameError::BadVersion { got: body[1] });
    }
    let kind = RequestKind::parse(body[2]).ok_or(FrameError::BadKind { got: body[2] })?;
    let network = NetKind::from_code(body[3]).ok_or(FrameError::BadNetwork { got: body[3] })?;
    let req_id = get_u64(body, 4);
    let deadline_ms = get_u32(body, 12);
    let n = get_u32(body, 16);
    let payload = &body[REQUEST_HEADER..];

    if kind == RequestKind::Ping {
        if n != 0 {
            return Err(FrameError::NNotPow2 { n });
        }
        if !payload.is_empty() {
            return Err(FrameError::PayloadLen {
                expected: 0,
                got: payload.len(),
            });
        }
        return Ok(Request {
            kind,
            network,
            req_id,
            deadline_ms,
            n: 0,
            bits: Vec::new(),
            perm: Vec::new(),
        });
    }

    if n == 0 {
        return Err(FrameError::ZeroN);
    }
    if n > max_n {
        return Err(FrameError::NTooLarge { n, max: max_n });
    }
    if !n.is_power_of_two() || n < 2 {
        return Err(FrameError::NNotPow2 { n });
    }

    let (bits, perm) = match kind {
        RequestKind::Sort | RequestKind::ChaosPanic => {
            let expected = (n as usize).div_ceil(8);
            if payload.len() != expected {
                return Err(FrameError::PayloadLen {
                    expected,
                    got: payload.len(),
                });
            }
            (unpack_bits(payload, n as usize), Vec::new())
        }
        RequestKind::Permute => {
            let expected = n as usize * 2;
            if payload.len() != expected {
                return Err(FrameError::PayloadLen {
                    expected,
                    got: payload.len(),
                });
            }
            let mut perm = Vec::with_capacity(n as usize);
            for i in 0..n as usize {
                let dest = get_u16(payload, i * 2);
                if u32::from(dest) >= n {
                    return Err(FrameError::BadDestination { index: i, dest, n });
                }
                perm.push(dest);
            }
            (Vec::new(), perm)
        }
        RequestKind::Ping => unreachable!("ping handled above"),
    };

    Ok(Request {
        kind,
        network,
        req_id,
        deadline_ms,
        n,
        bits,
        perm,
    })
}

const TAG_EMPTY: u8 = 0;
const TAG_BITS: u8 = 1;
const TAG_PERM: u8 = 2;
const TAG_MESSAGE: u8 = 3;

/// Encodes a reply as a complete frame (length prefix included).
pub fn encode_reply(rep: &Reply) -> Vec<u8> {
    let mut body = Vec::with_capacity(REPLY_HEADER + 8);
    body.push(MAGIC_REPLY);
    body.push(VERSION);
    body.push(rep.status.code());
    put_u64(&mut body, rep.req_id);
    put_u32(&mut body, rep.n);
    match &rep.payload {
        ReplyPayload::Empty => body.push(TAG_EMPTY),
        ReplyPayload::Bits(bits) => {
            body.push(TAG_BITS);
            body.extend(pack_bits(bits));
        }
        ReplyPayload::Perm(out) => {
            body.push(TAG_PERM);
            for &s in out {
                body.extend_from_slice(&s.to_le_bytes());
            }
        }
        ReplyPayload::Message(msg) => {
            body.push(TAG_MESSAGE);
            body.extend_from_slice(msg.as_bytes());
        }
    }
    frame(body)
}

/// Decodes a reply body.
pub fn decode_reply(body: &[u8]) -> Result<Reply, FrameError> {
    if body.len() < REPLY_HEADER + 1 {
        return Err(FrameError::Truncated {
            needed: REPLY_HEADER + 1,
            got: body.len(),
        });
    }
    if body[0] != MAGIC_REPLY {
        return Err(FrameError::BadMagic {
            got: body[0],
            expected: MAGIC_REPLY,
        });
    }
    if body[1] != VERSION {
        return Err(FrameError::BadVersion { got: body[1] });
    }
    let status = Status::from_code(body[2]).ok_or(FrameError::BadStatus { got: body[2] })?;
    let req_id = get_u64(body, 3);
    let n = get_u32(body, 11);
    let tag = body[REPLY_HEADER];
    let payload = &body[REPLY_HEADER + 1..];
    let payload = match tag {
        TAG_EMPTY => {
            if !payload.is_empty() {
                return Err(FrameError::PayloadLen {
                    expected: 0,
                    got: payload.len(),
                });
            }
            ReplyPayload::Empty
        }
        TAG_BITS => {
            let expected = (n as usize).div_ceil(8);
            if payload.len() != expected {
                return Err(FrameError::PayloadLen {
                    expected,
                    got: payload.len(),
                });
            }
            ReplyPayload::Bits(unpack_bits(payload, n as usize))
        }
        TAG_PERM => {
            let expected = n as usize * 2;
            if payload.len() != expected {
                return Err(FrameError::PayloadLen {
                    expected,
                    got: payload.len(),
                });
            }
            ReplyPayload::Perm((0..n as usize).map(|i| get_u16(payload, i * 2)).collect())
        }
        TAG_MESSAGE => ReplyPayload::Message(String::from_utf8_lossy(payload).into_owned()),
        other => return Err(FrameError::BadPayloadTag { got: other }),
    };
    Ok(Reply {
        status,
        req_id,
        n,
        payload,
    })
}

/// Reads one frame body from a blocking reader. Returns `Ok(None)` on a
/// clean EOF at a frame boundary; a mid-frame EOF is
/// [`FrameError::Truncated`] mapped into `io::ErrorKind::UnexpectedEof`.
/// A length prefix beyond [`MAX_FRAME`] is reported as
/// `io::ErrorKind::InvalidData` carrying the [`FrameError::Oversized`]
/// rendering.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    FrameError::Truncated {
                        needed: 4,
                        got: filled,
                    }
                    .to_string(),
                ));
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Oversized {
                len: len as u64,
                max: MAX_FRAME,
            }
            .to_string(),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_request_roundtrip() {
        let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let req = Request::sort(NetKind::MuxMerger, 42, &bits).with_deadline_ms(250);
        let framed = encode_request(&req);
        let body = &framed[4..];
        assert_eq!(decode_request(body, DEFAULT_MAX_N).unwrap(), req);
    }

    #[test]
    fn permute_request_roundtrip() {
        let perm: Vec<u16> = (0..16u16).rev().collect();
        let req = Request::permute(NetKind::Prefix, 7, &perm);
        let framed = encode_request(&req);
        assert_eq!(decode_request(&framed[4..], DEFAULT_MAX_N).unwrap(), req);
    }

    #[test]
    fn reply_roundtrips_all_payloads() {
        let reps = [
            Reply {
                status: Status::Ok,
                req_id: 1,
                n: 8,
                payload: ReplyPayload::Bits(vec![false, false, true, true, true, true, true, true]),
            },
            Reply {
                status: Status::Ok,
                req_id: 2,
                n: 4,
                payload: ReplyPayload::Perm(vec![3, 2, 1, 0]),
            },
            Reply::error(Status::Malformed, 3, 0, "n = 0: nothing to sort"),
            Reply {
                status: Status::Overloaded,
                req_id: 4,
                n: 0,
                payload: ReplyPayload::Empty,
            },
        ];
        for rep in reps {
            let framed = encode_reply(&rep);
            assert_eq!(decode_reply(&framed[4..]).unwrap(), rep);
        }
    }

    #[test]
    fn typed_rejections_name_the_field() {
        let good = encode_request(&Request::sort(NetKind::Prefix, 9, &[true, false]));
        let body = good[4..].to_vec();

        let mut bad_magic = body.clone();
        bad_magic[0] = 0x00;
        assert_eq!(
            decode_request(&bad_magic, DEFAULT_MAX_N),
            Err(FrameError::BadMagic {
                got: 0,
                expected: MAGIC_REQUEST
            })
        );

        let mut bad_version = body.clone();
        bad_version[1] = 9;
        assert_eq!(
            decode_request(&bad_version, DEFAULT_MAX_N),
            Err(FrameError::BadVersion { got: 9 })
        );

        let mut zero_n = body.clone();
        zero_n[16..20].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            decode_request(&zero_n, DEFAULT_MAX_N),
            Err(FrameError::ZeroN)
        );

        let mut big_n = body.clone();
        big_n[16..20].copy_from_slice(&(DEFAULT_MAX_N * 2).to_le_bytes());
        assert_eq!(
            decode_request(&big_n, DEFAULT_MAX_N),
            Err(FrameError::NTooLarge {
                n: DEFAULT_MAX_N * 2,
                max: DEFAULT_MAX_N
            })
        );

        assert_eq!(
            decode_request(&body[..10], DEFAULT_MAX_N),
            Err(FrameError::Truncated {
                needed: 20,
                got: 10
            })
        );
    }

    #[test]
    fn salvaged_req_id_survives_bad_magic() {
        let mut framed = encode_request(&Request::sort(NetKind::Prefix, 0xDEAD_BEEF, &[true; 4]));
        framed[4] = 0x00; // corrupt the magic
        assert_eq!(salvage_req_id(&framed[4..]), 0xDEAD_BEEF);
        assert_eq!(salvage_req_id(&framed[4..8]), 0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits: Vec<bool> = (0..100).map(|i| i % 7 < 3).collect();
        assert_eq!(unpack_bits(&pack_bits(&bits), bits.len()), bits);
    }

    #[test]
    fn read_frame_reports_oversize_and_eof() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = read_frame(&mut &oversized[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("oversized"), "{err}");

        let empty: &[u8] = &[];
        assert!(read_frame(&mut &empty[..]).unwrap().is_none());

        let truncated: &[u8] = &[3, 0];
        let err = read_frame(&mut &truncated[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
