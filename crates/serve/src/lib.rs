//! # absort-serve — the fault-tolerant sorting service
//!
//! A long-running TCP daemon serving the compiled sorting tapes of
//! *Adaptive Binary Sorting Schemes and Associated Interconnection
//! Networks* (Chien & Oruç) to many concurrent clients. The paper's
//! networks have bounded depth, which makes per-request latency
//! predictable enough to enforce real deadlines — provided the serving
//! layer stays correct and responsive under overload, malformed input,
//! and partial failure. That is this crate's whole job:
//!
//! * [`proto`] — length-prefixed binary protocol, versioned header,
//!   per-request deadlines, typed [`proto::FrameError`] rejection;
//! * [`cache`] — LRU of compiled circuits with single-flight compilation;
//! * [`server`] — acceptor + thread-per-core workers, request coalescing
//!   into `[u64; 4]` wide-lane batches, bounded queues with load
//!   shedding, panic isolation with batched→scalar degradation, and
//!   SIGTERM graceful drain;
//! * [`client`] — the blocking client used by `bench_serve` and the
//!   chaos harness;
//! * [`signal`] — the SIGTERM/SIGINT drain latch.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;
pub mod signal;

pub use client::{Client, ClientError};
pub use proto::{NetKind, Reply, ReplyPayload, Request, RequestKind, Status};
pub use server::{ServeConfig, ServeStats, Server};

/// The reference answer for a zero-one sort: output bit `i` of a correct
/// sorter is 1 exactly when `i >= n - popcount(input)`. Every consumer
/// of `Ok` sort replies differentially checks against this oracle.
pub fn sorted_oracle(bits: &[bool]) -> Vec<bool> {
    let ones = bits.iter().filter(|&&b| b).count();
    let n = bits.len();
    (0..n).map(|i| i >= n - ones).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matches_sorting() {
        let bits = [true, false, true, true, false, false, false, true];
        let mut sorted = bits.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted_oracle(&bits), sorted);
    }
}
