//! The daemon: acceptor + thread-per-core workers over bounded channels.
//!
//! ## Degradation ladder
//!
//! Every failure mode has a *typed* response one rung down; nothing
//! tears the daemon down:
//!
//! 1. **Wide batched path** — requests coalesced across connections into
//!    `[u64; 4]` lane batches (256 requests per tape pass).
//! 2. **Scalar solo retry** — if a batch evaluation panics, each request
//!    in the batch is retried alone through the interpreter's
//!    `try_eval`, so one poisoned request cannot corrupt or fail its
//!    batch-mates. The panic is caught, counted, and isolated.
//! 3. **Typed error reply** — a request that fails its solo retry gets
//!    `Internal`; a full queue gets `Overloaded` (load shedding, not
//!    buffering); an expired deadline gets `DeadlineExceeded`; a
//!    malformed frame gets `Malformed` and the connection lives on.
//! 4. **Connection poisoning** — only framing-level damage (oversized
//!    length prefix, mid-frame truncation, a slow-loris stall) closes
//!    the offending connection. The daemon keeps serving everyone else.
//!
//! Graceful drain: [`Server::trigger_drain`] (or SIGTERM via the CLI)
//! stops the acceptor, lets readers finish the frame they are on, flushes
//! every queued request through the workers, and joins with a stats
//! snapshot — all accepted requests are answered.

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use absort_circuit::compile::CompiledEvaluator;
use absort_circuit::eval::{pack_lanes_wide, unpack_lanes_wide};
use absort_circuit::passes::{CompileOptions, OptLevel};
use absort_core::sorter::SorterKind;
use absort_networks::permuter::RadixPermuter;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};

use crate::cache::{CacheKey, CircuitCache};
use crate::proto::{
    self, FrameError, NetKind, Reply, ReplyPayload, Request, RequestKind, Status, MAX_FRAME,
};

/// How many requests one `[u64; 4]` wide pass can carry.
pub const WIDE_LANES: usize = 256;

/// Server configuration. `Default` is tuned for tests and the smoke CI
/// job; the CLI exposes the operationally interesting knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker thread count; 0 means one per available core.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue sheds load with
    /// `Overloaded` instead of buffering.
    pub queue_capacity: usize,
    /// Bounded per-connection reply-queue depth; a slow client drops
    /// its own replies, never blocking a worker.
    pub reply_capacity: usize,
    /// Max requests coalesced into one wide batch (clamped to
    /// [`WIDE_LANES`]).
    pub batch_max: usize,
    /// Largest accepted request width.
    pub max_n: u32,
    /// Compiled-circuit LRU capacity.
    pub cache_capacity: usize,
    /// Read poll interval: how often idle readers check the drain flag.
    pub read_poll: Duration,
    /// How long a connection may sit mid-frame before it is closed as a
    /// slow-loris.
    pub midframe_stall: Duration,
    /// Socket write timeout for replies.
    pub write_timeout: Duration,
    /// After a drain is requested, connections keep reading for this
    /// long so frames already in flight are accepted and answered
    /// instead of being reset mid-stream.
    pub drain_grace: Duration,
    /// Honor `ChaosPanic` requests (forced worker panic mid-batch).
    pub chaos: bool,
    /// Compiler tier for cached tapes.
    pub opt: OptLevel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 1024,
            reply_capacity: 1024,
            batch_max: WIDE_LANES,
            max_n: proto::DEFAULT_MAX_N,
            cache_capacity: 16,
            read_poll: Duration::from_millis(25),
            midframe_stall: Duration::from_millis(2000),
            write_timeout: Duration::from_millis(2000),
            drain_grace: Duration::from_millis(250),
            chaos: false,
            opt: OptLevel::O2,
        }
    }
}

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Live atomic counters shared by every thread of a server.
        #[derive(Default)]
        struct Counters {
            $($name: AtomicU64,)*
        }

        /// A point-in-time snapshot of a server's counters.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct ServeStats {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl Counters {
            fn snapshot(&self) -> ServeStats {
                ServeStats {
                    $($name: self.$name.load(Ordering::SeqCst),)*
                }
            }
        }
    };
}

counters! {
    /// Connections accepted.
    conns_accepted,
    /// Connections fully closed (reader side exited).
    conns_closed,
    /// Well-formed requests admitted to the work queue.
    requests,
    /// `Ok` replies produced.
    replies_ok,
    /// Requests shed with `Overloaded` (queue full).
    shed,
    /// Requests answered `DeadlineExceeded`.
    deadline_missed,
    /// Frames rejected with a typed `Malformed` reply.
    malformed,
    /// Connections closed for stalling mid-frame.
    slow_loris_closed,
    /// Requests answered `Unsupported`.
    unsupported,
    /// Ping requests answered inline.
    pings,
    /// Worker panics caught and isolated (batch demoted to solo).
    panics_isolated,
    /// Solo scalar retries run after a batch panic.
    solo_retries,
    /// Requests answered `Internal` (failed even the solo retry).
    internal_errors,
    /// Reply frames dropped because the client was too slow or gone.
    write_drops,
    /// Wide batches evaluated.
    batches,
}

impl ServeStats {
    /// Total requests answered with *some* typed reply (the graceful-
    /// drain invariant is `answered() == requests + shed + malformed +
    /// unsupported + pings + deadline-misses seen at the reader`).
    pub fn answered(&self) -> u64 {
        self.replies_ok
            + self.shed
            + self.deadline_missed
            + self.malformed
            + self.unsupported
            + self.pings
            + self.internal_errors
    }
}

/// One admitted unit of work.
struct Job {
    req: Request,
    received: Instant,
    deadline: Option<Instant>,
    reply_tx: Sender<Vec<u8>>,
}

/// A running daemon. Dropping without [`Server::join`] detaches the
/// threads; call `join` for a graceful drain.
pub struct Server {
    local_addr: SocketAddr,
    drain: Arc<AtomicBool>,
    counters: Arc<Counters>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<Sender<Job>>,
}

/// Suppress default panic backtraces from serve worker threads: their
/// panics are caught, counted, and degraded by design (chaos injection
/// relies on this), so the default hook would only spam stderr.
fn install_quiet_worker_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = thread::current()
                .name()
                .is_some_and(|n| n.starts_with("serve-wrk"));
            if !quiet {
                prev(info);
            }
        }));
    });
}

impl Server {
    /// Binds, spawns the acceptor and workers, and returns immediately.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        install_quiet_worker_hook();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let drain = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let cache = Arc::new(CircuitCache::new(cfg.cache_capacity));
        let (job_tx, job_rx) = channel::bounded::<Job>(cfg.queue_capacity.max(1));

        let n_workers = if cfg.workers == 0 {
            thread::available_parallelism().map_or(2, |p| p.get())
        } else {
            cfg.workers
        };
        let batch_max = cfg.batch_max.clamp(1, WIDE_LANES);

        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let rx = job_rx.clone();
            let cache = Arc::clone(&cache);
            let counters = Arc::clone(&counters);
            let opts = CompileOptions::for_level(cfg.opt);
            let opt = cfg.opt;
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-wrk-{i}"))
                    .spawn(move || worker_loop(rx, cache, counters, opts, opt, batch_max))
                    .expect("spawn worker"),
            );
        }
        drop(job_rx);

        let acceptor = {
            let drain = Arc::clone(&drain);
            let counters = Arc::clone(&counters);
            let job_tx = job_tx.clone();
            let cfg = cfg.clone();
            thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(listener, cfg, drain, counters, job_tx))
                .expect("spawn acceptor")
        };

        Ok(Server {
            local_addr,
            drain,
            counters,
            acceptor: Some(acceptor),
            workers,
            job_tx: Some(job_tx),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests a graceful drain: stop accepting, flush in-flight work.
    pub fn trigger_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot()
    }

    /// Drains and joins every thread, returning the final stats.
    pub fn join(mut self) -> ServeStats {
        self.trigger_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Dropping the last non-reader sender lets workers run the queue
        // dry and exit (readers have all exited with the acceptor).
        self.job_tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.counters.snapshot()
    }
}

// ---------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------

fn accept_loop(
    listener: TcpListener,
    cfg: ServeConfig,
    drain: Arc<AtomicBool>,
    counters: Arc<Counters>,
    job_tx: Sender<Job>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !drain.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                counters.conns_accepted.fetch_add(1, Ordering::SeqCst);
                #[cfg(feature = "telemetry")]
                absort_telemetry::counter_add("serve.conns_accepted", 1);
                match spawn_connection(stream, &cfg, &drain, &counters, &job_tx) {
                    Ok((r, w)) => {
                        conns.push(r);
                        conns.push(w);
                    }
                    Err(_) => {
                        counters.conns_closed.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
        // Opportunistically reap finished connection threads so a
        // long-lived daemon does not accumulate handles.
        conns.retain(|h| !h.is_finished());
    }
    // Final backlog sweep: connections the kernel established before the
    // drain flag flipped would be reset by dropping the listener. Accept
    // them once — their readers run inside the drain grace window, so
    // requests already in flight are answered before close.
    while let Ok((stream, _peer)) = listener.accept() {
        counters.conns_accepted.fetch_add(1, Ordering::SeqCst);
        if let Ok((r, w)) = spawn_connection(stream, &cfg, &drain, &counters, &job_tx) {
            conns.push(r);
            conns.push(w);
        } else {
            counters.conns_closed.fetch_add(1, Ordering::SeqCst);
        }
    }
    drop(job_tx);
    for h in conns {
        let _ = h.join();
    }
}

fn spawn_connection(
    stream: TcpStream,
    cfg: &ServeConfig,
    drain: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
    job_tx: &Sender<Job>,
) -> io::Result<(JoinHandle<()>, JoinHandle<()>)> {
    let write_half = stream.try_clone()?;
    write_half.set_write_timeout(Some(cfg.write_timeout))?;
    stream.set_read_timeout(Some(cfg.read_poll))?;
    let (reply_tx, reply_rx) = channel::bounded::<Vec<u8>>(cfg.reply_capacity.max(1));

    let writer = {
        let counters = Arc::clone(counters);
        thread::Builder::new()
            .name("serve-conn-w".to_string())
            .spawn(move || writer_loop(write_half, reply_rx, counters))?
    };
    let reader = {
        let cfg = cfg.clone();
        let drain = Arc::clone(drain);
        let counters = Arc::clone(counters);
        let job_tx = job_tx.clone();
        thread::Builder::new()
            .name("serve-conn-r".to_string())
            .spawn(move || reader_loop(stream, cfg, drain, counters, job_tx, reply_tx))?
    };
    Ok((reader, writer))
}

// ---------------------------------------------------------------------
// Writer: the only thread that touches the socket's write half.
// ---------------------------------------------------------------------

fn writer_loop(mut stream: TcpStream, reply_rx: Receiver<Vec<u8>>, counters: Arc<Counters>) {
    let mut dead = false;
    while let Ok(frame) = reply_rx.recv() {
        if dead {
            // Keep draining so reply senders never block on a corpse.
            counters.write_drops.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        if stream.write_all(&frame).is_err() {
            // Write timeout or a gone peer: this client stops receiving
            // replies, and nobody else is affected.
            counters.write_drops.fetch_add(1, Ordering::SeqCst);
            dead = true;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Best-effort reply enqueue: a slow or dead client drops its own
/// replies rather than blocking the sender.
fn offer_reply(reply_tx: &Sender<Vec<u8>>, reply: &Reply, counters: &Counters) {
    if reply_tx.try_send(proto::encode_reply(reply)).is_err() {
        counters.write_drops.fetch_add(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------
// Reader: frame loop with drain polling and slow-loris detection.
// ---------------------------------------------------------------------

enum ReadOutcome {
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// Server is draining and the connection is between frames.
    Drain,
    /// Stalled mid-frame past the configured limit.
    SlowLoris,
    /// Length prefix beyond [`MAX_FRAME`]: unrecoverable framing damage.
    Oversized(u64),
    /// Stream ended mid-frame.
    TruncatedEof {
        needed: usize,
        got: usize,
    },
    Io,
}

/// Reads one length-prefixed frame. Poll timeouts between frames check
/// the drain flag; poll timeouts *inside* a frame accrue against the
/// slow-loris budget.
fn read_frame_live(stream: &mut TcpStream, cfg: &ServeConfig, drain: &AtomicBool) -> ReadOutcome {
    use io::Read as _;

    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    let mut frame_start: Option<Instant> = None;
    loop {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::TruncatedEof {
                        needed: 4,
                        got: filled,
                    }
                };
            }
            Ok(k) => {
                filled += k;
                frame_start.get_or_insert_with(Instant::now);
                if filled == 4 {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                match frame_start {
                    None => {
                        if drain.load(Ordering::SeqCst) {
                            return ReadOutcome::Drain;
                        }
                    }
                    Some(start) => {
                        if start.elapsed() > cfg.midframe_stall {
                            return ReadOutcome::SlowLoris;
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Io,
        }
    }

    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return ReadOutcome::Oversized(len as u64);
    }
    let start = frame_start.unwrap_or_else(Instant::now);
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match stream.read(&mut body[got..]) {
            Ok(0) => {
                return ReadOutcome::TruncatedEof {
                    needed: 4 + len,
                    got: 4 + got,
                }
            }
            Ok(k) => got += k,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if start.elapsed() > cfg.midframe_stall {
                    return ReadOutcome::SlowLoris;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Io,
        }
    }
    ReadOutcome::Frame(body)
}

fn reader_loop(
    mut stream: TcpStream,
    cfg: ServeConfig,
    drain: Arc<AtomicBool>,
    counters: Arc<Counters>,
    job_tx: Sender<Job>,
    reply_tx: Sender<Vec<u8>>,
) {
    let mut drain_seen: Option<Instant> = None;
    loop {
        match read_frame_live(&mut stream, &cfg, &drain) {
            ReadOutcome::Frame(body) => {
                if !handle_frame(&body, &cfg, &counters, &job_tx, &reply_tx) {
                    break;
                }
            }
            ReadOutcome::Drain => {
                // Grace window: frames the client sent before the drain
                // may still be in flight — keep reading briefly so they
                // are accepted and answered, not reset mid-stream.
                let since = *drain_seen.get_or_insert_with(Instant::now);
                if since.elapsed() > cfg.drain_grace {
                    break;
                }
            }
            ReadOutcome::Eof | ReadOutcome::Io => break,
            ReadOutcome::SlowLoris => {
                counters.slow_loris_closed.fetch_add(1, Ordering::SeqCst);
                break;
            }
            ReadOutcome::Oversized(len) => {
                counters.malformed.fetch_add(1, Ordering::SeqCst);
                let err = FrameError::Oversized {
                    len,
                    max: MAX_FRAME,
                };
                offer_reply(
                    &reply_tx,
                    &Reply::error(Status::Malformed, 0, 0, err.to_string()),
                    &counters,
                );
                break; // no frame boundary left to resync on
            }
            ReadOutcome::TruncatedEof { needed, got } => {
                counters.malformed.fetch_add(1, Ordering::SeqCst);
                let err = FrameError::Truncated { needed, got };
                offer_reply(
                    &reply_tx,
                    &Reply::error(Status::Malformed, 0, 0, err.to_string()),
                    &counters,
                );
                break;
            }
        }
    }
    counters.conns_closed.fetch_add(1, Ordering::SeqCst);
    // reply_tx and job_tx drop here; the writer exits once every queued
    // job for this connection has been answered.
}

/// Handles one complete frame body. Returns `false` when the connection
/// should close (drain observed at enqueue).
fn handle_frame(
    body: &[u8],
    cfg: &ServeConfig,
    counters: &Counters,
    job_tx: &Sender<Job>,
    reply_tx: &Sender<Vec<u8>>,
) -> bool {
    let req = match proto::decode_request(body, cfg.max_n) {
        Ok(req) => req,
        Err(e) => {
            // Body-level damage: typed reply, connection survives.
            counters.malformed.fetch_add(1, Ordering::SeqCst);
            #[cfg(feature = "telemetry")]
            absort_telemetry::counter_add("serve.malformed", 1);
            let reply = Reply::error(
                Status::Malformed,
                proto::salvage_req_id(body),
                0,
                e.to_string(),
            );
            offer_reply(reply_tx, &reply, counters);
            return true;
        }
    };

    match req.kind {
        RequestKind::Ping => {
            counters.pings.fetch_add(1, Ordering::SeqCst);
            offer_reply(
                reply_tx,
                &Reply {
                    status: Status::Ok,
                    req_id: req.req_id,
                    n: 0,
                    payload: ReplyPayload::Empty,
                },
                counters,
            );
            return true;
        }
        RequestKind::ChaosPanic if !cfg.chaos => {
            counters.unsupported.fetch_add(1, Ordering::SeqCst);
            offer_reply(
                reply_tx,
                &Reply::error(
                    Status::Unsupported,
                    req.req_id,
                    req.n,
                    "chaos requests need a server started with --chaos",
                ),
                counters,
            );
            return true;
        }
        RequestKind::Permute if req.network == NetKind::Nonadaptive => {
            counters.unsupported.fetch_add(1, Ordering::SeqCst);
            offer_reply(
                reply_tx,
                &Reply::error(
                    Status::Unsupported,
                    req.req_id,
                    req.n,
                    "permute requires an adaptive sorter (prefix or mux-merger)",
                ),
                counters,
            );
            return true;
        }
        _ => {}
    }

    let received = Instant::now();
    let deadline = if req.deadline_ms > 0 {
        Some(received + Duration::from_millis(u64::from(req.deadline_ms)))
    } else {
        None
    };
    let job = Job {
        req,
        received,
        deadline,
        reply_tx: reply_tx.clone(),
    };
    match job_tx.try_send(job) {
        Ok(()) => {
            counters.requests.fetch_add(1, Ordering::SeqCst);
            #[cfg(feature = "telemetry")]
            absort_telemetry::counter_add("serve.requests", 1);
            true
        }
        Err(TrySendError::Full(job)) => {
            // Bounded queue: shed, don't buffer.
            counters.shed.fetch_add(1, Ordering::SeqCst);
            #[cfg(feature = "telemetry")]
            absort_telemetry::counter_add("serve.shed", 1);
            offer_reply(
                &job.reply_tx,
                &Reply {
                    status: Status::Overloaded,
                    req_id: job.req.req_id,
                    n: job.req.n,
                    payload: ReplyPayload::Empty,
                },
                counters,
            );
            true
        }
        Err(TrySendError::Disconnected(job)) => {
            // Workers are gone (drain completed under us): tell the
            // client to go elsewhere and close.
            counters.shed.fetch_add(1, Ordering::SeqCst);
            offer_reply(
                &job.reply_tx,
                &Reply {
                    status: Status::Overloaded,
                    req_id: job.req.req_id,
                    n: job.req.n,
                    payload: ReplyPayload::Empty,
                },
                counters,
            );
            false
        }
    }
}

// ---------------------------------------------------------------------
// Workers: coalesce, batch, degrade.
// ---------------------------------------------------------------------

fn worker_loop(
    job_rx: Receiver<Job>,
    cache: Arc<CircuitCache>,
    counters: Arc<Counters>,
    opts: CompileOptions,
    opt: OptLevel,
    batch_max: usize,
) {
    loop {
        let first = match job_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => job,
            Err(channel::RecvTimeoutError::Timeout) => continue,
            Err(channel::RecvTimeoutError::Disconnected) => break,
        };
        let mut batch = vec![first];
        while batch.len() < batch_max {
            match job_rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        process_batch(batch, &cache, &counters, &opts, opt);
    }
}

fn reply_and_count(job: &Job, reply: &Reply, counters: &Counters) {
    offer_reply(&job.reply_tx, reply, counters);
    #[cfg(feature = "telemetry")]
    {
        let us = job.received.elapsed().as_micros() as u64;
        absort_telemetry::hist_record("serve.request_us", us);
        absort_telemetry::counter_add(
            match reply.status {
                Status::Ok => "serve.replies_ok",
                _ => "serve.replies_err",
            },
            1,
        );
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = &job.received;
}

fn expired(job: &Job, now: Instant) -> bool {
    job.deadline.is_some_and(|d| d <= now)
}

fn reply_deadline(job: &Job, counters: &Counters) {
    counters.deadline_missed.fetch_add(1, Ordering::SeqCst);
    #[cfg(feature = "telemetry")]
    absort_telemetry::counter_add("serve.deadline_missed", 1);
    reply_and_count(
        job,
        &Reply {
            status: Status::DeadlineExceeded,
            req_id: job.req.req_id,
            n: job.req.n,
            payload: ReplyPayload::Empty,
        },
        counters,
    );
}

fn process_batch(
    batch: Vec<Job>,
    cache: &CircuitCache,
    counters: &Counters,
    opts: &CompileOptions,
    opt: OptLevel,
) {
    let now = Instant::now();
    let mut groups: HashMap<CacheKey, Vec<Job>> = HashMap::new();
    for job in batch {
        // Deadline check #1: at dequeue.
        if expired(&job, now) {
            reply_deadline(&job, counters);
            continue;
        }
        match job.req.kind {
            RequestKind::Permute => serve_permute(job, counters),
            RequestKind::Sort | RequestKind::ChaosPanic => {
                let key = CacheKey {
                    network: job.req.network,
                    n: job.req.n,
                    opt,
                };
                groups.entry(key).or_default().push(job);
            }
            RequestKind::Ping => unreachable!("pings are answered at the reader"),
        }
    }
    for (key, jobs) in groups {
        serve_sort_group(key, jobs, cache, counters, opts);
    }
}

fn serve_sort_group(
    key: CacheKey,
    jobs: Vec<Job>,
    cache: &CircuitCache,
    counters: &Counters,
    opts: &CompileOptions,
) {
    // The compile itself is guarded: widths are validated at decode, but
    // a cache/compile panic must degrade to typed Internal replies, not
    // a dead worker.
    let compiled = match panic::catch_unwind(AssertUnwindSafe(|| cache.get_or_build(key, opts))) {
        Ok(c) => c,
        Err(_) => {
            counters.panics_isolated.fetch_add(1, Ordering::SeqCst);
            for job in &jobs {
                counters.internal_errors.fetch_add(1, Ordering::SeqCst);
                reply_and_count(
                    job,
                    &Reply::error(
                        Status::Internal,
                        job.req.req_id,
                        job.req.n,
                        "circuit compilation failed",
                    ),
                    counters,
                );
            }
            return;
        }
    };

    // Deadline check #2: mid-batch admission, after any compile wait.
    let now = Instant::now();
    let mut admitted = Vec::with_capacity(jobs.len());
    for job in jobs {
        if expired(&job, now) {
            reply_deadline(&job, counters);
        } else {
            admitted.push(job);
        }
    }
    if admitted.is_empty() {
        return;
    }

    counters.batches.fetch_add(1, Ordering::SeqCst);
    #[cfg(feature = "telemetry")]
    absort_telemetry::hist_record("serve.batch_lanes", admitted.len() as u64);

    let chaos_armed = admitted
        .iter()
        .any(|j| j.req.kind == RequestKind::ChaosPanic);
    let vectors: Vec<Vec<bool>> = admitted.iter().map(|j| j.req.bits.clone()).collect();
    let n = key.n as usize;

    // Rung 1: the wide batched path.
    let wide = panic::catch_unwind(AssertUnwindSafe(|| {
        if chaos_armed {
            panic!("chaos: forced worker panic mid-batch");
        }
        let packed = pack_lanes_wide::<4>(&vectors, n);
        let mut ev = CompiledEvaluator::<[u64; 4]>::new(&compiled.tape);
        ev.try_run(&packed)
            .map(|out| unpack_lanes_wide::<4>(&out, vectors.len()))
    }));

    let was_panic = wide.is_err();
    match wide {
        Ok(Ok(outputs)) => {
            for (job, out) in admitted.iter().zip(outputs) {
                counters.replies_ok.fetch_add(1, Ordering::SeqCst);
                reply_and_count(
                    job,
                    &Reply {
                        status: Status::Ok,
                        req_id: job.req.req_id,
                        n: job.req.n,
                        payload: ReplyPayload::Bits(out),
                    },
                    counters,
                );
            }
        }
        Ok(Err(_)) | Err(_) => {
            // Rung 2: the batch failed as a unit — a panic (chaos or
            // genuine) or an eval error. Retry every member solo through
            // the scalar interpreter so one poisoned request cannot take
            // its batch-mates down with it.
            if was_panic {
                counters.panics_isolated.fetch_add(1, Ordering::SeqCst);
                #[cfg(feature = "telemetry")]
                absort_telemetry::counter_add("serve.panics_isolated", 1);
            }
            for job in &admitted {
                counters.solo_retries.fetch_add(1, Ordering::SeqCst);
                let solo = panic::catch_unwind(AssertUnwindSafe(|| {
                    compiled.circuit.try_eval(&job.req.bits)
                }));
                match solo {
                    Ok(Ok(out)) => {
                        counters.replies_ok.fetch_add(1, Ordering::SeqCst);
                        reply_and_count(
                            job,
                            &Reply {
                                status: Status::Ok,
                                req_id: job.req.req_id,
                                n: job.req.n,
                                payload: ReplyPayload::Bits(out),
                            },
                            counters,
                        );
                    }
                    Ok(Err(e)) => {
                        counters.internal_errors.fetch_add(1, Ordering::SeqCst);
                        reply_and_count(
                            job,
                            &Reply::error(
                                Status::Internal,
                                job.req.req_id,
                                job.req.n,
                                format!("solo retry failed: {e:?}"),
                            ),
                            counters,
                        );
                    }
                    Err(_) => {
                        counters.internal_errors.fetch_add(1, Ordering::SeqCst);
                        reply_and_count(
                            job,
                            &Reply::error(
                                Status::Internal,
                                job.req.req_id,
                                job.req.n,
                                "solo retry panicked",
                            ),
                            counters,
                        );
                    }
                }
            }
        }
    }
}

fn serve_permute(job: Job, counters: &Counters) {
    let kind = match job.req.network {
        NetKind::Prefix => SorterKind::Prefix,
        NetKind::MuxMerger => SorterKind::MuxMerger,
        NetKind::Nonadaptive => unreachable!("rejected at the reader"),
    };
    let n = job.req.n as usize;
    let packets: Vec<(usize, u16)> = job
        .req
        .perm
        .iter()
        .enumerate()
        .map(|(i, &d)| (d as usize, i as u16))
        .collect();
    let routed = panic::catch_unwind(AssertUnwindSafe(|| {
        RadixPermuter::new(kind, n).route(&packets)
    }));
    match routed {
        Ok(Ok(out)) => {
            counters.replies_ok.fetch_add(1, Ordering::SeqCst);
            reply_and_count(
                &job,
                &Reply {
                    status: Status::Ok,
                    req_id: job.req.req_id,
                    n: job.req.n,
                    payload: ReplyPayload::Perm(out),
                },
                counters,
            );
        }
        Ok(Err(e)) => {
            // Destinations were each in range but not a permutation:
            // that's the client's frame, not our failure.
            counters.malformed.fetch_add(1, Ordering::SeqCst);
            reply_and_count(
                &job,
                &Reply::error(
                    Status::Malformed,
                    job.req.req_id,
                    job.req.n,
                    format!("invalid permutation: {e:?}"),
                ),
                counters,
            );
        }
        Err(_) => {
            counters.panics_isolated.fetch_add(1, Ordering::SeqCst);
            counters.internal_errors.fetch_add(1, Ordering::SeqCst);
            reply_and_count(
                &job,
                &Reply::error(
                    Status::Internal,
                    job.req.req_id,
                    job.req.n,
                    "permute routing panicked",
                ),
                counters,
            );
        }
    }
}
