//! SIGTERM/SIGINT latch for graceful drain.
//!
//! The daemon polls [`drain_requested`] from its accept loop; when a
//! termination signal arrives it stops accepting, flushes in-flight
//! requests, and exits 0. The handler itself only stores into an
//! `AtomicBool` — the single async-signal-safe operation we need.
//!
//! There is no `libc` crate in this build environment, so the `signal(2)`
//! binding is declared directly. This is the one unsafe island in the
//! crate (the crate root is `#![deny(unsafe_code)]`; this module opts
//! out explicitly).

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

/// True once a termination signal (or [`request_drain`]) has been seen.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Programmatic equivalent of receiving SIGTERM (used by tests and by
/// the CLI's own shutdown paths).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Clears the latch (test isolation only).
pub fn reset_for_test() {
    DRAIN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::DRAIN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)`. Good enough here: we install one handler,
        // once, before any threads that care, and the handler body is a
        // single atomic store.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT → drain-latch handlers. Idempotent.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_sets_and_resets() {
        reset_for_test();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_for_test();
        assert!(!drain_requested());
    }
}
