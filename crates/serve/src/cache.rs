//! LRU cache of compiled circuits with single-flight compilation.
//!
//! The daemon serves many widths and networks; compiling a
//! [`CompiledCircuit`] is milliseconds of work that must not be repeated
//! per request — nor duplicated when ten connections ask for the same
//! `(network, n)` at once. Each cache slot is therefore either
//! `Building` (one thread owns the compile; everyone else waits on a
//! condvar) or `Ready(Arc<..>)`. A builder that **panics** removes its
//! `Building` marker via a drop guard and wakes the waiters, so a
//! poisoned compile degrades to a retry by the next caller instead of a
//! deadlocked queue.

use std::sync::{Arc, Condvar, Mutex};

use absort_circuit::circuit::Circuit;
use absort_circuit::compile::CompiledCircuit;
use absort_circuit::passes::{CompileOptions, OptLevel};

use crate::proto::NetKind;

/// Cache key: which network, what width, which optimization tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Network family.
    pub network: NetKind,
    /// Input width.
    pub n: u32,
    /// Compiler tier the tape was built at.
    pub opt: OptLevel,
}

/// A circuit ready to serve: the source netlist (scalar fallback path
/// and oracle) plus its compiled tape (wide batched path).
pub struct Compiled {
    /// Source netlist.
    pub circuit: Circuit,
    /// Compiled tape for the same netlist.
    pub tape: CompiledCircuit,
}

/// Builds the netlist for a cache key. Panics on unsupported widths are
/// caught by the caller's single-flight guard.
pub fn build_network(network: NetKind, n: usize) -> Circuit {
    match network {
        NetKind::Prefix => absort_core::prefix::build(n),
        NetKind::MuxMerger => absort_core::muxmerge::build(n),
        NetKind::Nonadaptive => absort_core::nonadaptive::build(n),
    }
}

enum Slot {
    /// Some thread is compiling this key right now.
    Building,
    /// Compiled and shareable.
    Ready(Arc<Compiled>),
}

struct Entry {
    key: CacheKey,
    slot: Slot,
}

/// Bounded LRU cache of [`Compiled`] circuits with single-flight
/// compilation. Recency is tracked by position: the entry vector is
/// ordered oldest-first, and every hit moves its entry to the back.
pub struct CircuitCache {
    entries: Mutex<Vec<Entry>>,
    changed: Condvar,
    capacity: usize,
}

/// Removes the `Building` marker if the builder unwinds, so waiting
/// threads retry instead of sleeping forever.
struct BuildGuard<'a> {
    cache: &'a CircuitCache,
    key: CacheKey,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut entries = self.cache.entries.lock().unwrap();
            entries.retain(|e| !(e.key == self.key && matches!(e.slot, Slot::Building)));
            self.cache.changed.notify_all();
        }
    }
}

impl CircuitCache {
    /// A cache holding at most `capacity` compiled circuits
    /// (a capacity of 0 is rounded up to 1).
    pub fn new(capacity: usize) -> CircuitCache {
        CircuitCache {
            entries: Mutex::new(Vec::new()),
            changed: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of `Ready` entries currently cached.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches!(e.slot, Slot::Ready(_)))
            .count()
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the compiled circuit for `key`, compiling it (at most
    /// once across all threads) if absent. `opts` must agree with
    /// `key.opt` — the caller derives both from the server config.
    pub fn get_or_build(&self, key: CacheKey, opts: &CompileOptions) -> Arc<Compiled> {
        loop {
            {
                let mut entries = self.entries.lock().unwrap();
                if let Some(pos) = entries.iter().position(|e| e.key == key) {
                    match &entries[pos].slot {
                        Slot::Ready(arc) => {
                            let arc = Arc::clone(arc);
                            // LRU touch: move to the back (most recent).
                            let e = entries.remove(pos);
                            entries.push(e);
                            return arc;
                        }
                        Slot::Building => {
                            // Someone else is compiling; wait for any
                            // state change, then re-check from scratch.
                            let _unused = self.changed.wait(entries).unwrap();
                            continue;
                        }
                    }
                }
                // Miss: claim the build. Evict the oldest Ready entry
                // first if we are at capacity (Building entries are
                // never evicted — their builder holds the claim).
                let ready_count = entries
                    .iter()
                    .filter(|e| matches!(e.slot, Slot::Ready(_)))
                    .count();
                if ready_count >= self.capacity {
                    if let Some(pos) = entries
                        .iter()
                        .position(|e| matches!(e.slot, Slot::Ready(_)))
                    {
                        entries.remove(pos);
                    }
                }
                entries.push(Entry {
                    key,
                    slot: Slot::Building,
                });
            }

            let mut guard = BuildGuard {
                cache: self,
                key,
                armed: true,
            };
            // Compile outside the lock: other keys stay servable.
            let circuit = build_network(key.network, key.n as usize);
            let tape = CompiledCircuit::compile_with(&circuit, opts);
            let compiled = Arc::new(Compiled { circuit, tape });
            guard.armed = false;

            let mut entries = self.entries.lock().unwrap();
            match entries.iter_mut().find(|e| e.key == key) {
                Some(e) => e.slot = Slot::Ready(Arc::clone(&compiled)),
                // Our Building marker can only have been removed by our
                // own guard, which we just disarmed — but stay safe.
                None => entries.push(Entry {
                    key,
                    slot: Slot::Ready(Arc::clone(&compiled)),
                }),
            }
            self.changed.notify_all();
            return compiled;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(n: u32) -> CacheKey {
        CacheKey {
            network: NetKind::MuxMerger,
            n,
            opt: OptLevel::O2,
        }
    }

    #[test]
    fn hit_returns_same_arc() {
        let cache = CircuitCache::new(4);
        let opts = CompileOptions::default();
        let a = cache.get_or_build(key(8), &opts);
        let b = cache.get_or_build(key(8), &opts);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recent() {
        let cache = CircuitCache::new(2);
        let opts = CompileOptions::default();
        let a8 = cache.get_or_build(key(8), &opts);
        let _a16 = cache.get_or_build(key(16), &opts);
        // Touch 8 so 16 is the LRU victim.
        let _ = cache.get_or_build(key(8), &opts);
        let _a4 = cache.get_or_build(key(4), &opts);
        assert_eq!(cache.len(), 2);
        // 8 must still be cached (same Arc), 16 must have been evicted.
        let b8 = cache.get_or_build(key(8), &opts);
        assert!(Arc::ptr_eq(&a8, &b8));
    }

    #[test]
    fn single_flight_under_contention() {
        let cache = Arc::new(CircuitCache::new(4));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    let c = cache.get_or_build(key(32), &CompileOptions::default());
                    assert_eq!(c.tape.n_inputs(), 32);
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 8);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn builder_panic_releases_waiters() {
        // n = 6 is not a power of two, so build_network panics inside
        // get_or_build. The drop guard must clear the Building marker so
        // a subsequent good request still succeeds.
        let cache = Arc::new(CircuitCache::new(4));
        let bad = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _ = cache.get_or_build(key(6), &CompileOptions::default());
            })
        };
        assert!(bad.join().is_err(), "n = 6 build should panic");
        let ok = cache.get_or_build(key(8), &CompileOptions::default());
        assert_eq!(ok.tape.n_inputs(), 8);
        assert_eq!(cache.len(), 1);
    }
}
