//! Minimal blocking client for the serve protocol — used by the
//! `bench_serve` load generator, the chaos harness, and tests.

use std::io::{self, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::proto::{self, FrameError, Reply, Request};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's reply failed to parse.
    Frame(FrameError),
    /// The server closed the connection at a frame boundary.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Frame(e) => write!(f, "bad reply frame: {e}"),
            ClientError::Closed => write!(f, "connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to an `absort serve` daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects immediately.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Connects with retry until `timeout` elapses — for CI and tests
    /// that race the daemon's bind.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        timeout: Duration,
    ) -> io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// The underlying stream (tests use this to inject raw bytes).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Sends a request without waiting for the reply (pipelining).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.stream.write_all(&proto::encode_request(req))
    }

    /// Sends raw bytes verbatim (chaos tests inject corruption here).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Receives the next reply frame.
    pub fn recv(&mut self) -> Result<Reply, ClientError> {
        match proto::read_frame(&mut self.stream)? {
            None => Err(ClientError::Closed),
            Some(body) => proto::decode_reply(&body).map_err(ClientError::Frame),
        }
    }

    /// Round-trips one request.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        self.send(req)?;
        self.recv()
    }
}
