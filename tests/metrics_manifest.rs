//! End-to-end test of the telemetry pipeline: run the real `absort`
//! binary with `--metrics`, then parse the JSON run manifest it writes
//! and check the spans and counters a build must produce.

use absort_telemetry::json;
use std::process::{Command, Output};

fn run(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_absort"))
        .args(args)
        .current_dir(dir)
        .env_remove("ABSORT_METRICS")
        .output()
        .expect("spawn absort CLI")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("absort_metrics_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// True when the binary under test was compiled without the `telemetry`
/// feature — it then acknowledges and ignores `--metrics`, so the
/// manifest assertions below don't apply (the no-op path is still
/// exercised: the run must succeed and write nothing).
fn telemetry_compiled_out(out: &Output) -> bool {
    String::from_utf8_lossy(&out.stderr).contains("built without the `telemetry` feature")
}

#[test]
fn inspect_writes_valid_manifest() {
    let dir = temp_dir("inspect");
    let manifest_path = dir.join("inspect.json");
    let out = run(
        &[
            "inspect",
            "--network",
            "prefix",
            "--n",
            "64",
            "--metrics",
            "--metrics-out",
            manifest_path.to_str().unwrap(),
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    if telemetry_compiled_out(&out) {
        assert!(!manifest_path.exists(), "no manifest when compiled out");
        std::fs::remove_dir_all(&dir).ok();
        return;
    }

    // The stderr report is the human half of the exporter pair.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("telemetry: spans"), "{err}");
    assert!(err.contains("build.components"), "{err}");

    let text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let m = json::parse(&text).expect("manifest is valid JSON");
    assert_eq!(
        m.get("schema").and_then(json::Value::as_str),
        Some("absort-telemetry/v1")
    );

    // Build spans must exist with nonzero wall-clock time.
    let spans = m
        .get("spans")
        .and_then(json::Value::as_obj)
        .expect("spans object");
    assert!(spans.len() >= 5, "expected >= 5 spans, got {}", spans.len());
    let build_total = m
        .get("spans")
        .and_then(|s| s.get("inspect/build"))
        .and_then(|s| s.get("total_ns"))
        .and_then(json::Value::as_i64)
        .expect("inspect/build span recorded");
    assert!(build_total > 0, "build span must have nonzero time");
    assert!(
        spans.iter().any(|(path, _)| path.contains("prefix_sorter")),
        "builder scope spans expected in {:?}",
        spans.iter().map(|(p, _)| p).collect::<Vec<_>>()
    );

    // Component counters from Builder::finish.
    let counters = m.get("counters").expect("counters object");
    let counter = |name: &str| {
        counters
            .get(name)
            .and_then(json::Value::as_i64)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(counter("build.circuits"), 1);
    assert!(counter("build.components") > 0);
    assert!(counter("build.wires") > counter("build.components"));

    // The inspect command also records what it measured.
    let circuit = m.get("circuit").expect("circuit section");
    assert_eq!(
        circuit.get("network").and_then(json::Value::as_str),
        Some("prefix")
    );
    assert_eq!(circuit.get("n").and_then(json::Value::as_i64), Some(64));
    assert!(circuit.get("cost").and_then(json::Value::as_i64).unwrap() > 0);
    assert!(
        circuit
            .get("mean_fanout")
            .and_then(json::Value::as_f64)
            .unwrap()
            > 0.0
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_defaults_to_results_dir() {
    let dir = temp_dir("default_path");
    let out = run(
        &[
            "inspect",
            "--network",
            "mux-merger",
            "--n",
            "32",
            "--metrics",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    if telemetry_compiled_out(&out) {
        assert!(
            !dir.join("results").exists(),
            "no manifest when compiled out"
        );
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    let metrics_dir = dir.join("results").join("metrics");
    let entries: Vec<_> = std::fs::read_dir(&metrics_dir)
        .expect("results/metrics created")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "exactly one manifest: {entries:?}");
    let m = json::parse(&std::fs::read_to_string(&entries[0]).unwrap()).expect("valid JSON");
    assert!(m
        .get("counters")
        .and_then(|c| c.get("build.circuits"))
        .is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_metrics_means_no_manifest_and_clean_stderr() {
    let dir = temp_dir("off");
    let out = run(&["inspect", "--network", "prefix", "--n", "32"], &dir);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        !err.contains("telemetry"),
        "telemetry must be silent when off: {err}"
    );
    assert!(
        !dir.join("results").exists(),
        "no manifest directory when off"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--metrics-out`/`--trace-out` name telemetry output paths; accepting
/// them without `--metrics` would silently record nothing, so the CLI
/// rejects the combination naming the offending flag (this guard lives
/// in argument parsing, so it applies in both feature builds).
#[test]
fn output_paths_require_metrics() {
    let dir = temp_dir("outguard");
    for flag in ["--metrics-out", "--trace-out"] {
        let out = run(
            &[
                "inspect",
                "--network",
                "prefix",
                "--n",
                "32",
                flag,
                "x.json",
            ],
            &dir,
        );
        assert_eq!(out.status.code(), Some(2), "{flag} without --metrics");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(flag) && err.contains("requires --metrics"),
            "{flag}: {err}"
        );
        assert!(!dir.join("x.json").exists(), "{flag} must not write");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The flag-only metrics run with `--trace-out` must produce a valid
/// Chrome `trace_event` document (balanced, properly nested B/E pairs
/// per thread, monotone timestamps) and a manifest whose histogram
/// section carries the per-vector eval latency percentiles.
#[test]
fn metrics_run_emits_trace_and_histograms() {
    let dir = temp_dir("trace");
    let trace_path = dir.join("run.trace.json");
    let manifest_path = dir.join("run.json");
    let out = run(
        &[
            "--network",
            "fish",
            "--metrics",
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            manifest_path.to_str().unwrap(),
        ],
        &dir,
    );
    if telemetry_compiled_out(&out) {
        // Without the feature the metrics-run mode records nothing and
        // says so rather than silently writing an empty trace.
        assert_eq!(out.status.code(), Some(2));
        assert!(!trace_path.exists());
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // -- Chrome trace document ------------------------------------------
    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let t = json::parse(&text).expect("trace is valid JSON");
    assert_eq!(
        t.get("displayTimeUnit").and_then(json::Value::as_str),
        Some("ms")
    );
    let events = t
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .expect("traceEvents array");
    assert!(
        events.len() >= 6,
        "expected several events, got {}",
        events.len()
    );

    // Per-tid stack check: every E closes the most recent open B, every
    // stack drains by the end, and timestamps never go backwards.
    let mut stacks: std::collections::BTreeMap<i64, Vec<String>> = Default::default();
    let mut last_ts = f64::NEG_INFINITY;
    let (mut begins, mut ends) = (0usize, 0usize);
    for ev in events {
        let ph = ev.get("ph").and_then(json::Value::as_str).expect("ph");
        let tid = ev.get("tid").and_then(json::Value::as_i64).expect("tid");
        let ts = ev.get("ts").and_then(json::Value::as_f64).expect("ts");
        assert_eq!(ev.get("pid").and_then(json::Value::as_i64), Some(1));
        assert!(ts >= last_ts, "timestamps must be monotone");
        last_ts = ts;
        match ph {
            "B" => {
                let name = ev.get("name").and_then(json::Value::as_str).expect("name");
                stacks.entry(tid).or_default().push(name.to_owned());
                begins += 1;
            }
            "E" => {
                assert!(
                    stacks.entry(tid).or_default().pop().is_some(),
                    "E event with no open B on tid {tid}"
                );
                ends += 1;
            }
            "C" => {
                assert!(ev.get("name").is_some() && ev.get("args").is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(begins, ends, "B/E events must balance");
    assert!(begins > 0, "at least one span must be traced");
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }

    // -- Histogram section of the manifest ------------------------------
    let m = json::parse(&std::fs::read_to_string(&manifest_path).unwrap()).expect("manifest");
    let hists = m
        .get("histograms")
        .and_then(json::Value::as_obj)
        .expect("histograms section");
    for name in ["eval.interp.vector_ns", "eval.compiled.vector_ns"] {
        let h = hists
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("histogram {name} missing"));
        let field = |f: &str| h.get(f).and_then(json::Value::as_i64).expect("hist field");
        assert!(field("count") > 0, "{name} must have samples");
        assert!(field("p50_ns") <= field("p99_ns"), "{name} percentiles");
        assert!(field("p99_ns") <= field("max_ns"), "{name} p99 <= max");
    }
    let samples = m
        .get("counters")
        .and_then(|c| c.get("telemetry.hist.samples"))
        .and_then(json::Value::as_i64)
        .expect("derived telemetry.hist.samples counter");
    assert!(samples > 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flag_errors_name_the_flag() {
    let dir = temp_dir("flags");
    let bad = run(&["inspect", "--network", "prefix", "--n", "banana"], &dir);
    assert!(!bad.status.success());
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(err.contains("--n") && err.contains("banana"), "{err}");

    let missing = run(&["inspect", "--network"], &dir);
    assert!(!missing.status.success());
    let err = String::from_utf8_lossy(&missing.stderr);
    assert!(err.contains("--network requires a value"), "{err}");

    let unknown = run(&["inspect", "--frobnicate"], &dir);
    assert!(!unknown.status.success());
    let err = String::from_utf8_lossy(&unknown.stderr);
    assert!(err.contains("unknown flag --frobnicate"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
