//! End-to-end test of the telemetry pipeline: run the real `absort`
//! binary with `--metrics`, then parse the JSON run manifest it writes
//! and check the spans and counters a build must produce.

use absort_telemetry::json;
use std::process::{Command, Output};

fn run(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_absort"))
        .args(args)
        .current_dir(dir)
        .env_remove("ABSORT_METRICS")
        .output()
        .expect("spawn absort CLI")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("absort_metrics_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// True when the binary under test was compiled without the `telemetry`
/// feature — it then acknowledges and ignores `--metrics`, so the
/// manifest assertions below don't apply (the no-op path is still
/// exercised: the run must succeed and write nothing).
fn telemetry_compiled_out(out: &Output) -> bool {
    String::from_utf8_lossy(&out.stderr).contains("built without the `telemetry` feature")
}

#[test]
fn inspect_writes_valid_manifest() {
    let dir = temp_dir("inspect");
    let manifest_path = dir.join("inspect.json");
    let out = run(
        &[
            "inspect",
            "--network",
            "prefix",
            "--n",
            "64",
            "--metrics-out",
            manifest_path.to_str().unwrap(),
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    if telemetry_compiled_out(&out) {
        assert!(!manifest_path.exists(), "no manifest when compiled out");
        std::fs::remove_dir_all(&dir).ok();
        return;
    }

    // The stderr report is the human half of the exporter pair.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("telemetry: spans"), "{err}");
    assert!(err.contains("build.components"), "{err}");

    let text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let m = json::parse(&text).expect("manifest is valid JSON");
    assert_eq!(
        m.get("schema").and_then(json::Value::as_str),
        Some("absort-telemetry/v1")
    );

    // Build spans must exist with nonzero wall-clock time.
    let spans = m
        .get("spans")
        .and_then(json::Value::as_obj)
        .expect("spans object");
    assert!(spans.len() >= 5, "expected >= 5 spans, got {}", spans.len());
    let build_total = m
        .get("spans")
        .and_then(|s| s.get("inspect/build"))
        .and_then(|s| s.get("total_ns"))
        .and_then(json::Value::as_i64)
        .expect("inspect/build span recorded");
    assert!(build_total > 0, "build span must have nonzero time");
    assert!(
        spans.iter().any(|(path, _)| path.contains("prefix_sorter")),
        "builder scope spans expected in {:?}",
        spans.iter().map(|(p, _)| p).collect::<Vec<_>>()
    );

    // Component counters from Builder::finish.
    let counters = m.get("counters").expect("counters object");
    let counter = |name: &str| {
        counters
            .get(name)
            .and_then(json::Value::as_i64)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(counter("build.circuits"), 1);
    assert!(counter("build.components") > 0);
    assert!(counter("build.wires") > counter("build.components"));

    // The inspect command also records what it measured.
    let circuit = m.get("circuit").expect("circuit section");
    assert_eq!(
        circuit.get("network").and_then(json::Value::as_str),
        Some("prefix")
    );
    assert_eq!(circuit.get("n").and_then(json::Value::as_i64), Some(64));
    assert!(circuit.get("cost").and_then(json::Value::as_i64).unwrap() > 0);
    assert!(
        circuit
            .get("mean_fanout")
            .and_then(json::Value::as_f64)
            .unwrap()
            > 0.0
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_defaults_to_results_dir() {
    let dir = temp_dir("default_path");
    let out = run(
        &[
            "inspect",
            "--network",
            "mux-merger",
            "--n",
            "32",
            "--metrics",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    if telemetry_compiled_out(&out) {
        assert!(
            !dir.join("results").exists(),
            "no manifest when compiled out"
        );
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    let metrics_dir = dir.join("results").join("metrics");
    let entries: Vec<_> = std::fs::read_dir(&metrics_dir)
        .expect("results/metrics created")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "exactly one manifest: {entries:?}");
    let m = json::parse(&std::fs::read_to_string(&entries[0]).unwrap()).expect("valid JSON");
    assert!(m
        .get("counters")
        .and_then(|c| c.get("build.circuits"))
        .is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_metrics_means_no_manifest_and_clean_stderr() {
    let dir = temp_dir("off");
    let out = run(&["inspect", "--network", "prefix", "--n", "32"], &dir);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        !err.contains("telemetry"),
        "telemetry must be silent when off: {err}"
    );
    assert!(
        !dir.join("results").exists(),
        "no manifest directory when off"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flag_errors_name_the_flag() {
    let dir = temp_dir("flags");
    let bad = run(&["inspect", "--network", "prefix", "--n", "banana"], &dir);
    assert!(!bad.status.success());
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(err.contains("--n") && err.contains("banana"), "{err}");

    let missing = run(&["inspect", "--network"], &dir);
    assert!(!missing.status.success());
    let err = String::from_utf8_lossy(&missing.stderr);
    assert!(err.contains("--network requires a value"), "{err}");

    let unknown = run(&["inspect", "--frobnicate"], &dir);
    assert!(!unknown.status.success());
    let err = String::from_utf8_lossy(&unknown.stderr);
    assert!(err.contains("unknown flag --frobnicate"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
