//! Property-based tests (proptest) of the paper's theorems and of the
//! sorting/routing invariants, at sizes beyond exhaustive reach.

use absort::core::fish::kmerge;
use absort::core::{lang, muxmerge, prefix, FishSorter};
use proptest::prelude::*;

/// A random power-of-two-length bit vector, 2^1..=2^maxexp.
fn pow2_bits(max_exp: u32) -> impl Strategy<Value = Vec<bool>> {
    (1..=max_exp).prop_flat_map(|a| proptest::collection::vec(any::<bool>(), 1usize << a))
}

/// A random sorted bit vector of the given length.
fn sorted_bits(len: usize) -> impl Strategy<Value = Vec<bool>> {
    (0..=len).prop_map(move |ones| {
        let mut v = vec![false; len - ones];
        v.extend(std::iter::repeat_n(true, ones));
        v
    })
}

proptest! {
    /// Theorem 1 at random sizes: shuffle of sorted halves ∈ A_n.
    #[test]
    fn theorem1(a in 1u32..=9, seed in any::<u64>()) {
        use rand::prelude::*;
        let half = 1usize << a;
        let mut rng = StdRng::seed_from_u64(seed);
        let mk = |rng: &mut StdRng| {
            let ones = rng.gen_range(0..=half);
            let mut v = vec![false; half - ones];
            v.extend(std::iter::repeat_n(true, ones));
            v
        };
        let (u, l) = (mk(&mut rng), mk(&mut rng));
        prop_assert!(lang::theorem1_holds(&u, &l));
    }

    /// Theorem 2 on synthesized A_n members: the three-run structure is
    /// generated directly, not filtered.
    #[test]
    fn theorem2(
        runs in (0usize..40, 0usize..40, 0usize..40),
        pats in (any::<bool>(), any::<bool>(), any::<bool>())
    ) {
        let (r1, r2, mut r3) = runs;
        let (p1, p2, p3) = pats;
        // Theorem 2 splits the sequence into halves that must themselves
        // be pair-structured (A_{n/2}), so keep the total pair count even
        // (n ≡ 0 mod 4); the paper's power-of-two sizes always satisfy it.
        if (r1 + r2 + r3) % 2 == 1 {
            r3 += 1;
        }
        let mut z = Vec::new();
        for _ in 0..r1 { z.push(p1); z.push(p1); }
        for _ in 0..r2 { z.push(p2); z.push(!p2); }
        for _ in 0..r3 { z.push(p3); z.push(p3); }
        if z.len() >= 4 {
            prop_assert!(lang::in_a_n(&z));
            prop_assert!(lang::theorem2_holds(&z));
        }
    }

    /// Theorem 3 on random bisorted sequences up to 2^10.
    #[test]
    fn theorem3(a in 2u32..=10, ones_u in any::<u64>(), ones_l in any::<u64>()) {
        let half = 1usize << (a - 1);
        let (ou, ol) = ((ones_u as usize) % (half + 1), (ones_l as usize) % (half + 1));
        let mut x = vec![false; half - ou];
        x.extend(std::iter::repeat_n(true, ou));
        x.extend(std::iter::repeat_n(false, half - ol));
        x.extend(std::iter::repeat_n(true, ol));
        prop_assert!(lang::is_bisorted(&x));
        prop_assert!(lang::theorem3_holds(&x));
    }

    /// Theorem 4 on random k-sorted sequences.
    #[test]
    fn theorem4(kexp in 1u32..=4, bexp in 1u32..=6, seed in any::<u64>()) {
        use rand::prelude::*;
        let k = 1usize << kexp;
        let block = 1usize << bexp;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Vec::with_capacity(k * block);
        for _ in 0..k {
            let ones = rng.gen_range(0..=block);
            s.extend(std::iter::repeat_n(false, block - ones));
            s.extend(std::iter::repeat_n(true, ones));
        }
        prop_assert!(lang::theorem4_holds(&s, k));
    }

    /// The three sorters agree with the oracle on random inputs.
    #[test]
    fn sorters_match_oracle(s in pow2_bits(12)) {
        let oracle = lang::sorted_oracle(&s);
        prop_assert_eq!(prefix::sort(&s), oracle.clone());
        prop_assert_eq!(muxmerge::sort(&s), oracle.clone());
        if s.len() >= 4 {
            prop_assert_eq!(FishSorter::with_default_k(s.len()).sort(&s), oracle);
        }
    }

    /// Sorting is idempotent: sorting a sorted sequence is the identity.
    #[test]
    fn sorting_sorted_is_identity(a in 1u32..=10, s in (0usize..=1024)) {
        let n = 1usize << a;
        let ones = s % (n + 1);
        let mut v = vec![false; n - ones];
        v.extend(std::iter::repeat_n(true, ones));
        prop_assert_eq!(prefix::sort(&v), v.clone());
        prop_assert_eq!(muxmerge::sort(&v), v.clone());
    }

    /// The mux-merger *merger* sorts any bisorted input (not only ones
    /// arising from recursive sorting).
    #[test]
    fn merger_on_random_bisorted(a in 2u32..=10, ou in any::<u64>(), ol in any::<u64>()) {
        let half = 1usize << (a - 1);
        let (ou, ol) = ((ou as usize) % (half + 1), (ol as usize) % (half + 1));
        let mut x = vec![false; half - ou];
        x.extend(std::iter::repeat_n(true, ou));
        x.extend(std::iter::repeat_n(false, half - ol));
        x.extend(std::iter::repeat_n(true, ol));
        prop_assert_eq!(muxmerge::merge(&x), lang::sorted_oracle(&x));
    }

    /// k-SWAP output halves always satisfy Theorem 4's typing, and the
    /// k-way merger sorts.
    #[test]
    fn kmerge_properties(kexp in 1u32..=4, bexp in 1u32..=5, seed in any::<u64>()) {
        use rand::prelude::*;
        let k = 1usize << kexp;
        let block = 1usize << bexp;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Vec::with_capacity(k * block);
        for _ in 0..k {
            let ones = rng.gen_range(0..=block);
            s.extend(std::iter::repeat_n(false, block - ones));
            s.extend(std::iter::repeat_n(true, ones));
        }
        let (clean, rest) = kmerge::k_swap(&s, k);
        prop_assert!(lang::is_clean_k_sorted(&clean, k));
        prop_assert!(lang::is_k_sorted(&rest, k));
        prop_assert_eq!(kmerge::kmerge(&s, k), lang::sorted_oracle(&s));
    }

    /// Payload permutation property: sorting tagged packets never loses,
    /// duplicates, or mislabels cargo.
    #[test]
    fn payload_conservation(a in 1u32..=10, seed in any::<u64>()) {
        use rand::prelude::*;
        use absort::core::packet::tag_indices;
        let n = 1usize << a;
        let mut rng = StdRng::seed_from_u64(seed);
        let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        for out in [
            prefix::sort(&tag_indices(&bits)),
            muxmerge::sort(&tag_indices(&bits)),
        ] {
            let mut ids: Vec<usize> = out.iter().map(|p| p.1).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..n).collect::<Vec<_>>());
            for (key, id) in out {
                prop_assert_eq!(key, bits[id]);
            }
        }
    }

    /// A_n is closed under the balanced stage in the Theorem 2 sense for
    /// *sorted* inputs: sorted stays sorted.
    #[test]
    fn balanced_stage_preserves_sortedness(v in (1usize..=128).prop_flat_map(sorted_bits)) {
        if v.len() % 2 == 0 {
            let y = lang::balanced_stage(&v);
            prop_assert!(lang::is_sorted(&y));
        }
    }
}
