//! End-to-end interconnection-network scenarios spanning the whole
//! workspace: concentrators, radix permuters, and Beneš agree with each
//! other and survive adversarial traffic.

use absort::core::sorter::{SorterKind, ALL_KINDS};
use absort::networks::{benes, concentrator::Concentrator, permuter::RadixPermuter};
use rand::prelude::*;

#[test]
fn radix_permuter_agrees_with_benes_on_random_permutations() {
    let mut rng = StdRng::seed_from_u64(99);
    for n in [16usize, 64, 256] {
        for _ in 0..10 {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let payloads: Vec<u32> = (0..n as u32).collect();
            let via_benes = benes::permute(&perm, &payloads).unwrap();
            for kind in ALL_KINDS {
                let rp = RadixPermuter::new(kind, n);
                let packets: Vec<(usize, u32)> =
                    perm.iter().zip(&payloads).map(|(&d, &p)| (d, p)).collect();
                let via_rp = rp.route(&packets).unwrap();
                assert_eq!(via_rp, via_benes, "{} n={n}", kind.name());
            }
        }
    }
}

#[test]
fn permuter_handles_fixed_points_and_involutions() {
    let n = 128usize;
    let rp = RadixPermuter::new(SorterKind::MuxMerger, n);
    // involution: swap adjacent pairs
    let perm: Vec<usize> = (0..n).map(|i| i ^ 1).collect();
    let packets: Vec<(usize, usize)> = perm.iter().enumerate().map(|(i, &d)| (d, i)).collect();
    let out = rp.route(&packets).unwrap();
    for (pos, &src) in out.iter().enumerate() {
        assert_eq!(src ^ 1, pos);
    }
}

#[test]
fn concentrator_then_permuter_pipeline() {
    // A realistic two-stage fabric: concentrate sparse requests, then
    // permute the compacted packets to their final destinations.
    let n = 64usize;
    let mut rng = StdRng::seed_from_u64(7);
    let conc = Concentrator::new(SorterKind::Fish { k: None }, n, n);
    let perm_net = RadixPermuter::new(SorterKind::Fish { k: None }, n);

    for _ in 0..20 {
        let active = rng.gen_range(1..=n);
        let mut slots: Vec<usize> = (0..n).collect();
        slots.shuffle(&mut rng);
        let mut requests: Vec<Option<(usize, u64)>> = vec![None; n];
        // each active packet gets a distinct final destination
        let mut dests: Vec<usize> = (0..n).collect();
        dests.shuffle(&mut rng);
        for (i, &slot) in slots[..active].iter().enumerate() {
            requests[slot] = Some((dests[i], rng.gen::<u64>()));
        }
        let concentrated = conc.concentrate(&requests).unwrap();

        // pad the idle tail with the unused destinations to form a full
        // permutation for the second stage
        let used: Vec<usize> = concentrated.iter().flatten().map(|&(d, _)| d).collect();
        let mut unused: Vec<usize> = (0..n).filter(|d| !used.contains(d)).collect();
        let packets: Vec<(usize, Option<u64>)> = concentrated
            .iter()
            .map(|c| match c {
                Some((d, v)) => (*d, Some(*v)),
                None => (unused.pop().unwrap(), None),
            })
            .collect();
        let routed = perm_net.route(&packets).unwrap();

        // every real packet must sit at its destination
        for (slot, &dst) in slots[..active].iter().zip(dests.iter()) {
            let expected = requests[*slot].unwrap().1;
            assert_eq!(routed[dst], Some(expected));
        }
    }
}

#[test]
fn concentrator_is_stable_under_full_and_empty_load() {
    for kind in ALL_KINDS {
        let n = 32;
        let c = Concentrator::new(kind, n, n);
        let empty: Vec<Option<u8>> = vec![None; n];
        let out = c.concentrate(&empty).unwrap();
        assert!(out.iter().all(Option::is_none));
        let full: Vec<Option<u8>> = (0..n).map(|i| Some(i as u8)).collect();
        let out = c.concentrate(&full).unwrap();
        let mut got: Vec<u8> = out.into_iter().flatten().collect();
        got.sort_unstable();
        assert_eq!(got, (0..n as u8).collect::<Vec<_>>());
    }
}

#[test]
fn benes_and_permuter_cost_ordering_matches_table2() {
    // fish permuter grows as n lg n; Beneš (with routing hardware) and
    // the mux-merger permuter as n lg² n; Batcher as n lg³ n.
    use absort::baselines::batcher_bits;
    let n = 1usize << 14;
    let fish = RadixPermuter::new(SorterKind::Fish { k: None }, n).cost();
    let mux = RadixPermuter::new(SorterKind::MuxMerger, n).cost();
    let benes_cost = benes::table2_cost(n);
    let batcher = batcher_bits::permutation_cost(n);
    assert!(fish < mux);
    assert!(fish < benes_cost);
    assert!(mux < batcher);
}
