//! Every worked example and concrete number stated in the paper's text,
//! as executable assertions.

use absort::analysis::{table2, traces};
use absort::cmpnet::{catalog, verify};
use absort::core::{lang, table1};

/// Fig. 1: "The cost and depth of the network in Fig. 1 are 5 and 3."
#[test]
fn fig1_cost_5_depth_3_and_sorts() {
    let net = catalog::fig1();
    assert_eq!(net.cost(), 5);
    assert_eq!(net.depth(), 3);
    assert!(verify::is_sorting_network(&net));
}

/// Definition 1's examples: "0000/1010, 00/1010/11, 101010/11,
/// 00/0101/11, 11111111 are all elements of A_8."
#[test]
fn definition1_examples() {
    for ex in [
        "0000/1010",
        "00/1010/11",
        "101010/11",
        "00/0101/11",
        "11111111",
    ] {
        assert!(lang::in_a_n(&lang::bits(ex)), "{ex}");
    }
}

/// Example 1: "let X_U = 1111 and X_L = 0001. Then shuffling the
/// concatenation of X_U and X_L gives 10101011, which belongs to A_8."
#[test]
fn example1() {
    let mut cat = lang::bits("1111");
    cat.extend(lang::bits("0001"));
    let shuffled = lang::shuffle(&cat);
    assert_eq!(lang::show(&shuffled, 0), "10101011");
    assert!(lang::in_a_n(&shuffled));
}

/// Example 2: "consider the sequence obtained in Example 1, i.e.
/// 101010/11 … we obtain Y_U = 1000 and Y_L = 1111."
#[test]
fn example2() {
    let z = lang::bits("10101011");
    let y = lang::balanced_stage(&z);
    assert_eq!(lang::show(&y[..4], 0), "1000");
    assert_eq!(lang::show(&y[4..], 0), "1111");
    // "one of Y_U and Y_L is clean-sorted, and the other belongs to A_4"
    assert!(lang::is_clean(&y[4..]));
    assert!(lang::in_a_n(&y[..4]));
}

/// Example 3: "consider the bisorted sequence 0001/0001. Cutting it into
/// four equal-size subsequences 00, 01, 00, 01 reveals that two … are
/// clean-sorted, and the other two, when concatenated, give 0101, which
/// is a bisorted sequence."
#[test]
fn example3() {
    let x = lang::bits("00010001");
    assert!(lang::is_bisorted(&x));
    let quarters: Vec<&[bool]> = x.chunks(2).collect();
    assert!(lang::is_clean(quarters[0]));
    assert!(lang::is_clean(quarters[2]));
    let cat = [quarters[1], quarters[3]].concat();
    assert_eq!(lang::show(&cat, 0), "0101");
    assert!(lang::is_bisorted(&cat));
    assert!(lang::theorem3_holds(&x));
}

/// Definition 4's example: "for k = 4, 1111/0001/0011/0111 is a 4-sorted
/// sequence", and Definition 5's: "1111/0000/0000/1111 is a clean
/// 4-sorted sequence."
#[test]
fn definitions_4_5_examples() {
    assert!(lang::is_k_sorted(&lang::bits("1111000100110111"), 4));
    assert!(lang::is_clean_k_sorted(&lang::bits("1111000000001111"), 4));
}

/// Example 4: "consider the 4-sorted sequence 1111/0001/0011/0111.
/// Cutting each subsequence in half gives 11,11,00,01,00,11,01,11. Of the
/// eight subsequences, six (more than half) are clean-sorted. Putting
/// 11, 00, 11, 11 together, we get a clean 4-sorted sequence, and the
/// other four form a sequence 11/01/00/01 that is 4-sorted."
#[test]
fn example4() {
    use absort::core::fish::kmerge::k_swap;
    let s = lang::bits("1111000100110111");
    let halves: Vec<&[bool]> = s.chunks(2).collect();
    let clean_count = halves.iter().filter(|h| lang::is_clean(h)).count();
    assert_eq!(clean_count, 6, "six of eight halves are clean");
    let (clean, rest) = k_swap(&s, 4);
    assert_eq!(lang::show(&clean, 2), "11/00/11/11");
    assert_eq!(lang::show(&rest, 2), "11/01/00/01");
    assert!(lang::is_clean_k_sorted(&clean, 4));
    assert!(lang::is_k_sorted(&rest, 4));
}

/// Table I verified exhaustively at the figure's size (n = 16).
#[test]
fn table1_at_figure_size() {
    assert!(table1::verify(16).is_empty());
    let rendered = table1::render();
    assert!(rendered.contains("bisorted"));
}

/// Figs. 8 and 9: the traces regenerate and are internally consistent.
#[test]
fn figs_8_and_9_traces() {
    let f8 = traces::fig8_trace();
    assert!(f8.contains("level m = 16"));
    assert!(f8.contains("level m = 8"));
    let f9 = traces::fig9_trace();
    assert!(f9.contains("step 0"));
    assert!(f9.contains("step 3"));
}

/// Table II regenerates with the paper's dominance claims intact.
#[test]
fn table2_claims() {
    table2::verify_claims(1 << 16).unwrap();
    let s = table2::render(1 << 12);
    assert!(s.contains("Benes"));
    assert!(s.contains("This paper (fish sorters)"));
}

/// Section II cost/depth statements for the building blocks, as built.
#[test]
fn section2_block_costs() {
    use absort::blocks::{demux::group_demultiplexer, mux::group_multiplexer, swap};
    use absort::circuit::Builder;

    // two-way swapper: cost n/2, depth 1
    let mut b = Builder::new();
    let ctrl = b.input();
    let ins = b.input_bus(64);
    let outs = swap::two_way_swapper(&mut b, ctrl, &ins);
    b.outputs(&outs);
    let c = b.finish();
    assert_eq!(c.cost().total, 32);
    assert_eq!(c.depth(), 1);

    // four-way swapper: cost n (in 2×2-switch units), depth 1
    let mut b = Builder::new();
    let s1 = b.input();
    let s0 = b.input();
    let ins = b.input_bus(64);
    let outs = swap::four_way_swapper(&mut b, s1, s0, &ins, [[0, 1, 2, 3]; 4]);
    b.outputs(&outs);
    let c = b.finish();
    assert_eq!(c.cost().total, 64);
    assert_eq!(c.depth(), 1);

    // (16,4)-multiplexer / (4,16)-demultiplexer: ~n cost, lg(n/k) depth
    let mut b = Builder::new();
    let sel = b.input_bus(2);
    let ins = b.input_bus(16);
    let outs = group_multiplexer(&mut b, &sel, &ins, 4);
    b.outputs(&outs);
    let c = b.finish();
    assert_eq!(c.cost().total, 12); // n − k (paper rounds to n)
    assert_eq!(c.depth(), 2);

    let mut b = Builder::new();
    let sel = b.input_bus(2);
    let ins = b.input_bus(4);
    let outs = group_demultiplexer(&mut b, &sel, &ins, 16);
    b.outputs(&outs);
    let c = b.finish();
    assert_eq!(c.cost().total, 12);
    assert_eq!(c.depth(), 2);
}
