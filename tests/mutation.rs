//! Failure injection: every verifier in the workspace must catch
//! deliberately broken constructions. A test suite that only ever sees
//! correct networks proves little about its own sensitivity; these
//! mutations prove the exhaustive checks, theorem oracles, and routing
//! validators actually discriminate.

use absort::cmpnet::{batcher, catalog, Network, Stage};
use absort::core::muxmerge::{apply_quarters, IN_SWAP};
use absort::core::{lang, muxmerge};
use absort::networks::benes;

/// Rebuilds a network with comparator `idx` dropped.
fn drop_comparator(net: &Network, idx: usize) -> Network {
    let mut out = Network::new(net.n());
    let mut seen = 0usize;
    for stage in net.stages() {
        match stage {
            Stage::Compare(pairs) => {
                let mut kept = Vec::new();
                for &p in pairs {
                    if seen != idx {
                        kept.push(p);
                    }
                    seen += 1;
                }
                if !kept.is_empty() {
                    out.push_compare(kept);
                }
            }
            Stage::Permute(perm) => out.push_permute(perm.clone()),
        }
    }
    out
}

/// Rebuilds a network with comparator `idx` reversed (max to the top).
fn flip_comparator(net: &Network, idx: usize) -> Network {
    let mut out = Network::new(net.n());
    let mut seen = 0usize;
    for stage in net.stages() {
        match stage {
            Stage::Compare(pairs) => {
                let mutated: Vec<(u32, u32)> = pairs
                    .iter()
                    .map(|&(i, j)| {
                        let p = if seen == idx { (j, i) } else { (i, j) };
                        seen += 1;
                        p
                    })
                    .collect();
                out.push_compare(mutated);
            }
            Stage::Permute(perm) => out.push_permute(perm.clone()),
        }
    }
    out
}

#[test]
fn fig1_has_no_redundant_comparator() {
    let net = catalog::fig1();
    let total = net.cost() as usize;
    for idx in 0..total {
        let mutant = drop_comparator(&net, idx);
        assert!(
            absort::cmpnet::verify::first_unsorted_input(&mutant).is_some(),
            "dropping comparator {idx} must break Fig. 1"
        );
    }
}

#[test]
fn batcher_oem8_every_dropped_comparator_is_caught() {
    let net = batcher::odd_even_merge_sort(8);
    let total = net.cost() as usize;
    for idx in 0..total {
        let mutant = drop_comparator(&net, idx);
        assert!(
            !absort::cmpnet::verify::is_sorting_network(&mutant),
            "Batcher OEM-8 comparator {idx} must be essential"
        );
    }
}

#[test]
fn flipped_comparators_are_caught() {
    let net = batcher::odd_even_merge_sort(8);
    let total = net.cost() as usize;
    let mut caught = 0;
    for idx in 0..total {
        let mutant = flip_comparator(&net, idx);
        if !absort::cmpnet::verify::is_sorting_network(&mutant) {
            caught += 1;
        }
    }
    // every flipped comparator must be detected (a reversed min/max can
    // never be harmless in a non-redundant network)
    assert_eq!(caught, total, "all {total} flips must be caught");
}

#[test]
fn wrong_in_swap_select_violates_theorem3_typing() {
    // Steering the IN-SWAP by the wrong select (sel XOR 3) must, for some
    // bisorted input, put a non-clean quarter on the outside.
    let mut violated = false;
    for x in lang::all_bisorted(16) {
        let sel = (usize::from(x[4]) << 1) | usize::from(x[12]);
        let wrong = sel ^ 0b11;
        let inw = apply_quarters(&x, IN_SWAP[wrong]);
        if !(lang::is_clean(&inw[..4])
            && lang::is_clean(&inw[12..])
            && lang::is_bisorted(&inw[4..12]))
        {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "the wrong select must break the invariant somewhere"
    );
}

#[test]
fn inverted_patchup_select_fails_to_sort() {
    // The prefix sorter's patch-up keys on ones >= m/2; inverting the
    // comparison must mis-sort some A_m sequence.
    fn bad_patchup(z: &[bool], ones: usize) -> Vec<bool> {
        let m = z.len();
        if m == 1 {
            return z.to_vec();
        }
        if m == 2 {
            return vec![z[0] & z[1], z[0] | z[1]];
        }
        let mut y = lang::balanced_stage(z);
        let sel = ones < m / 2; // WRONG: inverted
        if sel {
            y.rotate_left(m / 2);
        }
        let sub_ones = if sel {
            ones.saturating_sub(m / 2)
        } else {
            ones
        };
        let lower = bad_patchup(
            &y[m / 2..],
            sub_ones.min(y[m / 2..].iter().filter(|&&b| b).count()),
        );
        let mut out = y[..m / 2].to_vec();
        out.extend_from_slice(&lower);
        if sel {
            out.rotate_left(m / 2);
        }
        out
    }
    let mut failed = false;
    for z in lang::all_a_n(8) {
        let ones = z.iter().filter(|&&b| b).count();
        if bad_patchup(&z, ones) != lang::sorted_oracle(&z) {
            failed = true;
            break;
        }
    }
    assert!(failed, "inverted select must fail on some A_8 input");
}

#[test]
fn corrupted_benes_routing_is_detectable() {
    // Flip one entry switch in a valid routing: the realized mapping must
    // differ from the requested permutation.
    let perm: Vec<usize> = vec![3, 1, 0, 2, 7, 5, 6, 4];
    let routing = benes::route(&perm).unwrap();
    let corrupted = match routing {
        benes::Routing::Node {
            mut in_cross,
            out_cross,
            upper,
            lower,
        } => {
            in_cross[0] = !in_cross[0];
            benes::Routing::Node {
                in_cross,
                out_cross,
                upper,
                lower,
            }
        }
        leaf => leaf,
    };
    let items: Vec<usize> = (0..8).collect();
    let out = benes::apply(&corrupted, &items);
    let realized_ok = perm.iter().enumerate().all(|(i, &d)| out[d] == items[i]);
    assert!(!realized_ok, "a flipped switch must change the permutation");
}

#[test]
fn merger_rejects_non_bisorted_input() {
    // The functional merger asserts its precondition; feeding a
    // non-bisorted sequence must panic (contract enforcement, not UB).
    let bad = lang::bits("10010110");
    assert!(!lang::is_bisorted(&bad));
    let r = std::panic::catch_unwind(|| muxmerge::merge(&bad));
    assert!(r.is_err(), "non-bisorted input must be rejected loudly");
}

#[test]
fn gate_level_mutation_score_of_the_exhaustive_checker() {
    // Inject single faults into the built 16-input mux-merger sorter and
    // score the exhaustive 0-1 checker (64-lane sweep over all 2^16
    // inputs). Inverted-behaviour faults must *all* be caught: every
    // comparator, switch polarity, and mux arm in this construction is
    // load-bearing for some input.
    use absort::circuit::equiv::{check_exhaustive, Equivalence};
    use absort::circuit::mutate::{mutation_score, Fault};
    let sorter = muxmerge::build(16);
    let reference = sorter.clone();
    let (killed, total) = mutation_score(&sorter, Fault::InvertBehaviour, |mutant| {
        !matches!(
            check_exhaustive(mutant, &reference),
            Equivalence::EqualExhaustive
        )
    });
    assert!(total >= 45, "expected many mutants, got {total}");
    assert_eq!(
        killed, total,
        "all inverted-behaviour mutants must be caught"
    );
}

#[test]
fn stuck_select_faults_in_the_prefix_sorter_are_caught() {
    use absort::circuit::equiv::{check_exhaustive, Equivalence};
    use absort::circuit::mutate::{mutation_score, Fault};
    use absort::core::prefix;
    let sorter = prefix::build(8);
    let reference = sorter.clone();
    let (killed, total) = mutation_score(&sorter, Fault::StuckSelectLow, |mutant| {
        !matches!(
            check_exhaustive(mutant, &reference),
            Equivalence::EqualExhaustive
        )
    });
    assert!(total > 0, "the prefix sorter has steerable components");
    // Not every stuck select is observable (a swapper whose control is 0
    // on every reachable input survives), but most must die.
    assert!(
        killed * 10 >= total * 5,
        "mutation score too low: {killed}/{total}"
    );
}

#[test]
fn zero_one_verifier_finds_minimal_witness() {
    // The witness returned is the *first* failing input, so it must fail
    // and every smaller input must sort.
    let mut net = Network::new(4);
    net.push_compare(vec![(0, 1), (2, 3)]);
    net.push_compare(vec![(0, 2)]); // (1,3) missing
    let w = absort::cmpnet::verify::first_unsorted_input(&net).expect("broken net");
    let (sorted, _) = absort::cmpnet::verify::sorts_binary_input(&net, w);
    assert!(!sorted);
    for v in 0..w {
        let (ok, _) = absort::cmpnet::verify::sorts_binary_input(&net, v);
        assert!(ok, "witness must be minimal; {v} already fails");
    }
}
