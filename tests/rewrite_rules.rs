//! Integration pins for the declarative rewrite pass and its ruleset.
//!
//! * **semantic preservation** — interpreter vs compiled tape across the
//!   network catalog × every opt level × ruleset on/off: exhaustively at
//!   n ≤ 8, and on proptest-generated lane batches;
//! * **tape reduction** — the committed ruleset must keep buying ≥ 5%
//!   of the post-pipeline tape on at least two catalog networks at
//!   n = 64, and must never grow any network at any size;
//! * **fault-campaign byte-identity** — the `--network all` campaign
//!   report is bit-for-bit identical between O0 and O2-with-rules (the
//!   provenance contract: rewrites change the tape, never the report);
//! * **golden ruleset** — `crates/circuit/rules/absort.rules` is exactly
//!   what `absort::rules::synthesize()` prints and passes the exhaustive
//!   checker. Regenerate with `BLESS=1 cargo test --test rewrite_rules`
//!   after an intentional synthesis change.

use absort::analysis::faults::{fish_k, run_campaign, CampaignConfig, NetworkSel};
use absort::circuit::{
    Circuit, CompileOptions, CompiledEvaluator, Engine, Evaluator, OptLevel, PassName,
};
use absort::core::{fish, muxmerge, nonadaptive, prefix};
use proptest::prelude::*;

/// The network catalog at width `n` (fish needs `k ≤ n/k`, so it joins
/// from `n = 4` up).
fn catalog(n: usize) -> Vec<(&'static str, Circuit)> {
    let mut v = vec![
        ("prefix", prefix::build(n)),
        ("mux-merger", muxmerge::build(n)),
        ("batcher", nonadaptive::build(n)),
    ];
    if n >= 4 {
        v.push((
            "fish",
            fish::circuits::build_combinational_kmerger(n, fish_k(n)),
        ));
    }
    v
}

/// Every opt level, each with the ruleset both on (as the level ships
/// it) and explicitly off.
fn variants() -> Vec<(String, CompileOptions)> {
    let mut v = Vec::new();
    for level in OptLevel::ALL {
        let opts = CompileOptions::for_level(level);
        v.push((format!("O{level}"), opts));
        let mut off = opts;
        off.passes = off.passes.without(PassName::Rewrite);
        v.push((format!("O{level}-no-rewrite"), off));
    }
    v
}

/// Packs the 64 consecutive integers starting at `base` (little-endian
/// bit `i` = input `i`) into lane words; lanes past `count` stay zero.
fn pack_range(n: usize, base: u64, count: usize) -> Vec<u64> {
    let mut packed = vec![0u64; n];
    for lane in 0..count {
        let x = base + lane as u64;
        for (i, p) in packed.iter_mut().enumerate() {
            *p |= (x >> i & 1) << lane;
        }
    }
    packed
}

#[test]
fn rewrite_preserves_semantics_exhaustively_at_small_n() {
    for n in [4usize, 8] {
        for (name, circuit) in catalog(n) {
            let mut interp: Evaluator<'_, u64> = Evaluator::new(&circuit);
            let mut expect = vec![0u64; n];
            for (vname, opts) in variants() {
                let cc = circuit.compile_with(&opts);
                let mut comp: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&cc);
                let mut got = vec![0u64; n];
                let total = 1u64 << n;
                let mut base = 0u64;
                while base < total {
                    let count = ((total - base) as usize).min(64);
                    let packed = pack_range(n, base, count);
                    interp.run_into(&packed, &mut expect);
                    comp.run_into(&packed, &mut got);
                    assert_eq!(
                        expect, got,
                        "{name} n={n} {vname}: diverged from interpreter at base {base}"
                    );
                    base += count as u64;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rewrite_preserves_semantics_on_random_lane_batches(
        packed in proptest::collection::vec(any::<u64>(), 8)
    ) {
        let n = 8usize;
        for (name, circuit) in catalog(n) {
            let mut interp: Evaluator<'_, u64> = Evaluator::new(&circuit);
            let mut expect = vec![0u64; n];
            interp.run_into(&packed, &mut expect);
            for (vname, opts) in variants() {
                let cc = circuit.compile_with(&opts);
                let mut comp: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&cc);
                let mut got = vec![0u64; n];
                comp.run_into(&packed, &mut got);
                prop_assert_eq!(
                    &expect, &got,
                    "{} n={} {}: diverged from interpreter", name, n, vname
                );
            }
        }
    }
}

/// The PR's acceptance bar, pinned: the ruleset buys at least 5% of
/// the post-pipeline tape on ≥ 2 catalog networks at n = 64, and never
/// grows any network at any tested size.
#[test]
fn ruleset_reduces_tape_and_never_grows_it() {
    let mut wins = Vec::new();
    for n in [8usize, 64] {
        for (name, circuit) in catalog(n) {
            let on = circuit.compile().tape_len();
            let mut off_opts = CompileOptions::default();
            off_opts.passes = off_opts.passes.without(PassName::Rewrite);
            let off = circuit.compile_with(&off_opts).tape_len();
            assert!(
                on <= off,
                "{name} n={n}: rewrite grew the tape ({off} -> {on} ops)"
            );
            if n == 64 && (off - on) as f64 / off as f64 >= 0.05 {
                wins.push(name);
            }
        }
    }
    assert!(
        wins.len() >= 2,
        "ruleset must buy >=5% on at least two catalog networks at n=64, got {wins:?}"
    );
}

/// Rewrites change the tape, never the fault report: byte-identical
/// campaign JSON between the unoptimized tape and the full O2 pipeline
/// with the ruleset enabled.
#[test]
fn fault_campaign_report_is_byte_identical_across_opt_levels() {
    let cfg = |level: OptLevel| CampaignConfig {
        n: 8,
        engine: Engine::Compiled,
        opt: CompileOptions::for_level(level),
        ..CampaignConfig::default()
    };
    let o0 = run_campaign(&NetworkSel::ALL, &cfg(OptLevel::O0));
    let o2 = run_campaign(&NetworkSel::ALL, &cfg(OptLevel::O2));
    assert_eq!(
        o0.to_json().to_pretty(),
        o2.to_json().to_pretty(),
        "campaign report must be bit-identical between O0 and O2-with-rules"
    );
}

/// The rewrite pass must actually report through telemetry-visible
/// surfaces: pass stats on the tape it shrank, and per-rule hit
/// counters for `absort inspect`.
#[test]
fn rewrite_reports_pass_stats_and_rule_hits() {
    let cc = prefix::build(64).compile();
    let stats = cc
        .pass_stats()
        .iter()
        .find(|s| s.name == "rewrite")
        .expect("rewrite pass runs at the default O2");
    assert!(
        stats.ops_after < stats.ops_before,
        "rewrite must shrink prefix n=64 ({} -> {})",
        stats.ops_before,
        stats.ops_after
    );
    assert!(
        !cc.rewrite_hits().is_empty(),
        "per-rule hit counters must be recorded"
    );
    assert!(cc.rewrite_hits().iter().all(|(_, hits)| *hits > 0));
}

fn ruleset_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../circuit/rules/absort.rules")
}

#[test]
fn committed_ruleset_is_blessed_synthesis_output() {
    let synth = absort::rules::synthesize();
    absort::rules::check(&synth).expect("synthesized ruleset verifies");
    let text = synth.print();
    let path = ruleset_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &text).expect("write blessed ruleset");
        return;
    }
    let committed = std::fs::read_to_string(&path).expect("committed ruleset readable");
    assert_eq!(
        committed, text,
        "crates/circuit/rules/absort.rules is stale — rerun with \
         BLESS=1 cargo test --test rewrite_rules"
    );
}
