//! Fault-injection campaign guarantees, end to end.
//!
//! The load-bearing assertion here is the mutation-score property at
//! wire granularity: every single permanent fault injected into the
//! n = 8 prefix sorter that changes behaviour on *any* input is caught
//! by the deployable zero-one checker, verified exhaustively over all
//! 2^n valid inputs. Sites whose injection never changes an output
//! (masked / tolerated faults) are reported but excluded from the
//! detection denominator — an undetected behavioural change would
//! drive the rate below 1.0.

use absort::analysis::faults::{
    build_network, fish_k, run_campaign, run_network, CampaignConfig, NetworkSel,
};
use absort::circuit::faulty::{observable_wires, permanent_fault_sites};
use absort::faults::FaultKind;
use absort_telemetry::json;

use proptest::prelude::*;

fn small_cfg(n: usize) -> CampaignConfig {
    CampaignConfig {
        n,
        ..CampaignConfig::default()
    }
}

#[test]
fn all_single_permanent_faults_detected_on_prefix_n8() {
    let report = run_network(NetworkSel::Prefix, &small_cfg(8));
    assert_eq!(report.tier, "exhaustive", "2^8 inputs must be enumerated");
    assert_eq!(report.vectors, 256);
    for kind in &report.kinds {
        let k = kind.kind.expect("campaign rows are kind-tagged");
        assert!(kind.injected > 0, "{}: no sites injected", k.name());
        if k.is_permanent() {
            assert_eq!(
                kind.detection_rate(),
                1.0,
                "{}: {} detected of {} injected ({} masked) — an escape",
                k.name(),
                kind.detected,
                kind.injected,
                kind.masked,
            );
        }
    }
    assert_eq!(report.permanent_detection_rate(), 1.0);
}

#[test]
fn all_four_networks_reach_full_permanent_detection_at_n8() {
    for sel in NetworkSel::ALL {
        let report = run_network(sel, &small_cfg(8));
        assert_eq!(report.tier, "exhaustive", "{}", sel.name());
        assert_eq!(
            report.permanent_detection_rate(),
            1.0,
            "{}: permanent-fault escape",
            sel.name()
        );
    }
}

#[test]
fn campaign_report_json_carries_rates_and_degradation() {
    let report = run_campaign(&NetworkSel::ALL, &small_cfg(4));
    let doc = json::parse(&report.to_json().to_pretty()).expect("report serializes to valid JSON");
    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some("absort-faults/v1")
    );
    let networks = doc
        .get("networks")
        .and_then(json::Value::as_arr)
        .expect("networks array");
    assert_eq!(networks.len(), NetworkSel::ALL.len());
    for net in networks {
        assert_eq!(
            net.get("permanent_detection_rate")
                .and_then(json::Value::as_f64),
            Some(1.0)
        );
        let kinds = net
            .get("kinds")
            .and_then(json::Value::as_arr)
            .expect("kinds array");
        assert_eq!(kinds.len(), FaultKind::ALL.len());
        for row in kinds {
            for field in ["injected", "detected", "masked"] {
                assert!(
                    row.get(field).and_then(json::Value::as_i64).is_some(),
                    "kind row missing {field}"
                );
            }
            let deg = row.get("degradation").expect("degradation per kind");
            assert!(deg
                .get("max_displacement")
                .and_then(json::Value::as_i64)
                .is_some());
        }
    }
}

#[test]
fn fault_sites_cover_every_observable_wire_polarity() {
    // Wire granularity: at n = 8 every cone wire that takes both values
    // across the workload must show up as both a stuck-at-0 and a
    // stuck-at-1 site, so the campaign's denominator really is the full
    // single-fault space (minus provably vacuous sites).
    let circuit = build_network(NetworkSel::Prefix, 8);
    let vectors: Vec<Vec<bool>> = (0u32..256)
        .map(|v| (0..8).map(|b| v >> b & 1 == 1).collect())
        .collect();
    let sites = permanent_fault_sites(&circuit, &vectors);
    let cone = observable_wires(&circuit);
    let mut stuck_wires = std::collections::HashSet::new();
    let mut stuck = 0usize;
    for s in &sites {
        if let absort::circuit::WireFault::StuckAt { wire, .. } = s {
            stuck_wires.insert(*wire);
            stuck += 1;
        }
    }
    // A wire that toggles across the workload yields two stuck-at sites;
    // a wire constant across *all* inputs (a const tie) yields exactly
    // one — pinning it to the value it already holds is vacuous. Either
    // way every observable wire must be represented.
    for w in &cone {
        assert!(
            stuck_wires.contains(w),
            "cone wire {w:?} has no stuck-at site"
        );
    }
    assert!(stuck >= cone.len() && stuck <= 2 * cone.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every network the builders can produce is structurally sound:
    /// `Circuit::validate()` accepts the whole catalog at any
    /// power-of-two width.
    #[test]
    fn catalog_networks_validate(exp in 1usize..=5) {
        let n = 1usize << exp;
        prop_assert!(absort::core::prefix::build(n).validate().is_ok());
        prop_assert!(absort::core::muxmerge::build(n).validate().is_ok());
        prop_assert!(absort::core::nonadaptive::build(n).validate().is_ok());
        prop_assert!(absort::core::muxmerge::build_merger(n).validate().is_ok());
        prop_assert!(absort::core::prefix::build_with_adder(
            n,
            absort::blocks::adder::AdderKind::Ripple
        )
        .validate()
        .is_ok());
        if n >= 4 {
            let k = fish_k(n);
            prop_assert!(absort::core::fish::circuits::build_combinational_kmerger(n, k)
                .validate()
                .is_ok());
            prop_assert!(absort::core::fish::circuits::build_kswap(n, k)
                .validate()
                .is_ok());
        }
    }

    /// Campaign sampling is deterministic in the seed: the same config
    /// yields the same report, different seeds may not (sampled tier).
    #[test]
    fn sampled_tier_is_seed_deterministic(seed in any::<u64>()) {
        let cfg = CampaignConfig {
            n: 8,
            seed,
            max_exhaustive: 8, // force the sampled tier at n = 8
            transient_samples: 8,
            ..CampaignConfig::default()
        };
        let a = run_network(NetworkSel::MuxMerger, &cfg);
        let b = run_network(NetworkSel::MuxMerger, &cfg);
        prop_assert_eq!(a.tier.as_str(), "sampled");
        prop_assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }
}
