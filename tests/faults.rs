//! Fault-injection campaign guarantees, end to end.
//!
//! The load-bearing assertion here is the mutation-score property at
//! wire granularity: every single permanent fault injected into the
//! n = 8 prefix sorter that changes behaviour on *any* input is caught
//! by the deployable zero-one checker, verified exhaustively over all
//! 2^n valid inputs. Sites whose injection never changes an output
//! (masked / tolerated faults) are reported but excluded from the
//! detection denominator — an undetected behavioural change would
//! drive the rate below 1.0.

use absort::analysis::faults::{
    build_network, fish_k, run_campaign, run_campaign_with, run_network, run_network_sets,
    CampaignConfig, CampaignOptions, NetworkSel,
};
use absort::circuit::eval::pack_lanes;
use absort::circuit::faulty::{observable_wires, permanent_fault_sites, FaultyEvaluator};
use absort::circuit::mutate::{self, Fault};
use absort::circuit::{Circuit, Wire, WireFault};
use absort::faults::FaultKind;
use absort::networks::hardened::{harden, streaming_sorter, HardenOptions};
use absort_telemetry::json;

use proptest::prelude::*;

fn small_cfg(n: usize) -> CampaignConfig {
    CampaignConfig {
        n,
        ..CampaignConfig::default()
    }
}

#[test]
fn all_single_permanent_faults_detected_on_prefix_n8() {
    let report = run_network(NetworkSel::Prefix, &small_cfg(8));
    assert_eq!(report.tier, "exhaustive", "2^8 inputs must be enumerated");
    assert_eq!(report.vectors, 256);
    for kind in &report.kinds {
        let k = kind.kind.expect("campaign rows are kind-tagged");
        assert!(kind.injected > 0, "{}: no sites injected", k.name());
        if k.is_permanent() {
            assert_eq!(
                kind.detection_rate(),
                1.0,
                "{}: {} detected of {} injected ({} masked) — an escape",
                k.name(),
                kind.detected,
                kind.injected,
                kind.masked,
            );
        }
    }
    assert_eq!(report.permanent_detection_rate(), 1.0);
}

#[test]
fn all_four_networks_reach_full_permanent_detection_at_n8() {
    for sel in NetworkSel::ALL {
        let report = run_network(sel, &small_cfg(8));
        assert_eq!(report.tier, "exhaustive", "{}", sel.name());
        assert_eq!(
            report.permanent_detection_rate(),
            1.0,
            "{}: permanent-fault escape",
            sel.name()
        );
    }
}

#[test]
fn campaign_report_json_carries_rates_and_degradation() {
    let report = run_campaign(&NetworkSel::ALL, &small_cfg(4));
    let doc = json::parse(&report.to_json().to_pretty()).expect("report serializes to valid JSON");
    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some("absort-faults/v3")
    );
    // Each schema rev is a strict superset of the last: the v3 recovery
    // columns and the v2 multi-fault/concurrent fields ride alongside
    // every v1 field, so old consumers keep working.
    assert_eq!(
        doc.get("truncated").and_then(json::Value::as_bool),
        Some(false)
    );
    let networks = doc
        .get("networks")
        .and_then(json::Value::as_arr)
        .expect("networks array");
    assert_eq!(networks.len(), NetworkSel::ALL.len());
    for net in networks {
        assert_eq!(
            net.get("permanent_detection_rate")
                .and_then(json::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            net.get("fault_set_size").and_then(json::Value::as_i64),
            Some(1)
        );
        assert!(net
            .get("concurrent_detection_rate")
            .and_then(json::Value::as_f64)
            .is_some());
        let kinds = net
            .get("kinds")
            .and_then(json::Value::as_arr)
            .expect("kinds array");
        assert_eq!(kinds.len(), FaultKind::ALL.len());
        for row in kinds {
            for field in [
                "injected",
                "detected",
                "masked",
                "flagged",
                "recovered",
                "fail_stop",
            ] {
                assert!(
                    row.get(field).and_then(json::Value::as_i64).is_some(),
                    "kind row missing {field}"
                );
            }
            let deg = row.get("degradation").expect("degradation per kind");
            assert!(deg
                .get("max_displacement")
                .and_then(json::Value::as_i64)
                .is_some());
        }
    }
}

/// Evaluates the hardened circuit against one translated fault over the
/// packed workload and returns, per lane: did the data outputs differ
/// from the oracle, and did the rail fire.
fn rail_vs_oracle(
    hardened: &absort::networks::hardened::HardenedSorter,
    target: &Circuit,
    fault: Option<absort::circuit::WireFault>,
    packed: &[u64],
    packed_oracle: &[u64],
    mask: u64,
) -> (u64, u64) {
    let faults: Vec<_> = fault.into_iter().collect();
    let mut ev: FaultyEvaluator<'_, u64> = FaultyEvaluator::new(target, &faults);
    let mut out = vec![0u64; target.n_outputs()];
    ev.run_into(packed, &mut out);
    let mut differed = 0u64;
    for (o, &oracle) in packed_oracle.iter().enumerate() {
        differed |= (out[o] ^ oracle) & mask;
    }
    (differed, out[hardened.rail_index()] & mask)
}

#[test]
fn hardened_fish_rail_catches_every_internal_permanent_fault_at_n8() {
    // The acceptance bar for self-checking hardening: on the n = 8 fish
    // merger, every permanent single fault *behind the input pins* that
    // changes any data output is flagged by the concurrent error rail —
    // and on exactly the vectors the offline oracle flags, because the
    // rail computes the oracle's two conditions (zero-one monotonicity,
    // token conservation) in hardware against unfaulted inputs.
    // Input-pin faults are excluded by principle: the checker sees the
    // faulted input, which is just a different valid sorting problem.
    let n = 8;
    let circuit = build_network(NetworkSel::Fish, n);
    let hardened = harden(&circuit, &HardenOptions::default());
    let vectors = absort::core::lang::all_k_sorted(n, fish_k(n));
    let oracle: Vec<Vec<bool>> = vectors
        .iter()
        .map(|v| absort::core::lang::sorted_oracle(v))
        .collect();
    assert!(vectors.len() <= 64, "workload must fit one packed chunk");
    let packed = pack_lanes(&vectors, n);
    let packed_oracle = pack_lanes(&oracle, n);
    let mask = (1u64 << vectors.len()) - 1;
    let input_wires: std::collections::HashSet<Wire> = (0..circuit.n_inputs())
        .map(|i| circuit.input_wire(i))
        .collect();

    // Wire-granularity permanent sites, primary input pins excluded.
    let mut internal_sites = 0usize;
    for site in permanent_fault_sites(&circuit, &vectors) {
        let on_input = match site {
            absort::circuit::WireFault::StuckAt { wire, .. } => input_wires.contains(&wire),
            absort::circuit::WireFault::BridgeOr { a, b } => {
                input_wires.contains(&a) || input_wires.contains(&b)
            }
            absort::circuit::WireFault::TransientFlip { .. } => unreachable!(),
        };
        if on_input {
            continue;
        }
        internal_sites += 1;
        let (differed, rail) = rail_vs_oracle(
            &hardened,
            &hardened.circuit,
            Some(hardened.fault(site)),
            &packed,
            &packed_oracle,
            mask,
        );
        assert_eq!(
            rail, differed,
            "site {site}: rail and oracle disagree on some vector"
        );
    }
    assert!(internal_sites > 0, "no internal wire sites swept");

    // Component mutants are internal by construction: same per-vector
    // equivalence must hold for every rewrite kind.
    let mut mutants_swept = 0usize;
    for fault in Fault::ALL {
        for (ci, _) in mutate::mutants(&circuit, fault) {
            let hm = mutate::apply(&hardened.circuit, hardened.component(ci), fault)
                .expect("base-applicable fault applies to the embedded copy");
            mutants_swept += 1;
            let (differed, rail) =
                rail_vs_oracle(&hardened, &hm, None, &packed, &packed_oracle, mask);
            assert_eq!(
                rail, differed,
                "mutant ({ci}, {fault:?}): rail and oracle disagree on some vector"
            );
        }
    }
    assert!(mutants_swept > 0, "no component mutants swept");

    // And the campaign reports the same totality: for the netlist-rewrite
    // kinds every offline-detected site is concurrently flagged.
    let report = run_network(NetworkSel::Fish, &small_cfg(n));
    for cell in &report.kinds {
        if matches!(
            cell.kind,
            Some(FaultKind::InvertBehaviour)
                | Some(FaultKind::StuckSelectLow)
                | Some(FaultKind::StuckSelectHigh)
        ) {
            assert_eq!(cell.flagged, cell.detected, "{:?}", cell.kind);
            assert_eq!(cell.concurrent_detection_rate(), 1.0, "{:?}", cell.kind);
        }
    }
}

#[test]
fn clocked_control_faults_flag_concurrently_only_with_control_hardening() {
    // The control-path acceptance bar at n = 8: every permanent fault on
    // a *control* site (the steering-counter state pins and every wire
    // of the ctl increment/shadow/parity logic) that perturbs the
    // streamed data is flagged by the rail while it happens. The
    // observation window is two schedules: a shadow wrap-carry fault
    // latches on the last cycle of a schedule and becomes visible on the
    // first cycle of the next.
    let n = 8;
    let k = fish_k(n);
    let hard = streaming_sorter(n, k, Some(&HardenOptions::default()));
    // Lines chosen so mis-steering is visible: group 0 all ones, the
    // rest all zeros — replaying group 0 emits ones where zeros belong.
    let mut lines = vec![false; n];
    for b in lines.iter_mut().take(n / k) {
        *b = true;
    }
    let window = 2 * k;
    let reference: Vec<Vec<bool>> = {
        let mut sim = hard.machine.power_on();
        (0..window).map(|_| sim.step(&lines)).collect()
    };

    let comb = hard.machine.comb();
    let mut sites: Vec<WireFault> = Vec::new();
    for i in 0..hard.machine.n_state() {
        let wire = comb.input_wire(n + i); // state pins follow the n lines
        for value in [false, true] {
            sites.push(WireFault::StuckAt { wire, value });
        }
    }
    for ci in comb
        .components_in_scope("ctl")
        .expect("hardened streamer has a ctl scope")
    {
        for wire in comb.component_output_wires(ci) {
            for value in [false, true] {
                sites.push(WireFault::StuckAt { wire, value });
            }
        }
    }

    let (mut corrupting, mut flagged_total) = (0usize, 0usize);
    for &site in &sites {
        let mut sim = hard.machine.power_on_faulty(&[site]);
        let (mut differed, mut flagged) = (false, false);
        for reference_out in &reference {
            let out = sim.step(&lines);
            differed |= out[..hard.group] != reference_out[..hard.group];
            flagged |= out[hard.group]; // the rail rides after the group
        }
        corrupting += usize::from(differed);
        flagged_total += usize::from(flagged);
        assert!(
            !differed || flagged,
            "control fault {site} corrupts the stream without raising the rail"
        );
    }
    assert!(corrupting > 0, "no control fault disturbed the stream");
    assert!(
        flagged_total >= corrupting,
        "flagged set must cover the corrupting set"
    );

    // Before control hardening the same mis-steering was invisible *by
    // construction*: a stuck counter replays one (valid) group, every
    // replayed group is correctly sorted and token-conserving, so the
    // data-path checks stay green while the stream is wrong.
    let soft = streaming_sorter(
        n,
        k,
        Some(&HardenOptions {
            control: false,
            ..HardenOptions::default()
        }),
    );
    let soft_reference: Vec<Vec<bool>> = {
        let mut sim = soft.machine.power_on();
        (0..window).map(|_| sim.step(&lines)).collect()
    };
    let site = WireFault::StuckAt {
        wire: soft.machine.comb().input_wire(n), // counter bit 0 pin
        value: false,
    };
    let mut sim = soft.machine.power_on_faulty(&[site]);
    let (mut differed, mut flagged) = (false, false);
    for reference_out in &soft_reference {
        let out = sim.step(&lines);
        differed |= out[..soft.group] != reference_out[..soft.group];
        flagged |= out[soft.group];
    }
    assert!(differed, "a stuck counter must mis-steer the stream");
    assert!(
        !flagged,
        "data-path checks alone cannot see a control fault — that is what \
         HardenOptions::control exists for"
    );
}

#[test]
fn clocked_multi_tenant_campaign_keeps_recovery_accounting() {
    // Detection + recovery accounting under `--clocked --multi --tenants`:
    // the rail-triggered replay splits every flagged population into
    // recovered (cleared transients) and fail-stop (persistent flags),
    // at any tenancy, and the multi-tenant sweep must not change the
    // fault universe or v2 detection columns.
    let cfg = small_cfg(8);
    let opts = CampaignOptions {
        clocked: true,
        multi: 2,
        sets_per_k: 8,
        tenants: 4,
        ..CampaignOptions::default()
    };
    let report = run_campaign_with(&[NetworkSel::Fish], &cfg, &opts);
    let clocked: Vec<_> = report
        .networks
        .iter()
        .filter(|net| net.network == "fish-clocked")
        .collect();
    assert_eq!(clocked.len(), 2, "single-fault unit + 2-fault set unit");
    let mut recovered_transients = 0u64;
    for net in &clocked {
        for cell in &net.kinds {
            assert_eq!(
                cell.recovered + cell.fail_stop,
                cell.flagged,
                "{:?}: replay must split the flagged population exactly",
                cell.kind
            );
            if cell.kind.is_some_and(|k| !k.is_permanent()) {
                recovered_transients += cell.recovered;
            }
        }
    }
    assert!(
        recovered_transients > 0,
        "some flagged transient must clear on replay"
    );

    // Tenancy shares machine occupancy, never the sweep: the same
    // campaign at tenants = 1 injects the identical fault universe, and
    // there every permanent that flags must fail stop — replayed from
    // the same power-on state it re-manifests deterministically. (At
    // deeper tenancy a permanent can flag through corruption latched
    // across a batch and then pass the clean-reset replay, which the
    // report counts as recovered — that is the service-level view.)
    let solo = run_campaign_with(
        &[NetworkSel::Fish],
        &cfg,
        &CampaignOptions {
            tenants: 1,
            ..opts.clone()
        },
    );
    for (a, b) in report.networks.iter().zip(&solo.networks) {
        assert_eq!(a.network, b.network);
        for (ka, kb) in a.kinds.iter().zip(&b.kinds) {
            assert_eq!(ka.injected, kb.injected, "{}: universe changed", a.network);
        }
        if a.network == "fish-clocked" {
            for cell in &b.kinds {
                if cell.kind.is_some_and(FaultKind::is_permanent) {
                    assert_eq!(
                        cell.recovered, 0,
                        "{:?}: a permanent re-manifests on a same-state replay",
                        cell.kind
                    );
                }
            }
        }
    }
}

#[test]
fn multi_fault_report_is_a_strict_superset_of_single_fault() {
    // A --multi campaign starts with the exact single-fault unit (same
    // seed, same sweep) and appends the k >= 2 units after it.
    let cfg = small_cfg(4);
    let single = run_campaign(&[NetworkSel::Prefix], &cfg);
    let multi = run_campaign_with(
        &[NetworkSel::Prefix],
        &cfg,
        &CampaignOptions {
            multi: 2,
            sets_per_k: 16,
            ..CampaignOptions::default()
        },
    );
    assert_eq!(multi.networks.len(), 2);
    assert_eq!(
        multi.networks[0].to_json().to_pretty(),
        single.networks[0].to_json().to_pretty(),
        "k=1 unit must be bit-for-bit the single-fault campaign"
    );
    assert_eq!(multi.networks[1].fault_set_size, 2);
    assert_eq!(
        multi.networks[1].to_json().to_pretty(),
        run_network_sets(NetworkSel::Prefix, &cfg, 2, 16)
            .to_json()
            .to_pretty()
    );
}

#[test]
fn interrupted_campaign_resumes_into_identical_report() {
    // Acceptance: a timeout-interrupted clocked campaign, resumed from
    // its checkpoint, produces a report identical to an uninterrupted
    // run. Duration::ZERO trips the deadline after the first unit (the
    // driver guarantees at least one fresh unit per invocation).
    let dir = std::env::temp_dir().join(format!("absort-ckpt-{}", std::process::id()));
    let ckpt = dir.join("checkpoint.json");
    let cfg = small_cfg(4);
    let nets = [NetworkSel::Prefix, NetworkSel::Fish];
    let base_opts = CampaignOptions {
        multi: 2,
        sets_per_k: 8,
        clocked: true,
        ..CampaignOptions::default()
    };

    let uninterrupted = run_campaign_with(&nets, &cfg, &base_opts);
    // 2 nets x k in {1,2} + clocked single-fault + clocked 2-fault sets
    assert_eq!(uninterrupted.networks.len(), 6);
    assert!(!uninterrupted.truncated);

    let mut opts = base_opts.clone();
    opts.checkpoint = Some(ckpt.clone());
    opts.timeout = Some(std::time::Duration::ZERO);
    let first = run_campaign_with(&nets, &cfg, &opts);
    assert!(first.truncated, "zero budget must truncate");
    assert_eq!(first.networks.len(), 1, "one unit per run is guaranteed");

    // Resume until done; each pass makes progress on a zero budget.
    opts.resume = true;
    let mut last = first;
    for _ in 0..7 {
        last = run_campaign_with(&nets, &cfg, &opts);
        if !last.truncated {
            break;
        }
    }
    assert!(
        !last.truncated,
        "the resumes must finish the remaining units"
    );
    assert_eq!(
        last.to_json().to_pretty(),
        uninterrupted.to_json().to_pretty(),
        "resumed campaign must reproduce the uninterrupted report bit-for-bit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_sites_cover_every_observable_wire_polarity() {
    // Wire granularity: at n = 8 every cone wire that takes both values
    // across the workload must show up as both a stuck-at-0 and a
    // stuck-at-1 site, so the campaign's denominator really is the full
    // single-fault space (minus provably vacuous sites).
    let circuit = build_network(NetworkSel::Prefix, 8);
    let vectors: Vec<Vec<bool>> = (0u32..256)
        .map(|v| (0..8).map(|b| v >> b & 1 == 1).collect())
        .collect();
    let sites = permanent_fault_sites(&circuit, &vectors);
    let cone = observable_wires(&circuit);
    let mut stuck_wires = std::collections::HashSet::new();
    let mut stuck = 0usize;
    for s in &sites {
        if let absort::circuit::WireFault::StuckAt { wire, .. } = s {
            stuck_wires.insert(*wire);
            stuck += 1;
        }
    }
    // A wire that toggles across the workload yields two stuck-at sites;
    // a wire constant across *all* inputs (a const tie) yields exactly
    // one — pinning it to the value it already holds is vacuous. Either
    // way every observable wire must be represented.
    for w in &cone {
        assert!(
            stuck_wires.contains(w),
            "cone wire {w:?} has no stuck-at site"
        );
    }
    assert!(stuck >= cone.len() && stuck <= 2 * cone.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every network the builders can produce is structurally sound:
    /// `Circuit::validate()` accepts the whole catalog at any
    /// power-of-two width.
    #[test]
    fn catalog_networks_validate(exp in 1usize..=5) {
        let n = 1usize << exp;
        prop_assert!(absort::core::prefix::build(n).validate().is_ok());
        prop_assert!(absort::core::muxmerge::build(n).validate().is_ok());
        prop_assert!(absort::core::nonadaptive::build(n).validate().is_ok());
        prop_assert!(absort::core::muxmerge::build_merger(n).validate().is_ok());
        prop_assert!(absort::core::prefix::build_with_adder(
            n,
            absort::blocks::adder::AdderKind::Ripple
        )
        .validate()
        .is_ok());
        if n >= 4 {
            let k = fish_k(n);
            prop_assert!(absort::core::fish::circuits::build_combinational_kmerger(n, k)
                .validate()
                .is_ok());
            prop_assert!(absort::core::fish::circuits::build_kswap(n, k)
                .validate()
                .is_ok());
        }
    }

    /// Clocked control invariants at any width: the steering counter
    /// reads `cycle mod k` little-endian, the duplicate (shadow)
    /// counter tracks it bit-for-bit, parity mirrors the count LSB, the
    /// heartbeat pulses exactly on schedule starts, and a mid-stream
    /// `reset()` restores the power-on registers without rewinding the
    /// cycle counter — after which the stream is indistinguishable from
    /// a fresh power-on.
    #[test]
    fn clocked_counter_rollover_and_reset_invariants(
        exp in 2usize..=4,
        steps in 1usize..=24,
    ) {
        let n = 1usize << exp;
        let k = fish_k(n);
        let kbits = k.trailing_zeros() as usize;
        let hard = streaming_sorter(n, k, Some(&HardenOptions::default()));
        prop_assert_eq!(hard.machine.n_state(), 2 * kbits + 2);
        let lines = vec![false; n];
        let mut sim = hard.machine.power_on();
        for c in 0..steps {
            let count = c % k;
            for b in 0..kbits {
                let bit = count >> b & 1 == 1;
                prop_assert_eq!(sim.state()[b], bit, "counter bit {} at cycle {}", b, c);
                prop_assert_eq!(sim.state()[kbits + b], bit, "shadow bit {} at cycle {}", b, c);
            }
            // k is a power of two, so the count LSB is the cycle LSB —
            // exactly what the toggling parity register encodes.
            prop_assert_eq!(sim.state()[2 * kbits], count & 1 == 1, "parity at cycle {}", c);
            prop_assert_eq!(sim.state()[2 * kbits + 1], count == 0, "heartbeat at cycle {}", c);
            let out = sim.step(&lines);
            prop_assert!(!out[hard.group], "rail must stay quiet fault-free");
        }
        prop_assert_eq!(sim.cycle(), steps as u64);
        sim.reset();
        prop_assert_eq!(sim.state(), hard.machine.reset_state());
        prop_assert_eq!(
            sim.cycle(),
            steps as u64,
            "reset is a register pulse, not a time machine"
        );
        let mut fresh = hard.machine.power_on();
        for _ in 0..k {
            prop_assert_eq!(sim.step(&lines), fresh.step(&lines));
        }
    }

    /// Campaign sampling is deterministic in the seed: the same config
    /// yields the same report, different seeds may not (sampled tier).
    #[test]
    fn sampled_tier_is_seed_deterministic(seed in any::<u64>()) {
        let cfg = CampaignConfig {
            n: 8,
            seed,
            max_exhaustive: 8, // force the sampled tier at n = 8
            transient_samples: 8,
            ..CampaignConfig::default()
        };
        let a = run_network(NetworkSel::MuxMerger, &cfg);
        let b = run_network(NetworkSel::MuxMerger, &cfg);
        prop_assert_eq!(a.tier.as_str(), "sampled");
        prop_assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }
}
