//! Differential equivalence of the two evaluation engines on the paper's
//! real networks: the enum-dispatch interpreter and the compiled
//! register-allocated micro-op tape must agree bit-for-bit.
//!
//! Coverage:
//! * exhaustive — every one of the `2^n` input vectors at `n ≤ 8`, for
//!   the prefix sorter, the mux-based merge sorter, the fish k-way
//!   merger (combinational form), and the nonadaptive (Batcher-equal)
//!   sorter, swept in packed 64-lane passes;
//! * proptest — random vector batches across the same catalog at larger
//!   sizes, through scalar, packed, and batch-parallel compiled paths.

use absort::analysis::faults::fish_k;
use absort::circuit::eval::{pack_lanes_wide, unpack_lanes_wide};
use absort::circuit::{Circuit, CompiledEvaluator, Evaluator};
use absort::core::{fish, muxmerge, nonadaptive, prefix};
use proptest::prelude::*;
use rand::prelude::*;

/// The network catalog at width `n` (fish needs `k ≤ n/k`, so it joins
/// from `n = 4` up).
fn catalog(n: usize) -> Vec<(&'static str, Circuit)> {
    let mut v = vec![
        ("prefix", prefix::build(n)),
        ("mux-merger", muxmerge::build(n)),
        ("batcher", nonadaptive::build(n)),
    ];
    if n >= 4 {
        v.push((
            "fish",
            fish::circuits::build_combinational_kmerger(n, fish_k(n)),
        ));
    }
    v
}

/// Packs the 64 consecutive integers starting at `base` (little-endian
/// bit `i` = input `i`) into lane words; lanes past `count` stay zero.
fn pack_range(n: usize, base: u64, count: usize) -> Vec<u64> {
    let mut packed = vec![0u64; n];
    for lane in 0..count {
        let x = base + lane as u64;
        for (i, p) in packed.iter_mut().enumerate() {
            *p |= (x >> i & 1) << lane;
        }
    }
    packed
}

#[test]
fn exhaustive_equivalence_at_small_n() {
    for n in [2usize, 4, 8] {
        for (name, circuit) in catalog(n) {
            let compiled = circuit.compile();
            assert!(
                compiled.n_slots() <= circuit.n_wires(),
                "{name} n={n}: regalloc grew the buffer"
            );
            let mut interp: Evaluator<'_, u64> = Evaluator::new(&circuit);
            let mut comp: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&compiled);
            let total = 1u64 << n;
            let mut v = 0u64;
            while v < total {
                let lanes = (total - v).min(64) as usize;
                let packed = pack_range(n, v, lanes);
                let want = interp.run(&packed);
                let got = comp.run(&packed);
                assert_eq!(got, want, "{name} n={n} vectors {v}..{}", v + lanes as u64);
                v += lanes as u64;
            }
        }
    }
}

#[test]
fn scalar_path_equivalence_spot_checks() {
    // The bool-lane path exercises the same tape with a different `V`;
    // one full small-n sweep keeps it honest.
    for (name, circuit) in catalog(4) {
        let compiled = circuit.compile();
        for v in 0..1u64 << 4 {
            let bits: Vec<bool> = (0..4).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(
                compiled.eval(&bits),
                circuit.eval(&bits),
                "{name} input {v:04b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random 64-lane batches agree across the catalog at larger sizes,
    /// including the compiled batch-parallel path.
    #[test]
    fn catalog_random_vectors_agree(seed in any::<u64>(), size_idx in 0usize..3) {
        let n = [4usize, 8, 16][size_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        for (name, circuit) in catalog(n) {
            let compiled = circuit.compile();
            let mut interp: Evaluator<'_, u64> = Evaluator::new(&circuit);
            let mut comp: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&compiled);
            for pass in 0..4 {
                let packed: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
                let want = interp.run(&packed);
                let got = comp.run(&packed);
                prop_assert_eq!(got, want, "{} n={} pass {}", name, n, pass);
            }
            // Batch-parallel compiled path on a ragged batch (three
            // partial 64-lane groups).
            let vectors: Vec<Vec<bool>> = (0..150)
                .map(|_| (0..n).map(|_| rng.gen()).collect())
                .collect();
            let want = circuit.eval_batch_parallel(&vectors, 2);
            let got = compiled.eval_batch_parallel(&vectors, 2);
            prop_assert_eq!(got, want, "{} n={} batch", name, n);
        }
    }

    /// The `[u64; 8]` wide walk (512 lanes per pass) agrees with the
    /// `[u64; 4]` walk and the scalar path on random batches, and the
    /// wide pack/unpack pair round-trips exactly.
    #[test]
    fn wide8_walks_agree_with_narrow_and_scalar(seed in any::<u64>(), size_idx in 0usize..3) {
        let n = [4usize, 8, 16][size_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        for (name, circuit) in catalog(n) {
            let compiled = circuit.compile();
            let vectors: Vec<Vec<bool>> = (0..512)
                .map(|_| (0..n).map(|_| rng.gen()).collect())
                .collect();
            let w8 = pack_lanes_wide::<8>(&vectors, n);
            prop_assert_eq!(
                unpack_lanes_wide(&w8, vectors.len()),
                vectors.clone(),
                "{} n={}: wide pack/unpack must round-trip", name, n
            );
            let mut ev8: CompiledEvaluator<'_, [u64; 8]> = CompiledEvaluator::new(&compiled);
            let mut ev4: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(&compiled);
            let out8 = unpack_lanes_wide(&ev8.run(&w8), vectors.len());
            let w4 = pack_lanes_wide::<4>(&vectors[..256], n);
            let out4 = unpack_lanes_wide(&ev4.run(&w4), 256);
            prop_assert_eq!(&out8[..256], &out4[..], "{} n={}: [u64;8] vs [u64;4]", name, n);
            // Scalar spot checks across both halves, including the
            // word-boundary lanes.
            for idx in [0usize, 63, 64, 255, 256, 511] {
                prop_assert_eq!(
                    &out8[idx],
                    &compiled.eval(&vectors[idx]),
                    "{} n={} lane {}: [u64;8] vs scalar", name, n, idx
                );
            }
        }
    }
}
