//! Pass-pipeline acceptance tests.
//!
//! The compiled engine's optimization passes must be *invisible* in
//! results: every network in the catalog, at every opt level and under
//! every single-pass-disabled configuration, must evaluate exhaustively
//! identically to the interpreter — and a whole fault campaign must
//! produce a bit-identical report no matter which opt level compiled
//! its tapes (the provenance contract: dead sites are genuinely
//! unobservable, folded sites fall back to per-mutant recompiles).

use absort::analysis::faults::{self as fc, fish_k, NetworkSel};
use absort::circuit::{
    Circuit, CompileOptions, CompiledEvaluator, Engine, Evaluator, OptLevel, PassName, PassSet,
};
use absort::core::{fish, muxmerge, nonadaptive, prefix};
use absort::networks::hardened::{harden, HardenOptions};

/// The network catalog at width `n` (fish needs `k ≤ n/k`, so it joins
/// from `n = 4` up), plus the hardened wrappers campaigns actually
/// sweep — the circuits where CSE and const-prop genuinely fire.
fn catalog(n: usize) -> Vec<(String, Circuit)> {
    let mut v = vec![
        ("prefix".to_owned(), prefix::build(n)),
        ("mux-merger".to_owned(), muxmerge::build(n)),
        ("batcher".to_owned(), nonadaptive::build(n)),
    ];
    if n >= 4 {
        v.push((
            "fish".to_owned(),
            fish::circuits::build_combinational_kmerger(n, fish_k(n)),
        ));
    }
    let hardened: Vec<(String, Circuit)> = v
        .iter()
        .map(|(name, c)| {
            let h = harden(
                c,
                &HardenOptions {
                    duplicate: true,
                    ..Default::default()
                },
            );
            (format!("{name}+hardened"), h.circuit)
        })
        .collect();
    v.extend(hardened);
    v
}

/// Every pass configuration the sweep covers: the three tiers plus each
/// "all passes except one" set (catches pass-order dependencies a tier
/// sweep would miss).
fn configurations() -> Vec<(String, PassSet)> {
    let mut v: Vec<(String, PassSet)> = OptLevel::ALL
        .into_iter()
        .map(|l| (format!("O{l}"), l.passes()))
        .collect();
    for p in PassName::ALL {
        v.push((format!("all-minus-{p}"), PassSet::ALL.without(p)));
    }
    v
}

/// Packs the 64 consecutive integers starting at `base` into lane words.
fn pack_range(n: usize, base: u64, count: usize) -> Vec<u64> {
    let mut packed = vec![0u64; n];
    for lane in 0..count {
        let x = base + lane as u64;
        for (i, p) in packed.iter_mut().enumerate() {
            *p |= (x >> i & 1) << lane;
        }
    }
    packed
}

/// Exhaustive interpreter-vs-compiled equivalence for every catalog
/// network under every pass configuration at n ≤ 8. Debug builds also
/// run the per-pass IR differential check inside each compile.
#[test]
fn every_configuration_matches_interpreter_exhaustively() {
    for n in [2usize, 4, 8] {
        for (name, circuit) in catalog(n) {
            let mut interp: Evaluator<'_, u64> = Evaluator::new(&circuit);
            for (cfg_name, passes) in configurations() {
                let opts = CompileOptions {
                    passes,
                    verify: true,
                    ..CompileOptions::default()
                };
                let compiled = circuit.compile_with(&opts);
                let mut comp: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&compiled);
                let total = 1u64 << circuit.n_inputs();
                let mut v = 0u64;
                while v < total {
                    let lanes = (total - v).min(64) as usize;
                    let packed = pack_range(circuit.n_inputs(), v, lanes);
                    let want = interp.run(&packed);
                    let got = comp.run(&packed);
                    assert_eq!(got, want, "{name} n={n} cfg={cfg_name} vectors at {v}");
                    v += lanes as u64;
                }
            }
        }
    }
}

/// Optimization must shrink, never grow, the tape — and the default
/// (O2) pipeline must show a measured reduction over O0 on the hardened
/// catalog (CSE merges checker structure, const-prop folds the fish
/// merger's constant padding).
#[test]
fn higher_opt_levels_never_grow_the_tape() {
    let mut o2_won_somewhere = false;
    for (name, circuit) in catalog(8) {
        let lens: Vec<usize> = OptLevel::ALL
            .into_iter()
            .map(|l| {
                circuit
                    .compile_with(&CompileOptions::for_level(l))
                    .tape_len()
            })
            .collect();
        assert!(
            lens[1] <= lens[0] && lens[2] <= lens[1],
            "{name}: tape lengths not monotone across O0/O1/O2: {lens:?}"
        );
        if lens[2] < lens[1] {
            o2_won_somewhere = true;
        }
    }
    assert!(
        o2_won_somewhere,
        "CSE + const-prop must shrink some catalog tape beyond O1"
    );
}

/// A fault campaign's report must be bit-identical across opt levels:
/// the pass pipeline may only change how fast mutants are swept, never
/// a single report cell.
#[test]
fn campaign_reports_identical_across_opt_levels() {
    let nets = [NetworkSel::Prefix, NetworkSel::Fish];
    let report_at = |level: OptLevel| {
        let cfg = fc::CampaignConfig {
            n: 4,
            engine: Engine::Compiled,
            opt: CompileOptions::for_level(level),
            ..Default::default()
        };
        fc::run_campaign(&nets, &cfg).to_json().to_pretty()
    };
    let o0 = report_at(OptLevel::O0);
    let o2 = report_at(OptLevel::O2);
    assert_eq!(o0, o2, "O2 campaign report diverged from O0");
    // And the duplicate-hardened wrapper — where CSE folds the whole
    // duplicate core — must hold the same contract.
    let dup_report = |level: OptLevel| {
        let cfg = fc::CampaignConfig {
            n: 4,
            engine: Engine::Compiled,
            opt: CompileOptions::for_level(level),
            harden: HardenOptions {
                duplicate: true,
                ..Default::default()
            },
            ..Default::default()
        };
        fc::run_network(NetworkSel::MuxMerger, &cfg)
            .to_json()
            .to_pretty()
    };
    assert_eq!(
        dup_report(OptLevel::O0),
        dup_report(OptLevel::O2),
        "duplicate-hardened campaign diverged across opt levels"
    );
}

/// The report's cost columns price the hardening trade: the wrapper
/// always costs more than the base, and duplicate-and-compare more
/// still.
#[test]
fn report_cost_columns_price_the_hardening() {
    let cfg = fc::CampaignConfig {
        n: 4,
        ..Default::default()
    };
    let cheap = fc::run_network(NetworkSel::Prefix, &cfg);
    assert!(cheap.base_cost > 0);
    assert!(cheap.hardened_cost > cheap.base_cost);
    let dup_cfg = fc::CampaignConfig {
        harden: HardenOptions {
            duplicate: true,
            ..Default::default()
        },
        ..cfg
    };
    let dup = fc::run_network(NetworkSel::Prefix, &dup_cfg);
    assert_eq!(dup.base_cost, cheap.base_cost);
    assert!(
        dup.hardened_cost >= cheap.hardened_cost + dup.base_cost,
        "duplicate-and-compare must at least double the core"
    );
}
