//! Cross-crate validation: every implementation of every sorter (circuit,
//! functional, lane-parallel) must agree with each other and with the
//! counting oracle.

use absort::circuit::Evaluator;
use absort::core::{lang, muxmerge, prefix, FishSorter};
use rand::prelude::*;

/// Exhaustive: both combinational sorter circuits sort all 2^16 inputs at
/// n = 16, checked with the 64-lane evaluator (1024 packed passes each).
#[test]
fn circuits_sort_all_inputs_n16_lane_parallel() {
    let n = 16usize;
    for (name, circuit) in [
        ("prefix", prefix::build(n)),
        ("mux-merger", muxmerge::build(n)),
    ] {
        let mut ev: Evaluator<'_, u64> = Evaluator::new(&circuit);
        let total = 1u64 << n;
        let mut base = 0u64;
        while base < total {
            let count = (total - base).min(64);
            let mut packed = vec![0u64; n];
            for v in 0..count {
                for (i, p) in packed.iter_mut().enumerate() {
                    if (base + v) >> i & 1 == 1 {
                        *p |= 1 << v;
                    }
                }
            }
            let out = ev.run(&packed);
            for v in 0..count {
                let input = base + v;
                let ones = input.count_ones() as usize;
                for (i, word) in out.iter().enumerate() {
                    let bit = word >> v & 1 == 1;
                    let expect = i >= n - ones;
                    assert!(bit == expect, "{name}: input {input:016b}, output line {i}");
                }
            }
            base += count;
        }
    }
}

#[test]
fn parallel_batch_evaluator_agrees_with_scalar() {
    let n = 32;
    let c = muxmerge::build(n);
    let mut rng = StdRng::seed_from_u64(40);
    let vectors: Vec<Vec<bool>> = (0..500)
        .map(|_| (0..n).map(|_| rng.gen()).collect())
        .collect();
    let batch = c.eval_batch_parallel(&vectors, 4);
    for (v, out) in vectors.iter().zip(&batch) {
        assert_eq!(out, &c.eval(v));
    }
}

#[test]
fn functional_and_circuit_agree_across_sizes() {
    let mut rng = StdRng::seed_from_u64(41);
    for k in 1..=8usize {
        let n = 1 << k;
        let pre = prefix::build(n);
        let mux = muxmerge::build(n);
        for _ in 0..30 {
            let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let oracle = lang::sorted_oracle(&s);
            assert_eq!(prefix::sort(&s), oracle, "prefix functional n={n}");
            assert_eq!(muxmerge::sort(&s), oracle, "mux functional n={n}");
            assert_eq!(pre.eval(&s), oracle, "prefix circuit n={n}");
            assert_eq!(mux.eval(&s), oracle, "mux circuit n={n}");
        }
    }
}

#[test]
fn all_three_sorters_agree_on_structured_inputs() {
    // Adversarial structure: long runs, alternations, single flips.
    let n = 1024usize;
    let mut cases: Vec<Vec<bool>> = vec![
        vec![false; n],
        vec![true; n],
        (0..n).map(|i| i % 2 == 0).collect(),
        (0..n).map(|i| i < n / 2).collect(),
        (0..n).map(|i| i >= n / 2).collect(),
        (0..n).map(|i| (i / 64) % 2 == 0).collect(),
    ];
    for flip in [0usize, 1, n / 2, n - 1] {
        let mut v = vec![false; n];
        v[flip] = true;
        cases.push(v.clone());
        let mut w = vec![true; n];
        w[flip] = false;
        cases.push(w);
    }
    let fish = FishSorter::with_default_k(n);
    for s in cases {
        let oracle = lang::sorted_oracle(&s);
        assert_eq!(prefix::sort(&s), oracle);
        assert_eq!(muxmerge::sort(&s), oracle);
        assert_eq!(fish.sort(&s), oracle);
    }
}

#[test]
fn fish_sorter_all_valid_k_values_agree() {
    let n = 4096usize;
    let mut rng = StdRng::seed_from_u64(42);
    let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let oracle = lang::sorted_oracle(&s);
    for kexp in 1..=6u32 {
        let k = 1usize << kexp;
        let f = FishSorter::new(n, k);
        assert_eq!(f.sort(&s), oracle, "k={k}");
    }
}

#[test]
fn all_sorter_circuits_formally_equivalent_at_16() {
    // Exhaustive equivalence (all 2^16 inputs, 64-lane packed): the three
    // circuit constructions compute the identical function.
    use absort::circuit::equiv::{check_exhaustive, Equivalence};
    use absort::core::nonadaptive;
    let pre = prefix::build(16);
    let mux = muxmerge::build(16);
    let na = nonadaptive::build(16);
    assert_eq!(check_exhaustive(&pre, &mux), Equivalence::EqualExhaustive);
    assert_eq!(check_exhaustive(&mux, &na), Equivalence::EqualExhaustive);
}

#[test]
fn adder_ablation_is_formally_equivalent() {
    use absort::blocks::adder::AdderKind;
    use absort::circuit::equiv::{check_exhaustive, Equivalence};
    let a = prefix::build_with_adder(16, AdderKind::Prefix);
    let b = prefix::build_with_adder(16, AdderKind::Ripple);
    assert_eq!(check_exhaustive(&a, &b), Equivalence::EqualExhaustive);
}

#[test]
fn fish_overtakes_recirculating_periodic_balanced() {
    // The recirculating periodic balanced block is a nonadaptive
    // time-multiplexed sorter at (n/2)·lg n cost — only a factor lg n/2
    // over the fish sorter's ≈15n, so the constant matters: the fish
    // sorter overtakes it near lg n ≈ 30 and wins thereafter. Verify the
    // crossover location and the asymptotic ordering.
    use absort::cmpnet::periodic;
    let fish_cost = |a: u32| {
        let n = 1usize << a;
        let f = FishSorter::with_default_k(n);
        absort::core::fish::formulas::total_cost_exact(n, f.k)
    };
    let crossover = (16u32..=40)
        .find(|&a| fish_cost(a) < periodic::recirculating_cost(1usize << a))
        .expect("fish must eventually win");
    assert!(
        (28..=36).contains(&crossover),
        "crossover at 2^{crossover}, expected near 2^30"
    );
    // and it keeps winning beyond
    assert!(fish_cost(40) < periodic::recirculating_cost(1usize << 40));
}

#[test]
fn large_functional_sorts_2_to_the_18() {
    let n = 1 << 18;
    let mut rng = StdRng::seed_from_u64(43);
    let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let oracle = lang::sorted_oracle(&s);
    assert_eq!(prefix::sort(&s), oracle);
    assert_eq!(muxmerge::sort(&s), oracle);
    assert_eq!(FishSorter::with_default_k(n).sort(&s), oracle);
}
