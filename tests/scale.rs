//! Moderate-scale end-to-end runs: every layer at sizes well past the
//! exhaustive regimes, using the shared generators of
//! `absort::core::lang::gen`. (Kept debug-build friendly; the truly big
//! sweeps live in the release-mode benches and the `repro` binary.)

use absort::core::lang::{self, gen};
use absort::core::sorter::SorterKind;
use absort::core::{muxmerge, prefix, FishSorter};
use absort::networks::permuter::RadixPermuter;
use absort::networks::word_sorter::WordSorter;

#[test]
fn functional_sorters_at_2_to_the_16() {
    let n = 1 << 16;
    for seed in [1u64, 2, 3] {
        // structured inputs stress different paths than uniform ones
        let inputs = [
            gen::bisorted(seed, n),
            gen::k_sorted(seed, n, 16),
            gen::a_n(seed, n),
        ];
        for s in inputs {
            let oracle = lang::sorted_oracle(&s);
            assert_eq!(prefix::sort(&s), oracle);
            assert_eq!(muxmerge::sort(&s), oracle);
            assert_eq!(FishSorter::with_default_k(n).sort(&s), oracle);
        }
    }
}

#[test]
fn merger_on_structured_inputs_at_scale() {
    let n = 1 << 14;
    for seed in 0..5u64 {
        let x = gen::bisorted(seed, n);
        assert_eq!(muxmerge::merge(&x), lang::sorted_oracle(&x));
        let z = gen::a_n(seed, n);
        // A_n members sort via the prefix sorter's patch-up machinery
        assert_eq!(prefix::sort(&z), lang::sorted_oracle(&z));
    }
}

#[test]
fn model_b_full_run_at_2_to_the_12() {
    use absort::core::fish::modelb;
    let n = 1 << 12;
    let bits = gen::k_sorted(7, n, 2); // arbitrary content; k of the RUN is 8
    let run = modelb::run(&bits, 8, true);
    assert_eq!(run.output, lang::sorted_oracle(&bits));
    assert_eq!(
        run.total_cycles,
        absort::core::fish::schedule::sorting_time(n, 8, true)
    );
}

#[test]
fn permuter_at_1024_with_fish() {
    let n = 1024;
    let rp = RadixPermuter::new(SorterKind::Fish { k: None }, n);
    // a worst-case-ish pattern: bit reversal
    let bits = n.trailing_zeros();
    let perm: Vec<usize> = (0..n)
        .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
        .collect();
    let packets: Vec<(usize, u32)> = perm
        .iter()
        .enumerate()
        .map(|(i, &d)| (d, i as u32))
        .collect();
    let out = rp.route(&packets).unwrap();
    for (i, &d) in perm.iter().enumerate() {
        assert_eq!(out[d], i as u32);
    }
}

#[test]
fn word_sorter_at_512_by_24_bits() {
    let n = 512;
    let ws = WordSorter::new(SorterKind::Fish { k: None }, n, 24);
    let items: Vec<(u64, usize)> = (0..n)
        .map(|i| {
            let z = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
            (z, i)
        })
        .collect();
    let out = ws.sort(&items).unwrap();
    let mut expect = items.clone();
    expect.sort_by_key(|&(k, _)| k);
    assert_eq!(out, expect);
}

#[test]
fn built_circuits_at_2_to_the_13() {
    // construction + analysis at a size with ~10^6 components
    let n = 1 << 13;
    let c = muxmerge::build(n);
    assert_eq!(c.cost().total, muxmerge::formulas::sorter_cost_exact(n));
    assert_eq!(c.depth() as u64, muxmerge::formulas::sorter_depth_exact(n));
    let s = gen::a_n(11, n);
    assert_eq!(c.eval(&s), lang::sorted_oracle(&s));
}
