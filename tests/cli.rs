//! End-to-end tests of the `absort` CLI binary (spawned as a real
//! process, exercising argument parsing, exit codes, and output format).

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_absort"))
        .args(args)
        .output()
        .expect("spawn absort CLI")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn sort_command_sorts() {
    for network in ["prefix", "mux-merger", "fish", "nonadaptive"] {
        let out = run(&["sort", "--network", network, "0110_1001_1100_0011"]);
        assert!(out.status.success(), "{network}");
        assert!(
            stdout(&out).contains("0000/0000/1111/1111"),
            "{network}: {}",
            stdout(&out)
        );
    }
}

#[test]
fn route_command_places_payloads() {
    let out = run(&["route", "--network", "mux-merger", "3,1,0,2"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("output 0 <- p2"), "{s}");
    assert!(s.contains("output 3 <- p0"), "{s}");
    assert!(s.contains("circuit-switched"), "{s}");
}

#[test]
fn route_rejects_non_permutation() {
    let out = run(&["route", "--network", "fish", "0,0,1,2"]);
    assert!(!out.status.success());
}

#[test]
fn concentrate_compacts() {
    let out = run(&["concentrate", "--m", "4", "a.b..c.d"]);
    assert!(out.status.success());
    let s = stdout(&out);
    let line = s.lines().next().unwrap();
    assert_eq!(line.len(), 4);
    assert!(!line.contains('.'), "all four trunks busy: {line}");
    let mut chars: Vec<char> = line.chars().collect();
    chars.sort_unstable();
    assert_eq!(chars, vec!['a', 'b', 'c', 'd']);
}

#[test]
fn verify_commands() {
    let ok = run(&["verify", "--network", "mux-merger", "--n", "8"]);
    assert!(ok.status.success());
    assert!(stdout(&ok).contains("verified: all 256 inputs"));

    let bad_n = run(&["verify", "--network", "prefix", "--n", "12"]);
    assert!(!bad_n.status.success());
}

#[test]
fn verify_engine_selector() {
    // Both engines must verify the same network, and the output names
    // the engine that ran (compiled is the default).
    for engine in ["interp", "compiled"] {
        let out = run(&[
            "verify",
            "--network",
            "prefix",
            "--n",
            "8",
            "--engine",
            engine,
        ]);
        assert!(out.status.success(), "{engine}");
        let s = stdout(&out);
        assert!(s.contains("verified: all 256 inputs"), "{engine}: {s}");
        assert!(s.contains(&format!("engine: {engine}")), "{engine}: {s}");
    }
    let default = run(&["verify", "--network", "mux-merger", "--n", "8"]);
    assert!(default.status.success());
    assert!(stdout(&default).contains("engine: compiled"));
}

#[test]
fn engine_rejects_unknown_value() {
    let out = run(&[
        "verify",
        "--network",
        "prefix",
        "--n",
        "8",
        "--engine",
        "warp",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--engine"), "{err}");
    // The error names the menu, not just the rejection.
    assert!(err.contains("interp") && err.contains("compiled"), "{err}");
}

#[test]
fn engine_parse_is_case_insensitive() {
    for engine in ["INTERP", "Compiled", "interpreter", "COMPILE"] {
        let out = run(&[
            "verify",
            "--network",
            "mux-merger",
            "--n",
            "4",
            "--engine",
            engine,
        ]);
        assert!(out.status.success(), "{engine}");
    }
}

#[test]
fn opt_level_and_passes_steer_verify() {
    for level in ["0", "1", "2", "O2", "o1"] {
        let out = run(&[
            "verify",
            "--network",
            "prefix",
            "--n",
            "8",
            "--opt-level",
            level,
        ]);
        assert!(out.status.success(), "--opt-level {level}");
        assert!(stdout(&out).contains("verified: all 256 inputs"));
    }
    for passes in ["none", "cse,dce", "CSE, Const-Prop", "mask-reuse"] {
        let out = run(&[
            "verify",
            "--network",
            "prefix",
            "--n",
            "8",
            "--passes",
            passes,
        ]);
        assert!(out.status.success(), "--passes {passes}");
        assert!(stdout(&out).contains("verified: all 256 inputs"));
    }
}

#[test]
fn opt_level_and_passes_reject_unknown_values_with_menus() {
    let out = run(&[
        "verify",
        "--network",
        "prefix",
        "--n",
        "8",
        "--opt-level",
        "9",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--opt-level") && err.contains("0, 1, 2"),
        "{err}"
    );

    let out = run(&[
        "verify",
        "--network",
        "prefix",
        "--n",
        "8",
        "--passes",
        "cse,warp",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--passes") && err.contains("\"warp\""),
        "{err}"
    );
    assert!(
        err.contains("const-prop") && err.contains("mask-reuse"),
        "{err}"
    );
}

#[test]
fn inspect_reports_pass_stats() {
    let out = run(&["inspect", "--network", "prefix", "--n", "16"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("compiled tape"), "{s}");
    for pass in ["const-prologue", "const-prop", "cse", "dce", "mask-reuse"] {
        assert!(s.contains(pass), "missing {pass} row: {s}");
    }
    assert!(s.contains("slots"), "{s}");

    // O0 compiles without any optional pass rows.
    let o0 = run(&[
        "inspect",
        "--network",
        "prefix",
        "--n",
        "16",
        "--opt-level",
        "0",
    ]);
    assert!(o0.status.success());
    let s = stdout(&o0);
    assert!(s.contains("passes: -"), "{s}");
    assert!(!s.contains("cse"), "{s}");
}

#[test]
fn harden_duplicate_prices_the_trade_in_the_summary() {
    let dir = std::env::temp_dir().join("absort_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("faults-dup-{}.json", std::process::id()));
    let out = run(&[
        "--network",
        "mux-merger",
        "--faults",
        "--n",
        "4",
        "--harden-duplicate",
        "--faults-out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = stdout(&out);
    assert!(s.contains("hardening: base cost"), "{s}");
    assert!(s.contains("overhead"), "{s}");
    assert!(s.contains("concurrent coverage"), "{s}");

    // The report's cost columns reflect the doubled core.
    let text = std::fs::read_to_string(&path).expect("report file written");
    let doc = absort_telemetry::json::parse(&text).expect("valid JSON");
    let report = doc.get("faults").unwrap_or(&doc);
    let net = &report
        .get("networks")
        .and_then(absort_telemetry::json::Value::as_arr)
        .expect("networks")[0];
    let base = net
        .get("base_cost")
        .and_then(absort_telemetry::json::Value::as_i64)
        .unwrap();
    let hardened = net
        .get("hardened_cost")
        .and_then(absort_telemetry::json::Value::as_i64)
        .unwrap();
    assert!(
        base > 0 && hardened >= 2 * base,
        "base={base} hardened={hardened}"
    );
    std::fs::remove_file(&path).ok();

    // And like every campaign tuner, it requires --faults.
    let out = run(&["--network", "prefix", "--harden-duplicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("requires --faults"), "{err}");
}

#[test]
fn faults_campaign_accepts_engine() {
    let dir = std::env::temp_dir().join("absort_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    for engine in ["interp", "compiled"] {
        let path = dir.join(format!("faults-{engine}-{}.json", std::process::id()));
        let out = run(&[
            "--network",
            "prefix",
            "--faults",
            "--n",
            "4",
            "--engine",
            engine,
            "--faults-out",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{engine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let s = stdout(&out);
        assert!(s.contains(&format!("{engine} engine")), "{engine}: {s}");
        assert!(s.contains("permanent-fault detection rate: 1.000"), "{s}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn inspect_prints_profile() {
    let out = run(&["inspect", "--network", "prefix", "--n", "64"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("depth:"), "{s}");
    assert!(
        s.contains("prefix_sorter"),
        "hardware profile expected: {s}"
    );

    let fish = run(&["inspect", "--network", "fish", "--n", "1024"]);
    assert!(fish.status.success());
    assert!(stdout(&fish).contains("pipelined"));
}

/// `inspect --profile` runs the sampled tape profiler and prints the
/// hot-op table; without the `profile` feature it refuses loudly
/// instead of silently skipping what was asked for.
#[test]
fn inspect_profile_prints_hot_op_table() {
    let out = run(&["inspect", "--network", "prefix", "--n", "64", "--profile"]);
    let err = String::from_utf8_lossy(&out.stderr);
    if err.contains("--features profile") {
        assert_eq!(out.status.code(), Some(2), "{err}");
        return;
    }
    assert!(out.status.success(), "{err}");
    let s = stdout(&out);
    assert!(s.contains("tape profile ("), "{s}");
    assert!(s.contains("hottest levels"), "{s}");
    // The mux-based networks are switch/compare dominated; both kinds
    // must show up with execution counts in the table.
    assert!(s.contains("switch2"), "{s}");
    assert!(s.contains("bitcompare"), "{s}");
}

#[test]
fn profile_flag_rejected_outside_inspect() {
    let out = run(&["verify", "--network", "prefix", "--n", "8", "--profile"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--profile applies to the inspect command only"),
        "{err}"
    );
}

#[test]
fn save_and_eval_roundtrip() {
    let saved = run(&["save", "--network", "mux-merger", "--n", "8"]);
    assert!(saved.status.success());
    let dir = std::env::temp_dir().join("absort_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("net8.txt");
    std::fs::write(&path, &saved.stdout).unwrap();

    let evald = run(&["eval", path.to_str().unwrap(), "01101001"]);
    assert!(evald.status.success());
    assert!(stdout(&evald).contains("00001111"), "{}", stdout(&evald));

    let wrong_len = run(&["eval", path.to_str().unwrap(), "0110"]);
    assert!(!wrong_len.status.success());
}

#[test]
fn dot_emits_graphviz() {
    let out = run(&["dot", "--network", "mux-merger", "--n", "8"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.starts_with("digraph"));
    assert!(s.contains("CMP"));
}

#[test]
fn usage_on_nonsense() {
    assert!(!run(&[]).status.success());
    assert!(!run(&["frobnicate"]).status.success());
    assert!(!run(&["sort", "--network", "quantum", "0101"])
        .status
        .success());
}

#[test]
fn faults_campaign_writes_report() {
    let dir = std::env::temp_dir().join("absort_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("faults-{}.json", std::process::id()));
    let out = run(&[
        "--network",
        "prefix",
        "--faults",
        "--n",
        "4",
        "--faults-out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = stdout(&out);
    assert!(s.contains("permanent-fault detection rate: 1.000"), "{s}");
    assert!(s.contains("exhaustive tier"), "{s}");

    let text = std::fs::read_to_string(&path).expect("report file written");
    let doc = absort_telemetry::json::parse(&text).expect("report is valid JSON");
    // Telemetry builds nest the report as a manifest section; plain
    // builds write it at top level. Accept either shape.
    let report = doc.get("faults").unwrap_or(&doc);
    assert_eq!(
        report
            .get("schema")
            .and_then(absort_telemetry::json::Value::as_str),
        Some("absort-faults/v3")
    );
    assert_eq!(
        report
            .get("truncated")
            .and_then(absort_telemetry::json::Value::as_bool),
        Some(false)
    );
    let networks = report
        .get("networks")
        .and_then(absort_telemetry::json::Value::as_arr)
        .expect("networks array");
    assert!(!networks.is_empty());
    for net in networks {
        assert!(net
            .get("fault_set_size")
            .and_then(absort_telemetry::json::Value::as_i64)
            .is_some());
        assert!(net
            .get("concurrent_detection_rate")
            .and_then(absort_telemetry::json::Value::as_f64)
            .is_some());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn faults_multi_and_clocked_flags_extend_the_campaign() {
    let dir = std::env::temp_dir().join("absort_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("faults-multi-{}.json", std::process::id()));
    let out = run(&[
        "--network",
        "prefix",
        "--faults",
        "--n",
        "4",
        "--multi",
        "2",
        "--clocked",
        "--tenants",
        "3",
        "--faults-out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = stdout(&out);
    assert!(s.contains("2-fault sets"), "{s}");
    assert!(s.contains("mixed"), "{s}");
    assert!(s.contains("fish-clocked"), "{s}");
    assert!(s.contains("concurrent"), "{s}");

    let text = std::fs::read_to_string(&path).expect("report file written");
    let doc = absort_telemetry::json::parse(&text).expect("report is valid JSON");
    let report = doc.get("faults").unwrap_or(&doc);
    let networks = report
        .get("networks")
        .and_then(absort_telemetry::json::Value::as_arr)
        .expect("networks array");
    let sizes: Vec<i64> = networks
        .iter()
        .filter_map(|n| {
            n.get("fault_set_size")
                .and_then(absort_telemetry::json::Value::as_i64)
        })
        .collect();
    assert_eq!(
        sizes,
        vec![1, 2, 1, 2],
        "k=1 unit, k=2 unit, clocked unit, clocked 2-fault sets"
    );
    // The v3 recovery split rides on every clocked unit.
    for net in networks {
        let name = net
            .get("network")
            .and_then(absort_telemetry::json::Value::as_str)
            .unwrap_or("");
        if name == "fish-clocked" {
            for field in ["recovered", "fail_stop"] {
                assert!(
                    net.get(field)
                        .and_then(absort_telemetry::json::Value::as_i64)
                        .is_some(),
                    "clocked unit missing {field}"
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tenants_flag_requires_clocked() {
    let out = run(&["--network", "prefix", "--faults", "--tenants", "4"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--tenants requires --clocked"), "{err}");
}

#[test]
fn faults_timeout_truncates_and_resume_finishes() {
    let dir = std::env::temp_dir().join(format!("absort_cli_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("checkpoint.json");
    let first = dir.join("first.json");
    let full = dir.join("full.json");
    let base = [
        "--network",
        "prefix",
        "--faults",
        "--n",
        "4",
        "--multi",
        "2",
    ];

    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--faults-timeout-secs",
        "0",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--faults-out",
        first.to_str().unwrap(),
    ]);
    let out = run(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("truncated"), "{}", stdout(&out));
    assert!(ckpt.exists(), "checkpoint must be written");

    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--resume",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--faults-out",
        full.to_str().unwrap(),
    ]);
    let out = run(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!stdout(&out).contains("truncated"), "{}", stdout(&out));

    let text = std::fs::read_to_string(&full).unwrap();
    let doc = absort_telemetry::json::parse(&text).unwrap();
    let report = doc.get("faults").unwrap_or(&doc);
    assert_eq!(
        report
            .get("truncated")
            .and_then(absort_telemetry::json::Value::as_bool),
        Some(false)
    );
    assert_eq!(
        report
            .get("networks")
            .and_then(absort_telemetry::json::Value::as_arr)
            .map(|a| a.len()),
        Some(2)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_flags_require_faults() {
    for flags in [
        vec!["--network", "prefix", "--multi", "2"],
        vec!["--network", "prefix", "--clocked"],
        vec!["--network", "prefix", "--tenants", "2"],
        vec!["--network", "prefix", "--resume"],
    ] {
        let out = run(&flags);
        assert_eq!(out.status.code(), Some(2), "{flags:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("requires --faults"), "{flags:?}: {err}");
    }
}

#[test]
fn faults_out_without_faults_is_an_error() {
    let out = run(&["--network", "prefix", "--faults-out", "somewhere.json"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--faults-out"), "{err}");
    assert!(err.contains("requires --faults"), "{err}");
}

#[test]
fn faults_flags_are_rejected_inside_subcommands() {
    let out = run(&["inspect", "--network", "prefix", "--n", "8", "--faults"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("standalone"), "{err}");
}
