//! Differential coverage of the post-regalloc `fuse` pass and its
//! provenance contract.
//!
//! * exhaustive fused-vs-unfused tape equivalence at `n ≤ 8` for every
//!   catalog network × opt level (with and without parallel-safe slot
//!   allocation);
//! * fused tapes carry no standalone mask-reuse ops (the `absort-parwalk`
//!   precondition) and actually shrink the hot tapes;
//! * fault-campaign reports are bit-identical between fused and unfused
//!   sweeps (fused sites recompile instead of mispatching);
//! * CSE merge-site provenance: the Dead / patched / recompiled split,
//!   including the `FoldHint::Equivalent` fast path for merged comps
//!   nothing observes.

use absort::analysis::faults::{self as fc, fish_k, NetworkSel};
use absort::circuit::compile::{MicroOp, MutantTape, REUSE_MASKS};
use absort::circuit::mutate::{self, Fault};
use absort::circuit::{
    Builder, Circuit, CompileOptions, CompiledEvaluator, Engine, Evaluator, GateOp, OptLevel,
    PassName,
};
use absort::core::{fish, muxmerge, nonadaptive, prefix};

fn catalog(n: usize) -> Vec<(&'static str, Circuit)> {
    let mut v = vec![
        ("prefix", prefix::build(n)),
        ("mux-merger", muxmerge::build(n)),
        ("batcher", nonadaptive::build(n)),
    ];
    if n >= 4 {
        v.push((
            "fish",
            fish::circuits::build_combinational_kmerger(n, fish_k(n)),
        ));
    }
    v
}

fn pack_range(n: usize, base: u64, count: usize) -> Vec<u64> {
    let mut packed = vec![0u64; n];
    for lane in 0..count {
        let x = base + lane as u64;
        for (i, p) in packed.iter_mut().enumerate() {
            *p |= (x >> i & 1) << lane;
        }
    }
    packed
}

/// Exhaustive equivalence: fused (and fused + par-safe) tapes agree with
/// the interpreter on every input vector, for every catalog network at
/// every opt level, on both the wide and the scalar dispatch flavours.
#[test]
fn fused_tapes_match_interpreter_exhaustively() {
    for n in [2usize, 4, 8] {
        for (name, circuit) in catalog(n) {
            let mut interp: Evaluator<'_, u64> = Evaluator::new(&circuit);
            for level in OptLevel::ALL {
                for par_safe in [false, true] {
                    let mut opts = CompileOptions::for_level(level).with_fuse();
                    opts.par_safe = par_safe;
                    opts.verify = true;
                    let compiled = circuit.compile_with(&opts);
                    let mut comp: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&compiled);
                    let mut scalar: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(&compiled);
                    let total = 1u64 << n;
                    let mut v = 0u64;
                    while v < total {
                        let lanes = (total - v).min(64) as usize;
                        let packed = pack_range(n, v, lanes);
                        let want = interp.run(&packed);
                        let got = comp.run(&packed);
                        assert_eq!(
                            got, want,
                            "{name} n={n} O{level} par_safe={par_safe} vectors at {v}"
                        );
                        v += lanes as u64;
                    }
                    // Scalar dispatch decodes 4×4 switches to indexed
                    // moves — sweep it too.
                    for x in 0..total.min(64) {
                        let bits: Vec<bool> = (0..n).map(|i| x >> i & 1 == 1).collect();
                        assert_eq!(
                            scalar.run(&bits),
                            circuit.eval(&bits),
                            "{name} n={n} O{level} scalar input {x:b}"
                        );
                    }
                }
            }
        }
    }
}

/// Fused tapes must (a) record a `fuse` pass-stats row, (b) shrink the
/// dispatch count on the switch-heavy catalog entries, and (c) contain
/// no standalone mask-reuse ops — every reuse run either became an
/// `S4Chain` or had its flag cleared.
#[test]
fn fusion_compresses_and_normalizes_the_tape() {
    let opts = CompileOptions::default().with_fuse();
    let mut fused_somewhere = false;
    for (name, circuit) in catalog(8) {
        let cc = circuit.compile_with(&opts);
        let row = cc
            .pass_stats()
            .iter()
            .find(|s| s.name == "fuse")
            .unwrap_or_else(|| panic!("{name}: no fuse row in pass stats"));
        assert!(
            row.ops_after <= row.ops_before,
            "{name}: fuse grew the tape"
        );
        if row.ops_after < row.ops_before {
            fused_somewhere = true;
        }
        for (i, op) in cc.tape().iter().enumerate() {
            if let MicroOp::Switch4 { pidx, .. } = op {
                assert_eq!(
                    pidx & REUSE_MASKS,
                    0,
                    "{name}: standalone mask-reuse op survived fusion at {i}"
                );
            }
        }
    }
    assert!(fused_somewhere, "fuse pass never fused anything at n=8");

    // The mux-merger tape is one long run of 4×4-switch columns; fusion
    // must collapse a substantial fraction of its dispatches.
    let cc = muxmerge::build(8).compile_with(&opts);
    let row = cc.pass_stats().iter().find(|s| s.name == "fuse").unwrap();
    assert!(
        row.ops_after * 10 <= row.ops_before * 9,
        "mux-merger fusion too weak: {} -> {}",
        row.ops_before,
        row.ops_after
    );
    assert!(
        !cc.s4_chains().is_empty(),
        "mux-merger grew no switch chains"
    );
}

/// The acceptance pin: fault-campaign reports are bit-identical between
/// unfused and fused (and fused + par-safe) sweeps. Fused sites lose
/// in-place patching and must transparently recompile.
#[test]
fn campaign_reports_identical_fused_vs_unfused() {
    let nets = [NetworkSel::Prefix, NetworkSel::MuxMerger, NetworkSel::Fish];
    let report_with = |opt: CompileOptions| {
        let cfg = fc::CampaignConfig {
            n: 4,
            engine: Engine::Compiled,
            opt,
            ..Default::default()
        };
        fc::run_campaign(&nets, &cfg).to_json().to_pretty()
    };
    let base = report_with(CompileOptions::default());
    assert_eq!(
        base,
        report_with(CompileOptions::default().with_fuse()),
        "fused campaign report diverged"
    );
    assert_eq!(
        base,
        report_with(CompileOptions::default().with_fuse().with_par_safe()),
        "fused + par-safe campaign report diverged"
    );
}

/// CSE provenance split, pinned on a crafted netlist:
///
/// * comps 0 and 1 — the merge survivor (shared, stands for two
///   components at once) and its observed duplicate: the tape holds no
///   faithful single-component image, mutants must recompile
///   (`Unsupported`);
/// * comp 2 — merged duplicate nothing observes → `FoldHint::Equivalent`
///   proves every mutant output-equivalent (`Dead`), no recompile;
/// * comps 3 and 4 — live downstream gates → patched in place.
#[test]
fn cse_merge_sites_pin_the_dead_patched_recompiled_split() {
    let mut b = Builder::new();
    let ins = b.input_bus(3);
    let g1 = b.gate(GateOp::And, ins[0], ins[1]); // comp 0 (survivor, shared)
    let g2 = b.gate(GateOp::And, ins[0], ins[1]); // comp 1 (dup, observed)
    let _g3 = b.gate(GateOp::And, ins[0], ins[1]); // comp 2 (dup, unobserved)
    let x = b.gate(GateOp::Xor, g1, g2); // comp 3
    let y = b.gate(GateOp::Or, g2, ins[2]); // comp 4
    b.outputs(&[x, y]);
    let c = b.finish();

    // O2 minus the rewrite pass: after CSE merges g1/g2 into one value
    // v, the ruleset would fold comp 3 (v ^ v -> false) and obscure the
    // CSE split this test pins; the rewrite interaction is asserted
    // separately below.
    let mut opts = CompileOptions::default();
    opts.passes = opts.passes.without(PassName::Rewrite);
    let mut cc = c.compile_with(&opts);
    for comp in [0usize, 1] {
        assert!(
            matches!(
                cc.mutant_tape(comp, Fault::InvertBehaviour),
                MutantTape::Unsupported
            ),
            "comp {comp}: merged sites must force the recompile fallback"
        );
    }
    assert!(
        matches!(cc.mutant_tape(2, Fault::InvertBehaviour), MutantTape::Dead),
        "unobserved merged duplicate must score Dead without recompiling"
    );
    for comp in [3usize, 4] {
        assert!(
            matches!(
                cc.mutant_tape(comp, Fault::InvertBehaviour),
                MutantTape::Patched(_)
            ),
            "comp {comp}: live gate must stay patchable in place"
        );
    }

    // With the rewrite pass back on (full default O2), the ruleset
    // folds comp 3's v ^ v to a constant; its provenance marks the
    // site Rewritten, so mutants fall back to the recompile path
    // rather than patching a tape that no longer holds the gate.
    let mut cc_o2 = c.compile();
    assert!(
        matches!(
            cc_o2.mutant_tape(3, Fault::InvertBehaviour),
            MutantTape::Unsupported | MutantTape::Dead
        ),
        "comp 3: rewritten x^x site must not claim an in-place patch"
    );

    // Semantic backstop for the Dead verdict: the actual netlist mutant
    // of comp 2 is output-equivalent to the base on every input.
    let mutant = mutate::apply(&c, 2, Fault::InvertBehaviour).expect("fault applies");
    for v in 0..1u64 << 3 {
        let bits: Vec<bool> = (0..3).map(|i| v >> i & 1 == 1).collect();
        assert_eq!(mutant.eval(&bits), c.eval(&bits), "input {v:03b}");
    }

    // And the recompile verdict for comp 1 is not spurious: its mutant
    // really does change an output somewhere.
    let mutant1 = mutate::apply(&c, 1, Fault::InvertBehaviour).expect("fault applies");
    assert!(
        (0..1u64 << 3).any(|v| {
            let bits: Vec<bool> = (0..3).map(|i| v >> i & 1 == 1).collect();
            mutant1.eval(&bits) != c.eval(&bits)
        }),
        "comp 1 mutant should be observable"
    );
}
