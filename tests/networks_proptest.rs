//! Property-based tests of the interconnection-network layer: random
//! sparse loads, random word batches, random permutations — across all
//! sorter backends.

use absort::core::sorter::SorterKind;
use absort::networks::{
    benes, concentrator::Concentrator, permuter::RadixPermuter, sparse_router::SparseRouter,
    word_sorter::WordSorter,
};
use proptest::prelude::*;

fn kinds() -> [SorterKind; 3] {
    [
        SorterKind::Prefix,
        SorterKind::MuxMerger,
        SorterKind::Fish { k: None },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concentration conserves packets at every load for every backend.
    #[test]
    fn concentration_conserves_packets(
        a in 3u32..=7,
        mask in any::<u64>(),
        kind_ix in 0usize..3,
    ) {
        let n = 1usize << a;
        let kind = kinds()[kind_ix];
        let conc = Concentrator::new(kind, n, n);
        let requests: Vec<Option<u32>> = (0..n)
            .map(|i| (mask >> (i % 64) & 1 == 1).then_some(i as u32))
            .collect();
        let active = requests.iter().filter(|r| r.is_some()).count();
        let out = conc.concentrate(&requests).unwrap();
        let mut got: Vec<u32> = out.iter().take(active).map(|o| o.unwrap()).collect();
        prop_assert!(out[active..].iter().all(Option::is_none));
        got.sort_unstable();
        let mut want: Vec<u32> = requests.iter().flatten().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The radix permuter and Beneš agree on random permutations.
    #[test]
    fn permuter_agrees_with_benes(a in 2u32..=7, seed in any::<u64>(), kind_ix in 0usize..3) {
        use rand::prelude::*;
        let n = 1usize << a;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let payload: Vec<u32> = (0..n as u32).collect();
        let via_benes = benes::permute(&perm, &payload).unwrap();
        let rp = RadixPermuter::new(kinds()[kind_ix], n);
        let packets: Vec<(usize, u32)> = perm.iter().zip(&payload).map(|(&d, &p)| (d, p)).collect();
        prop_assert_eq!(rp.route(&packets).unwrap(), via_benes);
    }

    /// Word sorting matches std's stable sort for arbitrary key multisets.
    #[test]
    fn word_sorter_matches_std(a in 2u32..=6, w in 1u32..=12, seed in any::<u64>()) {
        use rand::prelude::*;
        let n = 1usize << a;
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<(u64, usize)> = (0..n)
            .map(|i| (rng.gen::<u64>() & ((1 << w) - 1), i))
            .collect();
        let ws = WordSorter::new(SorterKind::MuxMerger, n, w);
        let out = ws.sort(&items).unwrap();
        let mut expect = items.clone();
        expect.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(out, expect);
    }

    /// Sparse routing delivers exactly the offered packets at their
    /// destinations, for random loads and destination assignments.
    #[test]
    fn sparse_routing_is_exact(a in 3u32..=7, seed in any::<u64>(), kind_ix in 0usize..3) {
        use rand::prelude::*;
        let n = 1usize << a;
        let mut rng = StdRng::seed_from_u64(seed);
        let active = rng.gen_range(0..=n);
        let mut slots: Vec<usize> = (0..n).collect();
        slots.shuffle(&mut rng);
        let mut dests: Vec<usize> = (0..n).collect();
        dests.shuffle(&mut rng);
        let mut inputs: Vec<Option<(usize, u64)>> = vec![None; n];
        for i in 0..active {
            inputs[slots[i]] = Some((dests[i], rng.gen()));
        }
        let router = SparseRouter::new(kinds()[kind_ix], n);
        let out = router.route(&inputs).unwrap();
        for p in inputs.iter().flatten() {
            prop_assert_eq!(out[p.0], Some(p.1));
        }
        prop_assert_eq!(out.iter().filter(|o| o.is_some()).count(), active);
    }

    /// Beneš realizes the inverse permutation when routed with it.
    #[test]
    fn benes_inverse_roundtrip(a in 1u32..=8, seed in any::<u64>()) {
        use rand::prelude::*;
        let n = 1usize << a;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let mut inv = vec![0usize; n];
        for (i, &d) in perm.iter().enumerate() {
            inv[d] = i;
        }
        let payload: Vec<u32> = (0..n as u32).collect();
        let there = benes::permute(&perm, &payload).unwrap();
        let back = benes::permute(&inv, &there).unwrap();
        prop_assert_eq!(back, payload);
    }
}
