//! Smoke tests of every experiment driver: each table/figure regenerates
//! and carries the paper's qualitative shape (who wins, by what order,
//! where crossovers fall).

use absort::analysis::{concentrators, crossover, sweeps, table2, traces};

#[test]
fn e5_prefix_sweep_regenerates() {
    let pts = sweeps::prefix_sweep(12, 10);
    assert_eq!(pts.len(), 11);
    let rendered = sweeps::render_sorter_sweep(&pts, "3n lg n");
    assert!(rendered.contains("4096"));
    // cost ratio to n lg n converges to ~3 from above/below within ±1
    let last = pts
        .iter()
        .rev()
        .find(|p| p.measured_cost.is_some())
        .unwrap();
    let ratio =
        last.measured_cost.unwrap() as f64 / (last.n as f64 * (last.n.trailing_zeros() as f64));
    assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
}

#[test]
fn e6_muxmerge_sweep_regenerates() {
    let pts = sweeps::muxmerge_sweep(12, 10);
    for p in &pts {
        if let Some(mc) = p.measured_cost {
            assert_eq!(mc, p.formula_cost, "n={}", p.n);
        }
    }
    let last = pts.last().unwrap();
    let ratio = last.formula_cost as f64 / (last.n as f64 * 12.0);
    assert!((3.0..=4.0).contains(&ratio), "→ 4n lg n, got ratio {ratio}");
}

#[test]
fn e8_fish_sweep_regenerates() {
    let pts = sweeps::fish_sweep(&[10, 12, 14, 16, 18, 20]);
    // O(n) cost: per-input cost bounded and non-increasing trend overall
    for p in &pts {
        assert!(p.cost_per_input < 18.0, "n={}", p.n);
        assert!(p.cost_exact <= p.cost_paper, "exact must be within eq. 17");
        assert!(p.time_pipelined < p.time_serial);
    }
    let s = sweeps::render_fish_sweep(&pts);
    assert!(s.lines().count() >= 8);
}

#[test]
fn headline_cost_comparison_figure() {
    let t = sweeps::cost_comparison(&[10, 12, 14, 16, 18, 20]);
    let csv = t.to_csv();
    assert!(csv.lines().count() == 7);
    assert!(csv.contains("2^20"));
}

#[test]
fn e12_table2_regenerates_with_claims() {
    for a in [12u32, 16, 20] {
        table2::verify_claims(1usize << a).unwrap();
    }
}

#[test]
fn e14_concentrator_comparison_regenerates() {
    let s = concentrators::render(1 << 14);
    assert!(s.contains("expander"));
    assert!(s.contains("fish"));
    let rows = concentrators::rows(1 << 14);
    let fish = rows.iter().find(|r| r.name.contains("fish")).unwrap();
    let prefix = rows.iter().find(|r| r.name.contains("prefix")).unwrap();
    assert!(fish.cost < prefix.cost, "O(n) beats O(n lg n)");
}

#[test]
fn e15_crossover_regenerates() {
    let m = crossover::matrix(10_000);
    assert_eq!(m.len(), 12);
    // the headline: for every AKS model, the fish sorter is never beaten
    // on cost
    for c in m.iter().filter(|c| c.rival.contains("fish")) {
        assert!(c.aks_wins_at_exp.is_none(), "{}", c.model_label);
    }
    let s = crossover::render(10_000);
    assert!(s.contains("never"));
    for (name, value) in crossover::constants_audit() {
        assert!(value <= 17.5, "{name}: {value}");
    }
}

#[test]
fn e9_e10_traces_regenerate() {
    let f8 = traces::fig8_trace();
    let f9 = traces::fig9_trace();
    assert!(f8.contains("Fig. 8"));
    assert!(f9.contains("Fig. 9"));
    // figure 9's input is figure 8's first-level clean half
    assert!(f8.contains("11/00/11/11"));
    assert!(f9.contains("input (clean 4-sorted): 11/00/11/11"));
}
