//! Golden-file pin for the ahead-of-time Rust emitter.
//!
//! The committed sources under `crates/bench/emitted/` are what `absort
//! emit --rust --network <x> --n <k>` prints for the three combinational
//! catalog networks at n = 8..64. Two properties are pinned:
//!
//! 1. **Byte-for-byte determinism** — recompiling the same network and
//!    re-emitting reproduces the committed file exactly. Regenerate with
//!    `BLESS=1 cargo test --test emitted_golden` after an intentional
//!    compiler change.
//! 2. **Compiled equivalence** — the goldens are `include!`d below, so
//!    `cargo test` literally compiles half a megabyte of emitted
//!    straight-line code and checks it against the interpreter:
//!    exhaustively at n = 8 and 16, on dense random samples above.
//!
//! The same files feed `bench_eval`'s `emitted_scalar_ms` column.

use absort::analysis::faults::fish_k;
use absort::circuit::emit::emit_rust;
use absort::circuit::{Circuit, CompileOptions};
use absort::core::{fish, muxmerge, prefix};

mod emitted {
    include!("../crates/bench/emitted/sort_prefix_8.rs");
    include!("../crates/bench/emitted/sort_prefix_16.rs");
    include!("../crates/bench/emitted/sort_prefix_32.rs");
    include!("../crates/bench/emitted/sort_prefix_64.rs");
    include!("../crates/bench/emitted/sort_mux_merger_8.rs");
    include!("../crates/bench/emitted/sort_mux_merger_16.rs");
    include!("../crates/bench/emitted/sort_mux_merger_32.rs");
    include!("../crates/bench/emitted/sort_mux_merger_64.rs");
    include!("../crates/bench/emitted/sort_fish_8.rs");
    include!("../crates/bench/emitted/sort_fish_16.rs");
    include!("../crates/bench/emitted/sort_fish_32.rs");
    include!("../crates/bench/emitted/sort_fish_64.rs");
}

fn build(network: &str, n: usize) -> Circuit {
    match network {
        "prefix" => prefix::build(n),
        "mux_merger" => muxmerge::build(n),
        "fish" => fish::circuits::build_combinational_kmerger(n, fish_k(n)),
        _ => unreachable!(),
    }
}

fn golden_path(network: &str, n: usize) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../crates/bench/emitted")
        .join(format!("sort_{network}_{n}.rs"))
}

const GOLDENS: [(&str, usize, &str); 12] = [
    (
        "prefix",
        8,
        include_str!("../crates/bench/emitted/sort_prefix_8.rs"),
    ),
    (
        "prefix",
        16,
        include_str!("../crates/bench/emitted/sort_prefix_16.rs"),
    ),
    (
        "prefix",
        32,
        include_str!("../crates/bench/emitted/sort_prefix_32.rs"),
    ),
    (
        "prefix",
        64,
        include_str!("../crates/bench/emitted/sort_prefix_64.rs"),
    ),
    (
        "mux_merger",
        8,
        include_str!("../crates/bench/emitted/sort_mux_merger_8.rs"),
    ),
    (
        "mux_merger",
        16,
        include_str!("../crates/bench/emitted/sort_mux_merger_16.rs"),
    ),
    (
        "mux_merger",
        32,
        include_str!("../crates/bench/emitted/sort_mux_merger_32.rs"),
    ),
    (
        "mux_merger",
        64,
        include_str!("../crates/bench/emitted/sort_mux_merger_64.rs"),
    ),
    (
        "fish",
        8,
        include_str!("../crates/bench/emitted/sort_fish_8.rs"),
    ),
    (
        "fish",
        16,
        include_str!("../crates/bench/emitted/sort_fish_16.rs"),
    ),
    (
        "fish",
        32,
        include_str!("../crates/bench/emitted/sort_fish_32.rs"),
    ),
    (
        "fish",
        64,
        include_str!("../crates/bench/emitted/sort_fish_64.rs"),
    ),
];

/// Byte-for-byte: re-emitting each network reproduces the committed
/// golden. `BLESS=1` rewrites the files instead of failing.
#[test]
fn emitted_sources_match_committed_goldens() {
    let bless = std::env::var_os("BLESS").is_some();
    for (network, n, golden) in GOLDENS {
        let c = build(network, n);
        let cc = c.compile_with(&CompileOptions::default());
        let src = emit_rust(&cc, &format!("sort_{network}_{n}"), false);
        if bless {
            std::fs::write(golden_path(network, n), &src).expect("write golden");
        } else {
            assert_eq!(
                src, golden,
                "{network} n={n}: emitted source drifted from \
                 crates/bench/emitted/sort_{network}_{n}.rs — rerun with BLESS=1 \
                 if the compiler change is intentional"
            );
        }
    }
}

fn check<const I: usize, const O: usize>(
    network: &str,
    f: fn(&[bool; I]) -> [bool; O],
    exhaustive: bool,
) {
    let c = build(network, I);
    let sweep: Box<dyn Iterator<Item = u64>> = if exhaustive {
        Box::new(0..1u64 << I)
    } else {
        // splitmix64 stream — dense deterministic sampling where 2^n is
        // out of reach.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        Box::new((0..4096).map(move |_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }))
    };
    for v in sweep {
        let mut input = [false; I];
        for (i, b) in input.iter_mut().enumerate() {
            *b = v >> (i % 64) & 1 == 1;
        }
        let got = f(&input);
        let want = c.eval(&input);
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "{network} n={I} input {v:#x}"
        );
    }
}

/// The committed goldens, compiled by rustc as part of this test binary,
/// agree with the interpreter on every input (n ≤ 16) or a dense sample.
#[test]
fn emitted_functions_are_equivalent_to_the_interpreter() {
    check::<8, 8>("prefix", emitted::sort_prefix_8, true);
    check::<16, 16>("prefix", emitted::sort_prefix_16, true);
    check::<32, 32>("prefix", emitted::sort_prefix_32, false);
    check::<64, 64>("prefix", emitted::sort_prefix_64, false);
    check::<8, 8>("mux_merger", emitted::sort_mux_merger_8, true);
    check::<16, 16>("mux_merger", emitted::sort_mux_merger_16, true);
    check::<32, 32>("mux_merger", emitted::sort_mux_merger_32, false);
    check::<64, 64>("mux_merger", emitted::sort_mux_merger_64, false);
    check::<8, 8>("fish", emitted::sort_fish_8, true);
    check::<16, 16>("fish", emitted::sort_fish_16, true);
    check::<32, 32>("fish", emitted::sort_fish_32, false);
    check::<64, 64>("fish", emitted::sort_fish_64, false);
}
