//! The paper's proofs, executed case by case.
//!
//! The theorem *statements* are verified exhaustively elsewhere; here the
//! internal case analyses of the proofs of Theorems 1 and 2 are checked
//! — i.e. not just "the conclusion holds" but "the conclusion holds for
//! the reason the paper gives, in the case the paper assigns it to".

use absort::core::lang::{self, balanced_stage, in_a_n, is_clean, show};

/// Decomposes an `A_n` member into the (k_a, k_b, k_c) part sizes of
/// Definition 1: a leading 00/11 run, a middle 01/10 run, a trailing
/// 00/11 run. Returns one valid decomposition.
fn decompose(z: &[bool]) -> (usize, usize, usize) {
    assert!(in_a_n(z));
    let pairs: Vec<(bool, bool)> = z.chunks(2).map(|p| (p[0], p[1])).collect();
    let p = pairs.len();
    let mut i = 0;
    if let Some(&(a, b)) = pairs.first() {
        if a == b {
            while i < p && pairs[i] == (a, b) {
                i += 1;
            }
        }
    }
    let mut j = i;
    if let Some(&(a, b)) = pairs.get(j) {
        if a != b {
            while j < p && pairs[j] == (a, b) {
                j += 1;
            }
        }
    }
    (2 * i, 2 * (j - i), 2 * (p - j))
}

/// Theorem 1's proof: with `n1, m1` the zero-counts of the sorted halves
/// X_U, X_L, the shuffle starts with `min(n1, m1)` 00-pairs, then
/// `|n1 − m1|` mixed pairs (10 if `n1 ≤ m1`, else 01), then 11-pairs.
#[test]
fn theorem1_proof_case_structure() {
    let half = 6;
    for n1 in 0..=half {
        for m1 in 0..=half {
            let xu: Vec<bool> = (0..half).map(|i| i >= n1).collect();
            let xl: Vec<bool> = (0..half).map(|i| i >= m1).collect();
            let mut cat = xu.clone();
            cat.extend_from_slice(&xl);
            let z = lang::shuffle(&cat);
            assert!(in_a_n(&z), "n1={n1} m1={m1}: {}", show(&z, 2));
            // check the predicted pair runs
            let zeros_pairs = n1.min(m1);
            let mixed = n1.max(m1) - zeros_pairs;
            for (t, pair) in z.chunks(2).enumerate() {
                let expect: (bool, bool) = if t < zeros_pairs {
                    (false, false)
                } else if t < zeros_pairs + mixed {
                    // paper: n1 <= m1 → 10-pairs, else 01-pairs
                    if n1 <= m1 {
                        (true, false)
                    } else {
                        (false, true)
                    }
                } else {
                    (true, true)
                };
                assert_eq!(
                    (pair[0], pair[1]),
                    expect,
                    "n1={n1} m1={m1} pair {t}: {}",
                    show(&z, 2)
                );
            }
        }
    }
}

/// Theorem 2's proof, case (1): k_b = 0 (no mixed part) — after the
/// balanced stage one half is clean (and in fact the input already was
/// two clean runs).
#[test]
fn theorem2_case_1_no_mixed_part() {
    for z in lang::all_a_n(12) {
        let (_, kb, _) = decompose(&z);
        if kb != 0 {
            continue;
        }
        let y = balanced_stage(&z);
        let (yu, yl) = y.split_at(6);
        assert!(
            is_clean(yu) || is_clean(yl),
            "case 1 must yield a clean half: {}",
            show(&z, 0)
        );
    }
}

/// Theorem 2's case structure, robust form.
///
/// The archival scan garbles the proof's sub-case statements (the exact
/// thresholds on `k_a, k_b, k_c` are partially illegible), and the
/// literal readings are falsifiable — e.g. `Z = 000010100000` has its
/// mixed part split evenly across the halves yet yields `Y_L = 110000`,
/// not "all 1's". What the *network* relies on — and what this test
/// nails down per case bucket — is the select rule: after the balanced
/// stage,
///
/// * `ones(Z) >= n/2` ⇒ the lower half is clean (all 1s) and the upper
///   half is in `A_{n/2}`;
/// * `ones(Z) <  n/2` ⇒ the upper half is clean (all 0s) and the lower
///   half is in `A_{n/2}`;
///
/// verified here for every `A_12` member, bucketed by the proof's case
/// structure so each bucket is demonstrably non-empty.
#[test]
fn theorem2_select_rule_holds_in_every_proof_case() {
    let n = 12;
    let mut buckets = [0u32; 4]; // kb=0 | mixed-upper | mixed-lower | straddle
    for z in lang::all_a_n(n) {
        let (ka, kb, _) = decompose(&z);
        let bucket = if kb == 0 {
            0
        } else if ka + kb <= n / 2 {
            1
        } else if ka >= n / 2 {
            2
        } else {
            3
        };
        buckets[bucket] += 1;
        let ones = z.iter().filter(|&&b| b).count();
        let y = balanced_stage(&z);
        let (yu, yl) = y.split_at(n / 2);
        if ones >= n / 2 {
            assert!(
                yl.iter().all(|&b| b),
                "bucket {bucket}: ones>=n/2 ⇒ Y_L all 1s: {}",
                show(&z, 0)
            );
            assert!(in_a_n(yu), "bucket {bucket}: Y_U in A_6: {}", show(&z, 0));
        } else {
            assert!(
                yu.iter().all(|&b| !b),
                "bucket {bucket}: ones<n/2 ⇒ Y_U all 0s: {}",
                show(&z, 0)
            );
            assert!(in_a_n(yl), "bucket {bucket}: Y_L in A_6: {}", show(&z, 0));
        }
    }
    assert!(
        buckets.iter().all(|&c| c > 0),
        "every proof case must occur: {buckets:?}"
    );
}

/// The documented counterexample to the literal sub-case reading: the
/// conclusion of Theorem 2 still holds (as it must), but the
/// "Y_L must be all 1's when the mixed part splits evenly" reading does
/// not — recording why the robust form above is the one we verify.
#[test]
fn theorem2_literal_subcase_reading_is_falsified() {
    let z = lang::bits("000010100000");
    assert!(in_a_n(&z));
    let (ka, kb, _) = decompose(&z);
    assert_eq!((ka, kb), (4, 4), "mixed part splits 2/2 across the halves");
    let y = balanced_stage(&z);
    let (yu, yl) = y.split_at(6);
    assert!(is_clean(yu), "upper half IS clean (all 0s)");
    assert!(!yl.iter().all(|&b| b), "lower half is NOT all 1s");
    assert!(
        in_a_n(yl),
        "…but it is in A_6, so Theorem 2's conclusion holds"
    );
}

/// Theorem 3's proof hinges on "if there are more 0's than 1's in X_U,
/// the uppermost element of X_q2 must be 0, X_q1 all 0's, X_q2 sorted" —
/// check that reading of the middle bits on every bisorted sequence.
#[test]
fn theorem3_proof_middle_bit_reading() {
    let n = 16;
    for x in lang::all_bisorted(n) {
        let q = n / 4;
        let xu = &x[..n / 2];
        let zeros_u = xu.iter().filter(|&&b| !b).count();
        let s1 = x[q];
        if zeros_u > n / 4 {
            assert!(
                !s1,
                "more 0s than quarter ⇒ top of Xq2 is 0: {}",
                show(&x, 4)
            );
            assert!(x[..q].iter().all(|&b| !b), "Xq1 all 0s");
            assert!(lang::is_sorted(&x[q..2 * q]), "Xq2 sorted");
        }
        if s1 {
            assert!(x[q..2 * q].iter().all(|&b| b), "s1=1 ⇒ Xq2 all 1s");
            assert!(lang::is_sorted(&x[..q]), "Xq1 sorted");
        }
    }
}
