//! Quickstart: sort binary sequences on all three adaptive networks,
//! both functionally and as real bit-level circuits, and print the
//! cost/depth ledger the paper derives.
//!
//! Run with: `cargo run --release --example quickstart`

use absort::core::{fish, lang, muxmerge, prefix, SorterKind};

fn main() {
    let input = lang::bits("0110_1001_1100_0011");
    let n = input.len();
    println!("input  (n = {n}): {}", lang::show(&input, 4));
    println!(
        "sorted oracle   : {}\n",
        lang::show(&lang::sorted_oracle(&input), 4)
    );

    // --- functional forms -------------------------------------------------
    for kind in [
        SorterKind::Prefix,
        SorterKind::MuxMerger,
        SorterKind::Fish { k: Some(4) },
    ] {
        let out = kind.sort(&input);
        println!(
            "{:<11} -> {}   (cost model: {} units)",
            kind.name(),
            lang::show(&out, 4),
            kind.cost(n)
        );
        assert_eq!(out, lang::sorted_oracle(&input));
    }

    // --- the same networks as real circuits -------------------------------
    println!("\nconstructed circuits (paper cost units, bit-level depth):");
    let pre = prefix::build(n);
    let mux = muxmerge::build(n);
    println!(
        "  prefix sorter    : cost {:>5}  depth {:>3}   (paper: 3n lg n = {})",
        pre.cost().total,
        pre.depth(),
        prefix::paper_cost_dominant(n)
    );
    println!(
        "  mux-merger sorter: cost {:>5}  depth {:>3}   (paper: 4n lg n = {})",
        mux.cost().total,
        mux.depth(),
        muxmerge::formulas::paper_cost_dominant(n)
    );
    assert_eq!(pre.eval(&input), lang::sorted_oracle(&input));
    assert_eq!(mux.eval(&input), lang::sorted_oracle(&input));

    // --- the time-multiplexed fish sorter ---------------------------------
    let f = fish::FishSorter::new(n, 4);
    let r = f.report();
    println!(
        "  fish sorter (k=4): cost {:>5}  T = {} cycles ({} pipelined)",
        r.cost_exact, r.time_unpipelined, r.time_pipelined
    );
    assert_eq!(f.sort(&input), lang::sorted_oracle(&input));

    // --- payloads travel with their keys -----------------------------------
    let tagged: Vec<(bool, char)> = input.iter().zip('a'..).map(|(&b, c)| (b, c)).collect();
    let routed = SorterKind::MuxMerger.sort(&tagged);
    let payloads: String = routed.iter().map(|p| p.1).collect();
    println!("\npayloads after sorting: {payloads}");
    println!("(zeros' cargo first, ones' cargo last — the sorter *carries* data,");
    println!(" which is what makes it a concentrator; see the other examples.)");
}
