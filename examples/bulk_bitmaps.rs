//! Bulk workloads through one built circuit: bitmap compaction and
//! stable flow ordering.
//!
//! A monitoring pipeline receives 64-slot activity bitmaps (one per
//! switch cycle) and must compact each bitmap's active slots — which *is*
//! binary sorting, per the paper's concentration ≡ sorting equivalence.
//! The 64-lane evaluator pushes 64 bitmaps per pass through the built
//! mux-merger circuit; this example measures the throughput against the
//! one-at-a-time functional sorter, then orders the resulting flow
//! records stably by a 16-bit priority key with the word sorter
//! (w binary passes + the Fig. 10 permuter).
//!
//! Run with: `cargo run --release --example bulk_bitmaps`

use absort::core::bulk::BulkSorter;
use absort::core::{muxmerge, SorterKind};
use absort::networks::word_sorter::WordSorter;
use rand::prelude::*;
use std::time::Instant;

const BITMAPS: usize = 200_000;
const WIDTH: usize = 64;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let bitmaps: Vec<u64> = (0..BITMAPS)
        .map(|_| rng.gen::<u64>() & rng.gen::<u64>()) // ~25% density
        .collect();

    // --- bulk compaction (64 bitmaps per circuit pass) ------------------
    let bulk = BulkSorter::new(WIDTH, 1);
    let t0 = Instant::now();
    let compacted = bulk.sort_words(&bitmaps);
    let bulk_time = t0.elapsed();

    // --- one-at-a-time functional baseline -------------------------------
    let t1 = Instant::now();
    let mut functional = Vec::with_capacity(BITMAPS);
    for &w in &bitmaps {
        let bits: Vec<bool> = (0..WIDTH).map(|i| w >> i & 1 == 1).collect();
        let sorted = muxmerge::sort(&bits);
        functional.push(
            sorted
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i)),
        );
    }
    let func_time = t1.elapsed();

    assert_eq!(compacted, functional, "the two paths must agree");
    for (&raw, &packed) in bitmaps.iter().zip(&compacted) {
        assert_eq!(raw.count_ones(), packed.count_ones());
    }
    println!("compacted {BITMAPS} bitmaps of {WIDTH} slots");
    println!(
        "  bulk 64-lane circuit: {:>8.1} ms  ({:.1} Mbitmaps/s)",
        bulk_time.as_secs_f64() * 1e3,
        BITMAPS as f64 / bulk_time.as_secs_f64() / 1e6
    );
    println!(
        "  functional, one-by-one: {:>6.1} ms  ({:.1} Mbitmaps/s)",
        func_time.as_secs_f64() * 1e3,
        BITMAPS as f64 / func_time.as_secs_f64() / 1e6
    );

    // --- stable ordering of flow records by priority ---------------------
    let n = 1024;
    let flows: Vec<(u64, usize)> = (0..n)
        .map(|id| (rng.gen_range(0..16u64), id)) // 4-bit priority classes
        .collect();
    let ws = WordSorter::new(SorterKind::Fish { k: None }, n, 4);
    let t2 = Instant::now();
    let ordered = ws.sort(&flows).expect("sortable");
    let order_time = t2.elapsed();
    // stability: within a priority class, flow ids stay in arrival order
    let mut expect = flows.clone();
    expect.sort_by_key(|&(p, _)| p);
    assert_eq!(ordered, expect);
    println!(
        "\nordered {n} flow records by 4-bit priority in {:.2} ms (stable: arrival order preserved within classes)",
        order_time.as_secs_f64() * 1e3
    );
    let by_class: Vec<usize> = (0..16)
        .map(|c| ordered.iter().filter(|&&(p, _)| p == c).count())
        .collect();
    println!("class occupancy: {by_class:?}");
}
