//! Permutation routing shoot-out: the paper's radix permuter (Fig. 10)
//! built from adaptive binary sorters versus the Beneš network — routing
//! the classic parallel-computing traffic patterns (bit-reversal, perfect
//! shuffle, matrix transpose, random).
//!
//! Every pattern is routed for real (payloads verified at their
//! destinations) and the bit-level cost/permutation-time columns of
//! Table II are printed for this size.
//!
//! Run with: `cargo run --release --example permutation_routing`

use absort::analysis::table2;
use absort::core::sorter::SorterKind;
use absort::networks::{benes, permuter::RadixPermuter};

const N: usize = 256;

fn bit_reverse(i: usize, bits: u32) -> usize {
    (i.reverse_bits() >> (usize::BITS - bits)) & ((1 << bits) - 1)
}

fn patterns() -> Vec<(&'static str, Vec<usize>)> {
    let bits = N.trailing_zeros();
    let shuffle = |i: usize| (i << 1 | i >> (bits - 1)) & (N - 1);
    let transpose = |i: usize| {
        let half = bits / 2;
        let (row, col) = (i >> half, i & ((1 << half) - 1));
        col << half | row
    };
    let mut rng_state = 0x9E3779B97F4A7C15u64;
    let mut random: Vec<usize> = (0..N).collect();
    // Fisher–Yates with a splitmix64 stream (no external RNG needed here)
    for i in (1..N).rev() {
        rng_state = rng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let j = (z ^ (z >> 31)) as usize % (i + 1);
        random.swap(i, j);
    }
    vec![
        ("identity", (0..N).collect()),
        (
            "bit-reversal",
            (0..N).map(|i| bit_reverse(i, bits)).collect(),
        ),
        ("perfect shuffle", (0..N).map(shuffle).collect()),
        ("matrix transpose", (0..N).map(transpose).collect()),
        ("random", random),
    ]
}

fn main() {
    println!(
        "routing {} permutation patterns at n = {N}\n",
        patterns().len()
    );

    let designs: Vec<(&str, Option<RadixPermuter>)> = vec![
        (
            "radix permuter / fish",
            Some(RadixPermuter::new(SorterKind::Fish { k: None }, N)),
        ),
        (
            "radix permuter / mux-merger",
            Some(RadixPermuter::new(SorterKind::MuxMerger, N)),
        ),
        (
            "radix permuter / prefix",
            Some(RadixPermuter::new(SorterKind::Prefix, N)),
        ),
        ("Benes + looping", None),
    ];

    println!(
        "{:<28} {:>12} {:>10} {:>9}  patterns",
        "design", "bit cost", "perm time", "switched"
    );
    for (name, rp) in &designs {
        let (cost, time, switched) = match rp {
            Some(p) => (
                p.cost(),
                p.time(),
                if p.is_packet_switched() {
                    "packet"
                } else {
                    "circuit"
                },
            ),
            None => (benes::table2_cost(N), benes::table2_time(N), "circuit"),
        };
        let mut all_ok = true;
        for (pname, perm) in patterns() {
            let payloads: Vec<String> = (0..N).map(|i| format!("m{i}")).collect();
            let routed: Vec<String> = match rp {
                Some(p) => {
                    let packets: Vec<(usize, String)> = perm
                        .iter()
                        .zip(&payloads)
                        .map(|(&d, m)| (d, m.clone()))
                        .collect();
                    p.route(&packets).expect("valid permutation")
                }
                None => benes::permute(&perm, &payloads).expect("valid permutation"),
            };
            let ok = perm
                .iter()
                .enumerate()
                .all(|(i, &d)| routed[d] == payloads[i]);
            all_ok &= ok;
            assert!(ok, "{name} failed on {pname}");
        }
        println!(
            "{:<28} {:>12} {:>10} {:>9}  {}",
            name,
            cost,
            time,
            switched,
            if all_ok { "all verified" } else { "FAILED" }
        );
    }

    println!("\nTable II at n = {N}:\n");
    println!("{}", table2::render(N));
    println!(
        "The fish-based permuter is the paper's headline: the first\n\
         permutation network with O(n lg n) bit-level cost."
    );
}
