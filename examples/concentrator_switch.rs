//! A packet-switch front end: concentrating sparse requests onto trunk
//! lines — the workload the paper's Section IV motivates ("concentration
//! and permuting are two communication problems that frequently arise in
//! parallel computations").
//!
//! A 256-port line card receives flits on a random subset of its ports
//! each cycle and must funnel them onto 64 trunk lines. We build
//! (256,64)-concentrators from each adaptive binary sorter, drive them
//! with a bursty traffic model, and report delivered flits, rejected
//! cycles (offered load > trunk capacity), and each design's hardware
//! cost per the paper's accounting.
//!
//! Run with: `cargo run --release --example concentrator_switch`

use absort::core::sorter::{SorterKind, ALL_KINDS};
use absort::networks::concentrator::{ConcentrateError, Concentrator};
use rand::prelude::*;

const PORTS: usize = 256;
const TRUNKS: usize = 64;
const CYCLES: usize = 200;

#[derive(Clone, Debug, PartialEq)]
struct Flit {
    src_port: usize,
    seq: u64,
}

fn offered_load(rng: &mut StdRng, mean_active: f64) -> Vec<Option<Flit>> {
    // bursty: geometric bursts of consecutive active ports
    let mut req: Vec<Option<Flit>> = vec![None; PORTS];
    let p_burst = mean_active / PORTS as f64 * 2.0;
    let mut port = 0usize;
    let mut seq = 0u64;
    while port < PORTS {
        if rng.gen_bool(p_burst.min(1.0)) {
            let burst = rng.gen_range(1..=8usize).min(PORTS - port);
            for b in 0..burst {
                req[port + b] = Some(Flit {
                    src_port: port + b,
                    seq,
                });
                seq += 1;
            }
            port += burst;
        } else {
            port += 1;
        }
    }
    req
}

fn main() {
    println!("(256,64)-concentrators on a bursty line card, {CYCLES} cycles/load\n");
    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "sorter", "cost", "time", "delivered", "rejected", "verified"
    );

    for kind in ALL_KINDS {
        let conc = Concentrator::new(kind, PORTS, TRUNKS);
        let mut rng = StdRng::seed_from_u64(2026);
        let mut delivered = 0u64;
        let mut rejected_cycles = 0u64;
        let mut verified = true;

        for load in [8.0, 24.0, 48.0, 60.0] {
            for _ in 0..CYCLES {
                let req = offered_load(&mut rng, load);
                let active = req.iter().filter(|r| r.is_some()).count();
                match conc.concentrate(&req) {
                    Ok(out) => {
                        // verify: exactly the offered flits, on the first
                        // `active` trunks, none lost or duplicated
                        let got: Vec<&Flit> = out
                            .iter()
                            .take(active)
                            .map(|o| o.as_ref().unwrap())
                            .collect();
                        let mut srcs: Vec<usize> = got.iter().map(|f| f.src_port).collect();
                        srcs.sort_unstable();
                        let mut want: Vec<usize> = req
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.is_some())
                            .map(|(i, _)| i)
                            .collect();
                        want.sort_unstable();
                        verified &= srcs == want && out[active..].iter().all(Option::is_none);
                        delivered += active as u64;
                    }
                    Err(ConcentrateError::Overloaded { .. }) => rejected_cycles += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }

        println!(
            "{:<12} {:>12} {:>10} {:>12} {:>10} {:>10}",
            kind.name(),
            conc.cost(),
            conc.time(),
            delivered,
            rejected_cycles,
            if verified { "ok" } else { "FAILED" }
        );
        assert!(
            verified,
            "concentration property violated for {}",
            kind.name()
        );
    }

    println!("\nThe fish-sorter concentrator is the O(n)-cost, O(lg^2 n)-time design the");
    println!("paper claims as the least-cost practical concentrator (Section IV).");
    let fish = Concentrator::new(SorterKind::Fish { k: None }, PORTS, TRUNKS);
    let mux = Concentrator::new(SorterKind::MuxMerger, PORTS, TRUNKS);
    println!(
        "cost ratio mux-merger/fish at n={PORTS}: {:.2}x",
        mux.cost() as f64 / fish.cost() as f64
    );
}
