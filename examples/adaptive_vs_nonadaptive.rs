//! The boundary the paper lives on: *nonadaptive* comparator networks
//! obey the zero-one principle (sorting all binary inputs ⇒ sorting all
//! inputs), which is why a cheap nonadaptive **binary** sorter would have
//! "strong implications for sorting in general … but this seems highly
//! unlikely" (Section I). Adaptive networks escape the principle: they
//! sort every binary sequence at `O(n lg n)` or even `O(n)` cost, yet do
//! **not** sort arbitrary numbers.
//!
//! This example demonstrates both sides concretely:
//!   1. Batcher's nonadaptive network sorts binary AND arbitrary words.
//!   2. The adaptive mux-merger sorter sorts every binary sequence
//!      (exhaustively at n = 16), but we exhibit a 4-element integer
//!      input it fails to sort — the zero-one principle does not apply.
//!   3. The price of nonadaptivity, measured: the E17 ablation table.
//!
//! Run with: `cargo run --release --example adaptive_vs_nonadaptive`

use absort::analysis::ablations;
use absort::baselines::batcher_bits::{BatcherBinary, BatcherKind};
use absort::core::{lang, muxmerge, nonadaptive};

/// Sort 4 integers "through" the mux-merger's data movement by running
/// its comparator/swapper steering on word packets: each line carries an
/// integer; comparators exchange on `>`; the four-way swappers move
/// quarters by the *select* convention (top bit of quarters 2 and 4
/// interpreted as "is the value in the upper half of the range") — the
/// straightforward word-level reading of the adaptive network.
fn muxmerge_words(values: [u32; 4]) -> [u32; 4] {
    // two-input sorters on the halves
    let mut v = values;
    if v[0] > v[1] {
        v.swap(0, 1);
    }
    if v[2] > v[3] {
        v.swap(2, 3);
    }
    // the adaptive merger's select bits come from *binary* middle bits;
    // with words there is no single bit to read — emulate the published
    // steering with the comparison the quarters' "middle bit" reduces to
    // on binary data: the sign of v[1] and v[3] relative to the median.
    // For binary inputs this is exactly the network; for words it is the
    // natural lift — and it fails, which is the point.
    let median = (v.iter().copied().max().unwrap() + v.iter().copied().min().unwrap()) / 2;
    let s1 = v[1] > median;
    let s2 = v[3] > median;
    let sel = (usize::from(s1) << 1) | usize::from(s2);
    let q = [v[0], v[1], v[2], v[3]];
    let pick = |p: [u8; 4]| {
        [
            q[p[0] as usize],
            q[p[1] as usize],
            q[p[2] as usize],
            q[p[3] as usize],
        ]
    };
    let inw = pick(muxmerge::IN_SWAP[sel]);
    // merge the middle pair
    let (a, b) = if inw[1] > inw[2] {
        (inw[2], inw[1])
    } else {
        (inw[1], inw[2])
    };
    let joined = [inw[0], a, b, inw[3]];
    let j = joined;
    let out = muxmerge::OUT_SWAP[sel];
    [
        j[out[0] as usize],
        j[out[1] as usize],
        j[out[2] as usize],
        j[out[3] as usize],
    ]
}

fn main() {
    println!("1) Nonadaptive Batcher network (zero-one principle applies)");
    let batcher = BatcherBinary::new(BatcherKind::OddEvenMerge, 16);
    let mut all_binary_ok = true;
    for v in 0..1u32 << 16 {
        let bits: Vec<bool> = (0..16).map(|i| v >> i & 1 == 1).collect();
        all_binary_ok &= batcher.sort(&bits) == lang::sorted_oracle(&bits);
    }
    println!("   sorts all 65,536 binary inputs: {all_binary_ok}");
    println!("   ⇒ by the zero-one principle it sorts arbitrary words too.\n");

    println!("2) Adaptive mux-merger sorter (escapes the principle)");
    let c = muxmerge::build(16);
    let mut adaptive_binary_ok = true;
    for v in 0..1u32 << 16 {
        let bits: Vec<bool> = (0..16).map(|i| v >> i & 1 == 1).collect();
        adaptive_binary_ok &= c.eval(&bits) == lang::sorted_oracle(&bits);
    }
    println!("   sorts all 65,536 binary inputs: {adaptive_binary_ok}");

    // find a word input the adaptive steering mis-sorts
    let mut counterexample = None;
    'outer: for a in 0..6u32 {
        for b in 0..6u32 {
            for c2 in 0..6u32 {
                for d in 0..6u32 {
                    let input = [a, b, c2, d];
                    let out = muxmerge_words(input);
                    let mut expect = input;
                    expect.sort_unstable();
                    if out != expect {
                        counterexample = Some((input, out, expect));
                        break 'outer;
                    }
                }
            }
        }
    }
    match counterexample {
        Some((input, out, expect)) => {
            println!("   word counterexample: input {input:?}");
            println!("     adaptive steering yields {out:?}, sorted order is {expect:?}");
            println!("   ⇒ sorting all 0-1 inputs does NOT imply word sorting here:");
            println!("     adaptive networks are outside the zero-one principle's scope,");
            println!("     which is exactly why their binary cost can drop to O(n).\n");
        }
        None => println!("   (no counterexample found in the searched range)\n"),
    }

    println!("3) What nonadaptivity costs (E17 ablation, measured):\n");
    println!(
        "{}",
        ablations::adaptivity_ablation(&[6, 10, 14, 18, 22]).render()
    );
    let n = 1 << 18;
    println!(
        "at n = 2^18 the nonadaptive bit-level Fig. 4(b) sorter needs {:.2}x the hardware\n\
         of the adaptive mux-merger for the same binary sorting function.",
        nonadaptive::adaptivity_saving(n)
    );
}
