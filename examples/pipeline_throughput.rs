//! Model B in action: the fish sorter's time-multiplexed datapath with
//! and without pipelining, against the time-multiplexed columnsort
//! network (Section III.C's comparison).
//!
//! Prints the sorting-time series — the O(lg³ n) vs O(lg⁴ n) unpipelined
//! shapes and the O(lg² n) pipelined convergence — plus the pipelining
//! burden: columnsort needs four separately pipelined sorters, the fish
//! sorter exactly one.
//!
//! Run with: `cargo run --release --example pipeline_throughput`

use absort::baselines::columnsort::{ColumnsortModel, Geometry};
use absort::core::fish::{formulas, schedule, FishSorter};
use absort::core::lang;
use rand::prelude::*;

fn main() {
    // First: the datapath actually moves data. Sort something.
    let n0 = 1 << 12;
    let mut rng = StdRng::seed_from_u64(7);
    let input: Vec<bool> = (0..n0).map(|_| rng.gen()).collect();
    let f = FishSorter::with_default_k(n0);
    let out = f.sort(&input);
    assert_eq!(out, lang::sorted_oracle(&input));
    println!(
        "fish sorter n={n0}, k={}: sorted a random sequence ({} ones) correctly\n",
        f.k,
        input.iter().filter(|&&b| b).count()
    );

    println!(
        "{:>6} {:>5} | {:>12} {:>8} | {:>11} {:>11} {:>7} | {:>11} {:>11}",
        "n",
        "k",
        "fish cost",
        "cost/n",
        "T serial",
        "T pipelined",
        "gain",
        "colsort T",
        "colsort Tp"
    );
    for a in [10u32, 12, 14, 16, 18, 20, 22] {
        let n = 1usize << a;
        let f = FishSorter::with_default_k(n);
        let cost = formulas::total_cost_exact(n, f.k);
        let ts = schedule::sorting_time(n, f.k, false);
        let tp = schedule::sorting_time(n, f.k, true);
        let cs = ColumnsortModel {
            g: Geometry::paper_params(n),
        };
        println!(
            "{:>6} {:>5} | {:>12} {:>8.1} | {:>11} {:>11} {:>6.1}x | {:>11} {:>11}",
            format!("2^{a}"),
            f.k,
            cost,
            cost as f64 / n as f64,
            ts,
            tp,
            ts as f64 / tp as f64,
            cs.time(false),
            cs.time(true),
        );
    }

    println!("\npipelining burden (sorter datapaths that must accept one group/cycle):");
    println!("  fish sorter:        1  (a single n/k-input sorter, paper Section III.C)");
    println!(
        "  columnsort network: {}  (one per sorting pass)",
        ColumnsortModel {
            g: Geometry::paper_params(1 << 16)
        }
        .pipelines_required()
    );

    // Shape check narrated for the reader: T_serial/lg^3 and T_pip/lg^2
    // should both flatten as n grows.
    println!("\nnormalised times (constants should flatten as n grows):");
    println!("{:>6} {:>14} {:>14}", "n", "Tserial/lg^3 n", "Tpip/lg^2 n");
    for a in [12u32, 16, 20, 24] {
        let n = 1usize << a;
        let f = FishSorter::with_default_k(n);
        let ts = schedule::sorting_time(n, f.k, false) as f64;
        let tp = schedule::sorting_time(n, f.k, true) as f64;
        let l = a as f64;
        println!(
            "{:>6} {:>14.2} {:>14.2}",
            format!("2^{a}"),
            ts / (l * l * l),
            tp / (l * l)
        );
    }
}
